"""The low-power-listening node of the interference case study
(paper Section 4.3, Figures 13 and 14).

The node does nothing but duty-cycle its radio: every 500 ms it wakes,
samples the channel, and returns to sleep — unless energy is detected, in
which case the radio is held on (under the unbound ``pxy_RX`` proxy
activity) waiting for a packet that, with only an 802.11 interferer
nearby, never arrives.
"""

from __future__ import annotations

from repro.tos.mac import LplMac
from repro.tos.node import QuantoNode


class LplListenApp:
    """A pure LPL listener."""

    def __init__(self) -> None:
        self.node: QuantoNode | None = None

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if not isinstance(node.mac, LplMac):
            raise RuntimeError("LplListenApp requires mac='lpl'")
        node.mac.start()
        node.cpu_activity.set(node.idle)

    # -- statistics used by the Figure 13 analysis ---------------------------

    @property
    def wakeups(self) -> int:
        assert self.node is not None
        return self.node.mac.wakeups

    @property
    def detections(self) -> int:
        assert self.node is not None
        return self.node.mac.detections

    def false_positive_rate(self) -> float:
        """Detections per wake-up; with no 802.15.4 traffic around, every
        detection is a false positive."""
        if self.wakeups == 0:
            return 0.0
        return self.detections / self.wakeups
