"""One-shot packet sender for the DMA-vs-interrupt comparison
(paper Figure 16).

The app transmits a single Bounce-sized packet under its application
activity.  Run on a node with ``spi_mode='irq'`` the TXFIFO load costs an
``int_UART0RX`` interrupt every two bytes; with ``spi_mode='dma'`` the
load is one burst and a single ``int_DACDMA`` completion — at least twice
as fast, with the MAC-fairness implications the paper discusses.
"""

from __future__ import annotations

from typing import Optional

from repro.tos.node import QuantoNode
from repro.units import ms

AM_PROBE = 0x50


class OneShotSenderApp:
    """Sends exactly one packet and records the phase timings."""

    def __init__(self, dst: int = 0xFFFF, payload_len: int = 20,
                 start_delay_ns: int = ms(5)) -> None:
        self.dst = dst
        self.payload_len = payload_len
        self.start_delay_ns = start_delay_ns
        self.node: Optional[QuantoNode] = None
        self.send_started_ns: Optional[int] = None
        self.send_done_ns: Optional[int] = None

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if node.am is None:
            raise RuntimeError("OneShotSenderApp needs a MAC/AM stack")
        node.set_cpu_activity("BounceApp")
        node.mac.start(self._radio_ready)
        node.cpu_activity.set(node.idle)

    def _radio_ready(self) -> None:
        node = self.node
        assert node is not None
        node.vtimers.start_oneshot(
            self._send, self.start_delay_ns, name="probe-send",
            activity=node.activity("BounceApp"))

    def _send(self) -> None:
        node = self.node
        assert node is not None
        node.set_cpu_activity("BounceApp")
        node.platform.mcu.consume(25)
        self.send_started_ns = node.sim.now
        node.am.send(self.dst, AM_PROBE, bytes(self.payload_len),
                     on_send_done=self._sent)

    def _sent(self, frame) -> None:
        node = self.node
        assert node is not None
        self.send_done_ns = node.sim.now

    @property
    def duration_ns(self) -> Optional[int]:
        """Send-call to sendDone, the Figure 16 window."""
        if self.send_started_ns is None or self.send_done_ns is None:
            return None
        return self.send_done_ns - self.send_started_ns
