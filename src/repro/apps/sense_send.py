"""Sense-and-send (paper Figure 7): the canonical activity-API example.

A periodic sensing task reads humidity then temperature (painting the CPU
``ACT_HUM`` / ``ACT_TEMP`` before each read, so the split-phase sensor
operations and their completion interrupts are charged correctly), and
once both are in, sends the sample under ``ACT_PKT``.
"""

from __future__ import annotations

import struct

from repro.tos.node import QuantoNode
from repro.units import seconds

AM_SAMPLE = 0x53

_SAMPLE = struct.Struct("<ff")


class SenseAndSendApp:
    """Figure 7's sense-and-send, with real sensor and radio substrates."""

    def __init__(self, sink_id: int = 0, period_ns: int = seconds(5),
                 send: bool = True) -> None:
        self.sink_id = sink_id
        self.period_ns = period_ns
        self.send = send
        self.node: QuantoNode | None = None
        self.samples_taken = 0
        self.packets_sent = 0
        self._humidity: float | None = None
        self._temperature: float | None = None

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if self.send and node.am is None:
            raise RuntimeError("SenseAndSendApp needs a MAC/AM stack to send")
        node.set_cpu_activity("SenseTask")
        node.vtimers.start_periodic(
            self._sensor_task, self.period_ns, name="sense")
        if self.send:
            node.mac.start()
        node.cpu_activity.set(node.idle)

    # The paper's sensorTask(): paint, read, paint, read.
    def _sensor_task(self) -> None:
        node = self.node
        assert node is not None
        node.set_cpu_activity("ACT_HUM")
        node.platform.mcu.consume(15)
        node.sensor.read_humidity(self._humidity_done)

    def _humidity_done(self, value: float) -> None:
        node = self.node
        assert node is not None
        self._humidity = value
        node.set_cpu_activity("ACT_TEMP")
        node.platform.mcu.consume(15)
        node.sensor.read_temperature(self._temperature_done)

    def _temperature_done(self, value: float) -> None:
        self._temperature = value
        self.samples_taken += 1
        self._send_if_done()

    # The paper's sendIfDone().
    def _send_if_done(self) -> None:
        node = self.node
        assert node is not None
        if self._humidity is None or self._temperature is None:
            return
        humidity, temperature = self._humidity, self._temperature
        self._humidity = None
        self._temperature = None
        if not self.send:
            return
        node.set_cpu_activity("ACT_PKT")
        node.platform.mcu.consume(20)
        payload = _SAMPLE.pack(humidity, temperature)
        node.am.send(self.sink_id, AM_SAMPLE, payload,
                     on_send_done=self._sent)

    def _sent(self, frame) -> None:
        self.packets_sent += 1
