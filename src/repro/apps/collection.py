"""A multihop collection protocol (tree routing to a root).

The paper's motivation section asks "network-wide, how much energy do
network services such as routing consume?" — this app answers it with
Quanto.  Nodes form a static tree; every non-root node samples
periodically under its own ``Collect`` activity and sends the sample to
its parent; forwarders queue the packet on an instrumented
:class:`~repro.tos.queue.ForwardingQueue` (which preserves the *origin's*
activity across the deferral) and relay it upward.  After a run, the
network-wide merge prices each origin's data path — including every
forwarding hop it caused on other nodes.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.hw.radio import Frame
from repro.tos.node import QuantoNode
from repro.tos.queue import ForwardingQueue
from repro.units import ms, seconds

AM_COLLECT = 0x43

_SAMPLE = struct.Struct("<HI")  # origin node id, sample counter


class CollectionApp:
    """One node of the collection tree."""

    def __init__(
        self,
        parent_id: Optional[int],
        sample_period_ns: int = seconds(4),
        is_root: bool = False,
    ) -> None:
        self.parent_id = parent_id
        self.sample_period_ns = sample_period_ns
        self.is_root = is_root
        self.node: Optional[QuantoNode] = None
        self.queue: Optional[ForwardingQueue] = None
        self._sending = False
        self.samples_originated = 0
        self.packets_forwarded = 0
        self.delivered: list[tuple[int, int]] = []  # root: (origin, seq)

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if node.am is None:
            raise RuntimeError("CollectionApp needs a MAC/AM stack")
        self.queue = ForwardingQueue(
            f"fwd@{node.node_id}", node.cpu_activity, node.platform.mcu)
        node.am.register_receiver(AM_COLLECT, self._received)
        node.set_cpu_activity("Collect")
        node.mac.start(self._radio_ready)
        node.cpu_activity.set(node.idle)

    def _radio_ready(self) -> None:
        node = self.node
        assert node is not None
        if self.is_root:
            return
        # Stagger first samples by node id to avoid synchronized sends.
        node.set_cpu_activity("Collect")
        node.vtimers.start_oneshot(
            self._sample, ms(100) + node.node_id * ms(150), name="first")

    def _sample(self) -> None:
        """First sample: originate it and start the periodic cadence."""
        self._originate()
        node = self.node
        assert node is not None
        node.vtimers.start_periodic(
            self._originate, self.sample_period_ns, name="sample",
            activity=node.activity("Collect"))

    def _originate(self) -> None:
        """Originate one sample under this node's Collect activity."""
        node = self.node
        assert node is not None
        node.set_cpu_activity("Collect")
        node.platform.mcu.consume(25)
        self.samples_originated += 1
        payload = _SAMPLE.pack(node.node_id, self.samples_originated)
        self.queue.enqueue(payload)
        self._service_queue()

    def _received(self, frame: Frame) -> None:
        """A packet from a child arrived.  The CPU already carries the
        *origin's* activity (bound from the hidden field); enqueueing
        saves it with the packet for the deferred forward."""
        node = self.node
        assert node is not None
        node.platform.mcu.consume(20)
        origin, seq = _SAMPLE.unpack(frame.payload)
        if self.is_root:
            self.delivered.append((origin, seq))
            return
        self.queue.enqueue(frame.payload)
        self._service_queue()

    def _service_queue(self) -> None:
        """Send the head-of-line packet to the parent if idle.  The
        dequeue restores the origin's activity, so the send — and the
        radio work it causes — is charged to the origin."""
        node = self.node
        assert node is not None
        if self._sending or self.parent_id is None:
            return
        payload = self.queue.dequeue()
        if payload is None:
            return
        self._sending = True
        self.packets_forwarded += 1
        node.am.send(self.parent_id, AM_COLLECT, payload,
                     on_send_done=self._sent)

    def _sent(self, frame: Frame) -> None:
        self._sending = False
        self._service_queue()


def build_line_topology(network, node_ids, root_id, **app_kwargs):
    """Helper: a line topology rooted at ``root_id`` (each node's parent
    is the previous one).  Returns {node_id: CollectionApp}."""
    apps = {}
    previous = None
    for node_id in node_ids:
        is_root = node_id == root_id
        apps[node_id] = CollectionApp(
            parent_id=previous if not is_root else None,
            is_root=is_root, **app_kwargs)
        previous = node_id
    return apps


def build_star_topology(network, node_ids, root_id, **app_kwargs):
    """Helper: a star topology — every non-root node sends directly to
    the root (single-hop; no forwarding, so all of each origin's remote
    cost lands on the root).  Returns {node_id: CollectionApp}."""
    apps = {}
    for node_id in node_ids:
        is_root = node_id == root_id
        apps[node_id] = CollectionApp(
            parent_id=None if is_root else root_id,
            is_root=is_root, **app_kwargs)
    return apps
