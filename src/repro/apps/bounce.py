"""Bounce: two nodes exchanging two packets forever (paper Section 4.2.2).

Each node originates one packet under its own ``BounceApp`` activity.  On
reception, the hidden activity field re-paints the receiving CPU with the
*originating* node's activity, an indicator LED is lit (painted with that
activity, so its energy is charged to the originator), and after a hold
delay the packet is sent back — still under the original activity, which
the hidden field then carries across the air again.

LED convention from Figure 12: LED1 indicates possession of the *peer's*
packet, LED2 possession of our own returning packet.
"""

from __future__ import annotations

from repro.core.labels import ActivityLabel
from repro.hw.radio import Frame
from repro.tos.node import QuantoNode
from repro.units import ms

AM_BOUNCE = 0x42

#: How long a node holds a packet (LED on) before bouncing it back.
HOLD_DELAY_NS = ms(500)

#: Delay from boot to originating this node's own packet.
ORIGINATE_DELAY_NS = ms(250)


class BounceApp:
    """One endpoint of the two-node bounce."""

    def __init__(self, peer_id: int,
                 originate: bool = True,
                 hold_delay_ns: int = HOLD_DELAY_NS,
                 originate_delay_ns: int = ORIGINATE_DELAY_NS) -> None:
        self.peer_id = peer_id
        self.originate = originate
        self.hold_delay_ns = hold_delay_ns
        self.originate_delay_ns = originate_delay_ns
        self.node: QuantoNode | None = None
        self.bounces = 0
        self.received = 0

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if node.am is None:
            raise RuntimeError("BounceApp needs a MAC/AM stack")
        node.am.register_receiver(AM_BOUNCE, self._received)
        node.set_cpu_activity("BounceApp")
        node.mac.start(self._radio_ready)
        node.cpu_activity.set(node.idle)

    def _radio_ready(self) -> None:
        node = self.node
        assert node is not None
        if not self.originate:
            return
        node.set_cpu_activity("BounceApp")
        node.vtimers.start_oneshot(
            self._originate, self.originate_delay_ns, name="originate")

    def _originate(self) -> None:
        """Send this node's own packet (under its own BounceApp label)."""
        node = self.node
        assert node is not None
        node.set_cpu_activity("BounceApp")
        node.platform.mcu.consume(30)
        node.am.send(self.peer_id, AM_BOUNCE, b"\x00\x01")

    def _received(self, frame: Frame) -> None:
        """AM receive (task context; the CPU already carries the label
        decoded from the packet's hidden field)."""
        node = self.node
        assert node is not None
        self.received += 1
        origin = ActivityLabel.decode(frame.activity).origin
        led_index = 1 if origin != node.node_id else 2
        node.platform.mcu.consume(25)
        node.leds.paint(led_index)  # charged to the packet's activity
        node.leds.led_on(led_index)
        # The hold timer saves the current (remote) activity, so the
        # bounce-back send is still colored by the originating node.
        node.vtimers.start_oneshot(
            lambda: self._bounce_back(frame, led_index),
            self.hold_delay_ns, name="bounce-hold")

    def _bounce_back(self, frame: Frame, led_index: int) -> None:
        node = self.node
        assert node is not None
        node.platform.mcu.consume(20)
        node.leds.led_off(led_index)
        node.leds.unpaint(led_index)
        self.bounces += 1
        node.am.send(frame.src, AM_BOUNCE, frame.payload)
