"""Blink: the TinyOS hello-world, instrumented as in paper Section 4.2.1.

Three independent periodic timers (1, 2, 4 s) toggle the red, green, and
blue LEDs, so over 8 seconds the node walks through all eight LED
combinations with the CPU asleep in between.  The instrumentation divides
the program into three application activities — Red, Green, Blue — each
painting its LED while on, plus the timer subsystem's VTimer activity and
the timer interrupt proxy.
"""

from __future__ import annotations

from repro.tos.node import QuantoNode
from repro.units import seconds

#: Cycles of real work per toggle (branching, pin math) besides logging.
TOGGLE_CYCLES = 22


class BlinkApp:
    """Red/Green/Blue blinking with per-activity attribution."""

    def __init__(
        self,
        red_period_ns: int = seconds(1),
        green_period_ns: int = seconds(2),
        blue_period_ns: int = seconds(4),
    ) -> None:
        self.periods = (red_period_ns, green_period_ns, blue_period_ns)
        self.names = ("Red", "Green", "Blue")
        self.node: QuantoNode | None = None
        self.toggles = [0, 0, 0]

    def start(self, node: QuantoNode) -> None:
        """Boot hook: register activities and start the three timers.
        Painting the CPU before each ``start_periodic`` makes the timer
        carry that activity to every firing (paper Figure 7's idiom)."""
        self.node = node
        for index, (name, period) in enumerate(zip(self.names, self.periods)):
            node.set_cpu_activity(name)
            node.vtimers.start_periodic(
                self._toggler(index), period, name=name.lower())
        node.cpu_activity.set(node.idle)

    def _toggler(self, index: int):
        def fire() -> None:
            self._toggle(index)

        return fire

    def _toggle(self, index: int) -> None:
        """Timer callback (task context, already restored to this LED's
        activity by the timer instrumentation)."""
        node = self.node
        assert node is not None
        node.set_cpu_activity(self.names[index])
        node.platform.mcu.consume(TOGGLE_CYCLES)
        self.toggles[index] += 1
        if node.leds.is_on(index):
            node.leds.led_off(index)
            node.leds.unpaint(index)
        else:
            node.leds.paint(index)
            node.leds.led_on(index)
