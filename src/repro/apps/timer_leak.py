"""The timer-leak application (paper Figure 15).

A simple two-activity app — ActA toggles LED0, ActB toggles LED2 on their
own periodic timers.  Run it on a node configured with
``dco_calibration=True`` and Quanto's trace shows ``int_TIMERA1`` firing
16 times per second for oscillator calibration nobody asked for: the
surprise that "the lack of visibility into the system made ... go
unnoticed".
"""

from __future__ import annotations

from repro.tos.node import QuantoNode
from repro.units import ms

TOGGLE_CYCLES = 18


class TimerLeakApp:
    """Two LED activities on a node with the DCO-calibration leak."""

    def __init__(self, period_a_ns: int = ms(250),
                 period_b_ns: int = ms(400)) -> None:
        self.period_a_ns = period_a_ns
        self.period_b_ns = period_b_ns
        self.node: QuantoNode | None = None

    def start(self, node: QuantoNode) -> None:
        self.node = node
        node.set_cpu_activity("ActA")
        node.vtimers.start_periodic(self._fire_a, self.period_a_ns, name="a")
        node.set_cpu_activity("ActB")
        node.vtimers.start_periodic(self._fire_b, self.period_b_ns, name="b")
        node.cpu_activity.set(node.idle)

    def _fire_a(self) -> None:
        node = self.node
        assert node is not None
        node.set_cpu_activity("ActA")
        node.platform.mcu.consume(TOGGLE_CYCLES)
        if node.leds.is_on(0):
            node.leds.led_off(0)
            node.leds.unpaint(0)
        else:
            node.leds.paint(0)
            node.leds.led_on(0)

    def _fire_b(self) -> None:
        node = self.node
        assert node is not None
        node.set_cpu_activity("ActB")
        node.platform.mcu.consume(TOGGLE_CYCLES)
        if node.leds.is_on(2):
            node.leds.led_off(2)
            node.leds.unpaint(2)
        else:
            node.leds.paint(2)
            node.leds.led_on(2)

    def calibration_interrupts(self) -> int:
        """How often the leak fired (the Figure 15 evidence)."""
        assert self.node is not None
        return self.node.interrupts.count("int_TIMERA1")
