"""A network flood: the butterfly-effect workload (paper Section 5.3).

"An action at one node can have network-wide effects ... Quanto can trace
the causal chain from small, local cause to large, network-wide effect."

One node originates a flood packet under its ``Flood`` activity; every
node rebroadcasts the packet exactly once on first reception.  Because
the hidden activity field survives every hop, *all* forwarding work on
every node is charged to the originator's activity, and the network-wide
merge (:mod:`repro.core.netmerge`) can price the entire flood.
"""

from __future__ import annotations

from repro.hw.radio import Frame
from repro.tos.am import AM_BROADCAST
from repro.tos.node import QuantoNode
from repro.units import ms

AM_FLOOD = 0x46


class FloodApp:
    """One node's flood logic (originator or forwarder)."""

    def __init__(self, originate: bool = False,
                 originate_delay_ns: int = ms(50)) -> None:
        self.originate = originate
        self.originate_delay_ns = originate_delay_ns
        self.node: QuantoNode | None = None
        self.seen_seqnos: set[int] = set()
        self.forwards = 0
        self.duplicates_suppressed = 0

    def start(self, node: QuantoNode) -> None:
        self.node = node
        if node.am is None:
            raise RuntimeError("FloodApp needs a MAC/AM stack")
        node.am.register_receiver(AM_FLOOD, self._received)
        node.set_cpu_activity("Flood" if self.originate else "FloodFwd")
        node.mac.start(self._radio_ready)
        node.cpu_activity.set(node.idle)

    def _radio_ready(self) -> None:
        node = self.node
        assert node is not None
        if not self.originate:
            return
        node.set_cpu_activity("Flood")
        node.vtimers.start_oneshot(
            self._originate_flood, self.originate_delay_ns, name="flood")

    def _originate_flood(self) -> None:
        node = self.node
        assert node is not None
        node.set_cpu_activity("Flood")
        node.platform.mcu.consume(20)
        frame = node.am.send(AM_BROADCAST, AM_FLOOD, b"\x01")
        self.seen_seqnos.add(frame.seqno)

    def _received(self, frame: Frame) -> None:
        """First reception: blink LED0 (charged to the flood's origin
        activity) and rebroadcast once."""
        node = self.node
        assert node is not None
        if frame.seqno in self.seen_seqnos:
            self.duplicates_suppressed += 1
            return
        self.seen_seqnos.add(frame.seqno)
        node.platform.mcu.consume(30)
        node.leds.paint(0)
        node.leds.led_on(0)
        self.forwards += 1
        # Rebroadcast still carries the originator's activity (the CPU was
        # bound to it when the AM layer decoded the packet).
        node.am.send(AM_BROADCAST, AM_FLOOD, frame.payload,
                     on_send_done=self._forwarded)

    def _forwarded(self, frame: Frame) -> None:
        node = self.node
        assert node is not None
        node.leds.led_off(0)
        node.leds.unpaint(0)
