"""The paper's workloads, written against the public node API.

* :mod:`repro.apps.blink` — the calibration and single-node activity
  example (Sections 4.1–4.2.1).
* :mod:`repro.apps.bounce` — cross-node activity tracking (Section 4.2.2).
* :mod:`repro.apps.sense_send` — the Figure 7 sense-and-send application.
* :mod:`repro.apps.lpl_app` — the low-power-listening node of the
  interference case study (Section 4.3, Figures 13–14).
* :mod:`repro.apps.timer_leak` — the two-activity timer app that exposed
  the DCO-calibration leak (Figure 15).
* :mod:`repro.apps.dma_compare` — packet transmission under interrupt-
  driven vs DMA SPI (Figure 16).
* :mod:`repro.apps.flood` — a network flood for butterfly-effect
  accounting (Section 5.3).
"""

from repro.apps.blink import BlinkApp
from repro.apps.bounce import BounceApp
from repro.apps.sense_send import SenseAndSendApp
from repro.apps.lpl_app import LplListenApp
from repro.apps.timer_leak import TimerLeakApp
from repro.apps.dma_compare import OneShotSenderApp
from repro.apps.flood import FloodApp

__all__ = [
    "BlinkApp",
    "BounceApp",
    "SenseAndSendApp",
    "LplListenApp",
    "TimerLeakApp",
    "OneShotSenderApp",
    "FloodApp",
]
