"""Radio environment substrate: the shared 2.4 GHz channel and external
interference sources (802.11 b/g traffic)."""

from repro.net.channel import RadioChannel, channel_center_mhz, overlap_factor
from repro.net.interference import Wifi80211Interferer, WifiTrafficConfig

__all__ = [
    "RadioChannel",
    "channel_center_mhz",
    "overlap_factor",
    "Wifi80211Interferer",
    "WifiTrafficConfig",
]
