"""An 802.11 b/g interference source.

The paper's first case study places a mote 10 cm from an 802.11b access
point on Wi-Fi channel 6 (2.437 GHz).  Wi-Fi activity reaching the mote is
a mix of periodic beacons (102.4 ms interval, ~1 ms at 1 Mb/s rates) and
bursty data traffic.  We model the source as an alternating renewal
process: exponential idle gaps between bursts plus the beacon clock, with
burst lengths drawn from a bounded exponential.

The default traffic level is tuned so that a 9.3 ms LPL wake-up window
overlaps a burst ~17.8 % of the time — the false-positive rate the paper
measured on 802.15.4 channel 17 — while channel 26 sees zero overlap
because its spectral distance (43 MHz) zeroes the overlap factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.channel import overlap_factor
from repro.sim.engine import Simulator
from repro.units import ms, to_s, us


@dataclass
class WifiTrafficConfig:
    """Knobs for the interference process."""

    center_mhz: float = 2437.0  # 802.11 channel 6
    bandwidth_mhz: float = 22.0
    beacon_period_ns: int = ms(102.4)
    beacon_duration_ns: int = ms(1.0)
    #: Mean idle gap between data bursts (exponential).  Together with the
    #: burst length this sets the busy fraction; the default is tuned so a
    #: ~7 ms LPL sampling span sees a burst ~18 % of the time (the paper's
    #: channel-17 false-positive rate).
    data_gap_mean_ns: int = ms(55.0)
    #: Mean data burst duration (exponential, capped).
    data_burst_mean_ns: int = ms(4.0)
    data_burst_cap_ns: int = ms(20.0)


class Wifi80211Interferer:
    """Beacons plus bursty data traffic on a Wi-Fi channel."""

    def __init__(self, sim: Simulator, config: WifiTrafficConfig, rng) -> None:
        self.sim = sim
        self.config = config
        self._rng = rng
        self._beacon_active = False
        self._data_active = False
        self.burst_count = 0
        self._running = False

    def start(self) -> None:
        """Begin emitting beacons and data bursts."""
        if self._running:
            return
        self._running = True
        self.sim.after(self.config.beacon_period_ns, self._beacon)
        self.sim.after(self._next_gap(), self._data_burst)

    def _next_gap(self) -> int:
        return max(
            us(50),
            int(self._rng.expovariate(1.0 / self.config.data_gap_mean_ns)),
        )

    def _next_burst(self) -> int:
        duration = int(
            self._rng.expovariate(1.0 / self.config.data_burst_mean_ns)
        )
        return max(us(200), min(duration, self.config.data_burst_cap_ns))

    def _beacon(self) -> None:
        if not self._running:
            return
        self._beacon_active = True
        self.burst_count += 1

        def beacon_done() -> None:
            self._beacon_active = False

        self.sim.after(self.config.beacon_duration_ns, beacon_done)
        self.sim.after(self.config.beacon_period_ns, self._beacon)

    def _data_burst(self) -> None:
        if not self._running:
            return
        self._data_active = True
        self.burst_count += 1

        def burst_done() -> None:
            self._data_active = False
            self.sim.after(self._next_gap(), self._data_burst)

        self.sim.after(self._next_burst(), burst_done)

    def stop(self) -> None:
        self._running = False
        self._beacon_active = False
        self._data_active = False

    # -- the interface the channel polls -------------------------------------

    def active(self) -> bool:
        """Is the source radiating right now?"""
        return self._beacon_active or self._data_active

    def overlap(self, channel: int) -> float:
        """Spectral overlap with an 802.15.4 channel (0..1)."""
        return overlap_factor(
            self.config.center_mhz, self.config.bandwidth_mhz, channel
        )
