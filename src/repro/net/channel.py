"""The shared 2.4 GHz radio channel.

Responsibilities:

* frame delivery between radios tuned to the same 802.15.4 channel
  (start-of-frame announcement, end-of-frame bookkeeping);
* clear-channel assessment: a radio's CCA sees energy from concurrent
  802.15.4 transmissions *and* from wide-band interferers (802.11
  traffic), weighted by spectral overlap between the interferer's band and
  the radio's channel — this is the mechanism behind the paper's
  low-power-listening false positives (Section 4.3, Figure 13).

The propagation model is deliberately simple — every registered radio
hears every other (the paper's experiments are at 10 cm to a few meters) —
but losses can be injected per-link for protocol testing.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import NetworkError
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.radio import Frame, Radio


def channel_center_mhz(channel: int) -> float:
    """Center frequency of an 802.15.4 channel (11..26): 2405 + 5(k-11).

    Note the paper quotes 2453 MHz for channel 17 and 2480 MHz for channel
    26; the standard formula gives 2435 MHz for 17.  What matters for the
    experiment is the *distance* to the 802.11 carrier, so we take the
    paper's stated centers for its two channels and the standard formula
    elsewhere.
    """
    if not 11 <= channel <= 26:
        raise NetworkError(f"bad 802.15.4 channel {channel}")
    paper_centers = {17: 2453.0, 26: 2480.0}
    if channel in paper_centers:
        return paper_centers[channel]
    return 2405.0 + 5.0 * (channel - 11)


def overlap_factor(interferer_center_mhz: float, interferer_bandwidth_mhz: float,
                   channel: int) -> float:
    """Fraction of the interferer's power landing in an 802.15.4 channel.

    An 802.15.4 channel is 2 MHz wide; an 802.11b transmission is ~22 MHz
    wide.  We approximate the 802.11 spectral mask as flat over its main
    lobe with a linear skirt over the next half-lobe, which is enough to
    make channel 17 (16 MHz away from 802.11 ch 6) strongly interfered and
    channel 26 (43 MHz away) clean — matching the measured behaviour.
    """
    distance = abs(channel_center_mhz(channel) - interferer_center_mhz)
    half_main = interferer_bandwidth_mhz / 2.0
    if distance <= half_main:
        return 1.0
    skirt_end = interferer_bandwidth_mhz  # linear roll-off over one half-lobe
    if distance >= skirt_end:
        return 0.0
    return 1.0 - (distance - half_main) / (skirt_end - half_main)


class RadioChannel:
    """Connects radios and interference sources."""

    #: CCA threshold: interferer overlap above this reads as a busy channel.
    CCA_OVERLAP_THRESHOLD = 0.1

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._radios: list["Radio"] = []
        self._listening: set[int] = set()  # node ids currently in RX
        self._active_tx: dict[int, "Frame"] = {}  # node id -> frame in flight
        self._tx_channel: dict[int, int] = {}  # node id -> 802.15.4 channel
        #: (interferer, audible_to) pairs; audible_to=None means everyone
        #: hears it (an AP near the whole testbed); a node-id set models a
        #: source near only part of the deployment.
        self._interferers: list = []
        self._drop: dict[tuple[int, int], float] = {}  # (src, dst) -> P(loss)
        self.frames_started = 0

    # -- membership -----------------------------------------------------

    def register(self, radio: "Radio") -> None:
        if any(existing.node_id == radio.node_id for existing in self._radios):
            raise NetworkError(f"duplicate node id {radio.node_id}")
        self._radios.append(radio)

    def add_interferer(self, interferer,
                       audible_to: Optional[set[int]] = None) -> None:
        """Attach an interference source exposing ``active()`` and
        ``overlap(channel) -> float``.  ``audible_to`` restricts which
        nodes hear it (spatial locality); None means all of them."""
        self._interferers.append((interferer, audible_to))

    def set_link_loss(self, src: int, dst: int, probability: float) -> None:
        """Inject packet loss on a directed link (for protocol tests)."""
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad loss probability {probability}")
        self._drop[(src, dst)] = probability

    # -- RX bookkeeping ---------------------------------------------------

    def radio_started_listening(self, radio: "Radio") -> None:
        self._listening.add(radio.node_id)

    def radio_stopped_listening(self, radio: "Radio") -> None:
        self._listening.discard(radio.node_id)

    # -- transmission -----------------------------------------------------

    def begin_transmission(self, radio: "Radio", frame: "Frame") -> None:
        """Called by a radio when its preamble starts; announce the frame
        to every listener on the same channel."""
        self.frames_started += 1
        self._active_tx[radio.node_id] = frame
        self._tx_channel[radio.node_id] = radio.freq_channel
        for other in self._radios:
            if other.node_id == radio.node_id:
                continue
            if other.freq_channel != radio.freq_channel:
                continue
            if other.node_id not in self._listening:
                continue
            loss = self._drop.get((radio.node_id, other.node_id), 0.0)
            if loss:
                # Deterministic pseudo-random drop keyed to the frame.
                key = (frame.src, frame.seqno, other.node_id,
                       self.frames_started)
                if (hash(key) % 10_000) / 10_000.0 < loss:
                    continue
            other.channel_frame_begins(frame)

    def end_transmission(self, radio: "Radio", frame: "Frame") -> None:
        self._active_tx.pop(radio.node_id, None)
        self._tx_channel.pop(radio.node_id, None)

    # -- energy detection ---------------------------------------------------

    def energy_detected(self, radio: "Radio") -> bool:
        """CCA for a listening radio: busy if any same-channel 802.15.4
        transmission is in flight, or any interferer is bursting with
        enough spectral overlap."""
        for node_id, channel in self._tx_channel.items():
            if node_id != radio.node_id and channel == radio.freq_channel:
                return True
        for interferer, audible_to in self._interferers:
            if audible_to is not None and radio.node_id not in audible_to:
                continue
            if not interferer.active():
                continue
            if interferer.overlap(radio.freq_channel) > self.CCA_OVERLAP_THRESHOLD:
                return True
        return False

    def anyone_transmitting(self) -> bool:
        """True while any 802.15.4 frame is in flight (for tests)."""
        return bool(self._active_tx)
