"""A PowerTOSSIM-style model-based energy estimator (the baseline).

The paper positions Quanto against simulation/model approaches:
"PowerTOSSIM uses same-code simulation of TinyOS applications with power
state tracking, combined with a power model of the different peripheral
states ... it does not capture the variability common in real hardware
or operating environments" (§6).

This estimator is that baseline, built honestly: it consumes the *same*
power-state log Quanto records (so state tracking is identical) but
instead of metering it prices each state from a static model — the
Table 1 datasheet draws.  On hardware whose actual draws differ from the
datasheet (ours, like the paper's), the model-based answer is wrong in
proportion to that gap, while Quanto's regression recovers the actual
values.  The ``ablation_model_vs_meter`` experiment quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.regression import SinkColumn
from repro.core.timeline import PowerInterval
from repro.errors import RegressionError
from repro.hw.catalog import NOMINAL_CATALOG, catalog_sink


@dataclass
class ModelEstimate:
    """The model-based breakdown."""

    energy_by_column_j: dict[str, float] = field(default_factory=dict)
    baseline_energy_j: float = 0.0
    total_j: float = 0.0
    time_by_column_ns: dict[str, int] = field(default_factory=dict)

    def energy_of(self, name: str) -> float:
        return self.energy_by_column_j.get(name, 0.0)


#: Maps a power-state column to the catalog entry that prices it.
#: The instrumented sink names don't always equal catalog names (the
#: radio var folds several catalog sinks), so the model needs this table
#: — itself a source of model-based error on real systems.
DEFAULT_MODEL_MAP: dict[str, tuple[str, str]] = {
    "CPU": ("CPU", "ACTIVE"),
    "LED0": ("LED0", "ON"),
    "LED1": ("LED1", "ON"),
    "LED2": ("LED2", "ON"),
    "Radio.VREG": ("RadioRegulator", "ON"),
    "Radio.IDLE": ("RadioControlPath", "IDLE"),
    "Radio.RX": ("RadioRxPath", "RX_LISTEN"),
    "Radio.TX": ("RadioTxPath", "TX_0dBm"),
    "Flash.STANDBY": ("ExternalFlash", "STANDBY"),
    "Flash.READ": ("ExternalFlash", "READ"),
    "Flash.WRITE": ("ExternalFlash", "WRITE"),
    "Flash.ERASE": ("ExternalFlash", "ERASE"),
    "ADC": ("ADC", "CONVERTING"),
    "VRef": ("VoltageReference", "ON"),
}


def model_based_estimate(
    intervals: Sequence[PowerInterval],
    layout: Sequence[SinkColumn],
    voltage: float,
    baseline_amps: float = 0.0,
    model_map: Optional[dict[str, tuple[str, str]]] = None,
) -> ModelEstimate:
    """Price every interval from the static model.

    ``baseline_amps`` is the model's guess at the constant floor — a
    PowerTOSSIM-style tool typically uses the MCU sleep draw from the
    datasheet (2.6 uA for LPM3), wildly below a real node's regulator
    quiescent current.
    """
    if not intervals:
        raise RegressionError("no intervals to price")
    mapping = model_map if model_map is not None else DEFAULT_MODEL_MAP
    estimate = ModelEstimate()
    column_by_key = {(c.res_id, c.value): c for c in layout}
    for interval in intervals:
        dt_s = interval.dt_ns * 1e-9
        estimate.baseline_energy_j += baseline_amps * voltage * dt_s
        for res_id, value in interval.states:
            column = column_by_key.get((res_id, value))
            if column is None:
                continue  # baseline state of that sink
            entry = mapping.get(column.name)
            if entry is None:
                continue  # the model has no price for this state
            sink_name, state_name = entry
            amps = catalog_sink(sink_name).state(state_name).nominal_amps
            joules = amps * voltage * dt_s
            estimate.energy_by_column_j[column.name] = (
                estimate.energy_by_column_j.get(column.name, 0.0) + joules)
            estimate.time_by_column_ns[column.name] = (
                estimate.time_by_column_ns.get(column.name, 0)
                + interval.dt_ns)
    estimate.total_j = (
        sum(estimate.energy_by_column_j.values())
        + estimate.baseline_energy_j)
    return estimate
