"""Offline reconstruction of power-state intervals and activity segments.

The decoded log is a single interleaved stream of power-state changes and
activity changes across all devices.  This module rebuilds:

* **Power intervals** — maximal spans during which *every* sink's power
  state is constant, each annotated with the iCount pulse delta (the
  ``(dE, dt, alpha-vector)`` tuples that feed the Section 2.5 regression);
* **Activity segments** — per-device spans painted with one activity
  (single-activity devices) or a set (multi-activity devices), with proxy
  ``bind`` events resolved so a proxy segment knows which real activity
  absorbed it.

Everything here consumes only the log plus instrumentation metadata (which
res_ids exist, what their state values are named) — never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    LogEntry,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
)
from repro.errors import RegressionError


@dataclass(frozen=True, slots=True)
class PowerInterval:
    """A span of constant power states across all sinks."""

    t0_ns: int
    t1_ns: int
    pulses: int  # iCount pulses accumulated over the interval
    states: tuple[tuple[int, int], ...]  # sorted (res_id, value) pairs

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    def energy_j(self, energy_per_pulse_j: float) -> float:
        return self.pulses * energy_per_pulse_j

    def state_of(self, res_id: int) -> Optional[int]:
        for rid, value in self.states:
            if rid == res_id:
                return value
        return None


@dataclass(slots=True)
class ActivitySegment:
    """A span during which one device was painted with one activity."""

    res_id: int
    t0_ns: int
    t1_ns: int
    label: ActivityLabel
    bound_to: Optional[ActivityLabel] = None

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    @property
    def effective_label(self) -> ActivityLabel:
        """The activity this segment's usage is charged to (the bind
        target when a proxy was resolved, else the painted label)."""
        return self.bound_to if self.bound_to is not None else self.label


@dataclass(slots=True)
class MultiActivitySegment:
    """A span during which a multi-activity device served a label set."""

    res_id: int
    t0_ns: int
    t1_ns: int
    labels: frozenset[ActivityLabel]

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns


class TimelineBuilder:
    """Rebuilds intervals and segments from one node's decoded log."""

    def __init__(
        self,
        entries: list[LogEntry],
        end_time_ns: Optional[int] = None,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
    ) -> None:
        self.entries = sorted(entries, key=lambda e: (e.time_us, e.seq))
        if end_time_ns is None and self.entries:
            end_time_ns = self.entries[-1].time_ns
        self.end_time_ns = end_time_ns or 0
        self._single_ids = set(single_res_ids or [])
        self._multi_ids = set(multi_res_ids or [])
        # One pass: infer undeclared devices from entry types, and index
        # entries per device so per-device rebuilds scan only their own
        # entries instead of the whole log (the log interleaves all
        # devices, so this turns O(devices x entries) into O(entries)).
        by_res: dict[int, list[LogEntry]] = {}
        for entry in self.entries:
            by_res.setdefault(entry.res_id, []).append(entry)
            if entry.type in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
                if entry.res_id not in self._multi_ids:
                    self._single_ids.add(entry.res_id)
            elif entry.type in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
                self._multi_ids.add(entry.res_id)
        self._by_res = by_res

    # -- power intervals ----------------------------------------------------

    def power_intervals(self) -> list[PowerInterval]:
        """Spans of constant power state, with their pulse deltas.

        Boot entries establish the initial vector without opening an
        interval boundary; subsequent power-state entries close the running
        interval and start the next.
        """
        intervals: list[PowerInterval] = []
        states: dict[int, int] = {}
        span_start_ns: Optional[int] = None
        span_start_pulses = 0
        # The state vector is rebuilt only when a transition actually
        # changed it, and equal vectors are interned to one tuple — the
        # regression groups intervals by vector, so identical objects make
        # that grouping (and this loop) allocation-light.
        interned: dict[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]] = {}
        vector: tuple[tuple[int, int], ...] = ()
        dirty = False

        def current_vector() -> tuple[tuple[int, int], ...]:
            nonlocal vector, dirty
            if dirty:
                built = tuple(sorted(states.items()))
                vector = interned.setdefault(built, built)
                dirty = False
            return vector

        def set_state(res_id: int, value: int) -> None:
            nonlocal dirty
            if states.get(res_id) != value:
                states[res_id] = value
                dirty = True

        for entry in self.entries:
            entry_type = entry.type
            if entry_type == TYPE_BOOT:
                set_state(entry.res_id, entry.value)
                if span_start_ns is None:
                    span_start_ns = entry.time_ns
                    span_start_pulses = entry.icount
                continue
            if entry_type != TYPE_POWERSTATE:
                continue
            if span_start_ns is None:
                span_start_ns = entry.time_ns
                span_start_pulses = entry.icount
                set_state(entry.res_id, entry.value)
                continue
            time_ns = entry.time_ns
            if time_ns > span_start_ns:
                intervals.append(
                    PowerInterval(
                        t0_ns=span_start_ns,
                        t1_ns=time_ns,
                        pulses=entry.icount - span_start_pulses,
                        states=current_vector(),
                    )
                )
                span_start_ns = time_ns
                span_start_pulses = entry.icount
            set_state(entry.res_id, entry.value)
        # Trailing span: energy is only measured up to the last record, so
        # the final interval ends there — time past the last record is
        # unobservable, exactly as when a real node dumps its log.
        if span_start_ns is not None and self.entries:
            last = self.entries[-1]
            if last.time_ns > span_start_ns:
                intervals.append(
                    PowerInterval(
                        t0_ns=span_start_ns,
                        t1_ns=last.time_ns,
                        pulses=max(last.icount - span_start_pulses, 0),
                        states=current_vector(),
                    )
                )
        return intervals

    # -- single-activity segments --------------------------------------------

    def activity_segments(
        self,
        res_id: int,
        bind_horizon_ns: Optional[int] = None,
    ) -> list[ActivitySegment]:
        """The painted-activity history of one single-activity device,
        with bind events resolved onto the segments they absorb.

        Bind semantics follow the paper: "the resources used by a proxy
        activity are accounted for separately, and then assigned to the
        real activity as soon as the system can determine what this
        activity is."  Concretely, a bind of label ``N`` while the device
        carries label ``L`` resolves *every not-yet-resolved segment of
        L* (one reception episode spans many proxy fragments interleaved
        with sleep), and resolution chains transitively — a UART proxy
        bound to the RX proxy bound to a remote activity ends up charged
        to the remote activity.

        ``bind_horizon_ns`` optionally limits how far back a bind
        reaches; useful when the same proxy has unrelated earlier
        episodes that legitimately never resolved (e.g. LPL false
        positives followed by a real reception).
        """
        if res_id in self._multi_ids:
            raise RegressionError(
                f"res_id {res_id} is a multi-activity device"
            )
        segments: list[ActivitySegment] = []
        # Segments awaiting resolution, keyed by the label they are
        # currently attributed to (their own label, or a proxy they were
        # already bound to).
        unresolved: dict[ActivityLabel, list[ActivitySegment]] = {}
        current_label: Optional[ActivityLabel] = None
        start_ns = 0

        def close_segment(t1_ns: int) -> None:
            if current_label is None or t1_ns <= start_ns:
                return
            segment = ActivitySegment(
                res_id=res_id, t0_ns=start_ns, t1_ns=t1_ns,
                label=current_label,
            )
            segments.append(segment)
            unresolved.setdefault(current_label, []).append(segment)

        for entry in self._by_res.get(res_id, ()):
            if entry.type not in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
                continue
            new_label = entry.label
            close_segment(entry.time_ns)
            if entry.type == TYPE_ACT_BIND and current_label is not None:
                pending = unresolved.pop(current_label, [])
                kept: list[ActivitySegment] = []
                for segment in pending:
                    if (bind_horizon_ns is not None
                            and entry.time_ns - segment.t1_ns
                            > bind_horizon_ns):
                        continue  # stale episode: stays unbound
                    segment.bound_to = new_label
                    kept.append(segment)
                # Transitivity: these now follow the new label's fate.
                if kept:
                    unresolved.setdefault(new_label, []).extend(kept)
            current_label = new_label
            start_ns = entry.time_ns
        close_segment(self.end_time_ns)
        return segments

    # -- multi-activity segments ----------------------------------------------

    def multi_activity_segments(self, res_id: int) -> list[MultiActivitySegment]:
        """The activity-set history of one multi-activity device."""
        segments: list[MultiActivitySegment] = []
        current: set[ActivityLabel] = set()
        start_ns = 0
        started = False
        for entry in self._by_res.get(res_id, ()):
            if entry.type not in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
                continue
            if started and entry.time_ns > start_ns:
                segments.append(
                    MultiActivitySegment(
                        res_id=res_id,
                        t0_ns=start_ns,
                        t1_ns=entry.time_ns,
                        labels=frozenset(current),
                    )
                )
            if entry.type == TYPE_ACT_ADD:
                current.add(entry.label)
            else:
                current.discard(entry.label)
            start_ns = entry.time_ns
            started = True
        if started and self.end_time_ns > start_ns:
            segments.append(
                MultiActivitySegment(
                    res_id=res_id,
                    t0_ns=start_ns,
                    t1_ns=self.end_time_ns,
                    labels=frozenset(current),
                )
            )
        return segments

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)
