"""Offline reconstruction of power-state intervals and activity segments.

The decoded log is a single interleaved stream of power-state changes and
activity changes across all devices.  This module rebuilds:

* **Power intervals** — maximal spans during which *every* sink's power
  state is constant, each annotated with the iCount pulse delta (the
  ``(dE, dt, alpha-vector)`` tuples that feed the Section 2.5 regression);
* **Activity segments** — per-device spans painted with one activity
  (single-activity devices) or a set (multi-activity devices), with proxy
  ``bind`` events resolved so a proxy segment knows which real activity
  absorbed it.

Two entry points share one reconstruction core:

* :class:`TimelineStream` — the streaming visitor.  Feed it decoded
  entries in log order and it emits each :class:`PowerInterval`,
  :class:`ActivitySegment`, and :class:`MultiActivitySegment` through a
  callback *the moment it closes*.  Its working state is the set of
  currently-open spans (one per device plus one power interval), so a
  log of any length can be folded into an energy map without the entry
  list, interval list, or segment lists ever being materialized.
* :class:`TimelineBuilder` — the batch view, now a thin wrapper that
  runs the same trackers over a stored entry list and collects their
  emissions into lists.  Output is identical to the streaming path by
  construction.

One semantic caveat is inherent to the paper's bind model: a proxy
segment's ``bound_to`` may be assigned *after* the segment closed (a
bind reaches back over every unresolved segment of the label it binds).
The stream therefore emits segments whose ``bound_to`` can still mutate
until the stream finishes; consumers that fold proxies must defer label
resolution (see :class:`repro.core.accounting.EnergyAccumulator`), and
consumers that do not (``fold_proxies=False``) can run with
``track_binds=False`` for strictly bounded memory.

Everything here consumes only the log plus instrumentation metadata (which
res_ids exist, what their state values are named) — never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    LogColumns,
    LogEntry,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
)
from repro.errors import RegressionError


@dataclass(slots=True)
class PowerInterval:
    """A span of constant power states across all sinks.

    Not frozen (cheap construction on the per-interval hot path); treat
    as immutable once emitted.
    """

    t0_ns: int
    t1_ns: int
    pulses: int  # iCount pulses accumulated over the interval
    states: tuple[tuple[int, int], ...]  # sorted (res_id, value) pairs

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    def energy_j(self, energy_per_pulse_j: float) -> float:
        return self.pulses * energy_per_pulse_j

    def state_of(self, res_id: int) -> Optional[int]:
        for rid, value in self.states:
            if rid == res_id:
                return value
        return None


@dataclass(slots=True)
class ActivitySegment:
    """A span during which one device was painted with one activity."""

    res_id: int
    t0_ns: int
    t1_ns: int
    label: ActivityLabel
    bound_to: Optional[ActivityLabel] = None

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    @property
    def effective_label(self) -> ActivityLabel:
        """The activity this segment's usage is charged to (the bind
        target when a proxy was resolved, else the painted label)."""
        return self.bound_to if self.bound_to is not None else self.label


@dataclass(slots=True)
class MultiActivitySegment:
    """A span during which a multi-activity device served a label set."""

    res_id: int
    t0_ns: int
    t1_ns: int
    labels: frozenset[ActivityLabel]

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns


# -- streaming trackers ----------------------------------------------------
#
# Each tracker owns one kind of open span and pushes closed spans to an
# ``emit`` callback.  They are the single source of truth for the
# reconstruction semantics; both TimelineStream and TimelineBuilder are
# wiring around them.


class _IntervalTracker:
    """Folds BOOT/POWERSTATE entries into closed :class:`PowerInterval`s.

    State: the current power-state vector (interned), the open span's
    start time and pulse count, and the last entry seen — O(sinks),
    independent of log length.
    """

    __slots__ = ("emit", "bump", "_states", "_interned", "_vector",
                 "_dirty", "_span_start_ns", "_span_start_pulses",
                 "_last_time_ns", "_last_icount", "_saw_any",
                 "last_emitted_t1_ns")

    def __init__(self, emit: Callable[[PowerInterval], None],
                 bump: Optional[Callable[[int], None]] = None) -> None:
        self.emit = emit
        self.bump = bump
        self._states: dict[int, int] = {}
        self._interned: dict[tuple[tuple[int, int], ...],
                             tuple[tuple[int, int], ...]] = {}
        self._vector: tuple[tuple[int, int], ...] = ()
        self._dirty = False
        self._span_start_ns: Optional[int] = None
        self._span_start_pulses = 0
        self._last_time_ns = 0
        self._last_icount = 0
        self._saw_any = False
        self.last_emitted_t1_ns: Optional[int] = None

    def _current_vector(self) -> tuple[tuple[int, int], ...]:
        # The state vector is rebuilt only when a transition actually
        # changed it, and equal vectors are interned to one tuple — the
        # regression groups intervals by vector, so identical objects make
        # that grouping (and this loop) allocation-light.
        if self._dirty:
            built = tuple(sorted(self._states.items()))
            self._vector = self._interned.setdefault(built, built)
            self._dirty = False
        return self._vector

    def _set_state(self, res_id: int, value: int) -> None:
        if self._states.get(res_id) != value:
            self._states[res_id] = value
            self._dirty = True

    def note_record(self, time_ns: int, icount: int) -> None:
        """Advance the "last record" watermark without an interval
        boundary — for entries of other types: the trailing interval
        ends at the last *record*, whatever it was (energy past it is
        unobservable)."""
        self._saw_any = True
        self._last_time_ns = time_ns
        self._last_icount = icount

    def feed(self, entry: LogEntry) -> None:
        # Every entry type updates the "last record" watermark (see
        # note_record).
        self._saw_any = True
        self._last_time_ns = entry.time_ns
        self._last_icount = entry.icount
        entry_type = entry.type
        if entry_type == TYPE_BOOT:
            # Boot entries establish the initial vector without opening
            # an interval boundary.
            self._set_state(entry.res_id, entry.value)
            if self._span_start_ns is None:
                self._span_start_ns = entry.time_ns
                self._span_start_pulses = entry.icount
                if self.bump is not None:
                    self.bump(1)
            return
        if entry_type != TYPE_POWERSTATE:
            return
        if self._span_start_ns is None:
            self._span_start_ns = entry.time_ns
            self._span_start_pulses = entry.icount
            self._set_state(entry.res_id, entry.value)
            if self.bump is not None:
                self.bump(1)
            return
        time_ns = entry.time_ns
        if time_ns > self._span_start_ns:
            interval = PowerInterval(
                t0_ns=self._span_start_ns,
                t1_ns=time_ns,
                pulses=entry.icount - self._span_start_pulses,
                states=self._current_vector(),
            )
            self._span_start_ns = time_ns
            self._span_start_pulses = entry.icount
            self.last_emitted_t1_ns = time_ns
            self.emit(interval)
        self._set_state(entry.res_id, entry.value)

    def finish(self) -> None:
        """Close the trailing span at the last record.  Time past the
        last record is unobservable, exactly as when a real node dumps
        its log.  Idempotent: the span is consumed, so a second finish
        emits nothing."""
        if self._span_start_ns is None or not self._saw_any:
            return
        if self._last_time_ns > self._span_start_ns:
            interval = PowerInterval(
                t0_ns=self._span_start_ns,
                t1_ns=self._last_time_ns,
                pulses=max(self._last_icount - self._span_start_pulses, 0),
                states=self._current_vector(),
            )
            self.last_emitted_t1_ns = self._last_time_ns
            self.emit(interval)
        self._span_start_ns = None

    def open_count(self) -> int:
        return 1 if self._span_start_ns is not None else 0


class _SingleTracker:
    """Rebuilds one single-activity device's painted history.

    Bind semantics follow the paper: "the resources used by a proxy
    activity are accounted for separately, and then assigned to the
    real activity as soon as the system can determine what this
    activity is."  Concretely, a bind of label ``N`` while the device
    carries label ``L`` resolves *every not-yet-resolved segment of
    L* (one reception episode spans many proxy fragments interleaved
    with sleep), and resolution chains transitively — a UART proxy
    bound to the RX proxy bound to a remote activity ends up charged
    to the remote activity.

    ``bind_horizon_ns`` optionally limits how far back a bind
    reaches; useful when the same proxy has unrelated earlier
    episodes that legitimately never resolved (e.g. LPL false
    positives followed by a real reception).

    ``track_binds=False`` drops the unresolved-segment bookkeeping
    entirely: closed segments are emitted and forgotten, so memory is
    bounded by the one open segment.  ``bound_to`` is then never set —
    only valid for consumers that read ``label``, not
    ``effective_label`` (i.e. ``fold_proxies=False`` accounting).
    """

    __slots__ = ("res_id", "emit", "bump", "track_binds",
                 "bind_horizon_ns", "_unresolved", "_open")

    def __init__(
        self,
        res_id: int,
        emit: Callable[[ActivitySegment], None],
        track_binds: bool = True,
        bind_horizon_ns: Optional[int] = None,
        bump: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.res_id = res_id
        self.emit = emit
        self.bump = bump
        self.track_binds = track_binds
        self.bind_horizon_ns = bind_horizon_ns
        # Segments awaiting resolution, keyed by the label they are
        # currently attributed to (their own label, or a proxy they were
        # already bound to).
        self._unresolved: dict[ActivityLabel, list[ActivitySegment]] = {}
        # The currently-open segment (t1_ns finalized at close), or None.
        self._open: Optional[ActivitySegment] = None

    @property
    def open_segment(self) -> Optional[ActivitySegment]:
        return self._open

    def _close(self, t1_ns: int) -> None:
        segment = self._open
        if segment is None:
            return
        self._open = None
        if self.bump is not None:
            self.bump(-1)
        if t1_ns <= segment.t0_ns:
            return  # zero-length: never existed
        segment.t1_ns = t1_ns
        if self.track_binds:
            self._unresolved.setdefault(segment.label, []).append(segment)
            if self.bump is not None:
                self.bump(1)
        self.emit(segment)

    def feed(self, entry: LogEntry) -> None:
        if entry.type not in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
            return
        new_label = entry.label
        previous = self._open
        self._close(entry.time_ns)
        if (entry.type == TYPE_ACT_BIND and previous is not None
                and self.track_binds):
            pending = self._unresolved.pop(previous.label, [])
            kept: list[ActivitySegment] = []
            for segment in pending:
                if (self.bind_horizon_ns is not None
                        and entry.time_ns - segment.t1_ns
                        > self.bind_horizon_ns):
                    continue  # stale episode: stays unbound
                segment.bound_to = new_label
                kept.append(segment)
            # Transitivity: these now follow the new label's fate.
            if kept:
                self._unresolved.setdefault(new_label, []).extend(kept)
            if self.bump is not None:
                self.bump(len(kept) - len(pending))
        self._open = ActivitySegment(
            res_id=self.res_id, t0_ns=entry.time_ns, t1_ns=entry.time_ns,
            label=new_label,
        )
        if self.bump is not None:
            self.bump(1)

    def finish(self, end_time_ns: int) -> None:
        self._close(end_time_ns)

    def open_count(self) -> int:
        count = 1 if self._open is not None else 0
        if self.track_binds:
            count += sum(len(v) for v in self._unresolved.values())
        return count


class _MultiTracker:
    """Rebuilds one multi-activity device's label-set history."""

    __slots__ = ("res_id", "emit", "bump", "_current", "_start_ns",
                 "_started")

    def __init__(self, res_id: int,
                 emit: Callable[[MultiActivitySegment], None],
                 bump: Optional[Callable[[int], None]] = None) -> None:
        self.res_id = res_id
        self.emit = emit
        self.bump = bump
        self._current: set[ActivityLabel] = set()
        self._start_ns = 0
        self._started = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def open_start_ns(self) -> int:
        return self._start_ns

    def current_labels(self) -> frozenset[ActivityLabel]:
        """Snapshot of the open span's label set (it mutates in place)."""
        return frozenset(self._current)

    def feed(self, entry: LogEntry) -> None:
        if entry.type not in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
            return
        if self._started and entry.time_ns > self._start_ns:
            self.emit(
                MultiActivitySegment(
                    res_id=self.res_id,
                    t0_ns=self._start_ns,
                    t1_ns=entry.time_ns,
                    labels=frozenset(self._current),
                )
            )
        if entry.type == TYPE_ACT_ADD:
            self._current.add(entry.label)
        else:
            self._current.discard(entry.label)
        self._start_ns = entry.time_ns
        if not self._started:
            self._started = True
            if self.bump is not None:
                self.bump(1)

    def finish(self, end_time_ns: int) -> None:
        if self._started and end_time_ns > self._start_ns:
            self.emit(
                MultiActivitySegment(
                    res_id=self.res_id,
                    t0_ns=self._start_ns,
                    t1_ns=end_time_ns,
                    labels=frozenset(self._current),
                )
            )
        if self._started:
            self._started = False
            if self.bump is not None:
                self.bump(-1)

    def open_count(self) -> int:
        return 1 if self._started else 0


def _ignore(_obj) -> None:
    pass


class TimelineStream:
    """The streaming visitor: feed entries in log order, receive each
    interval and segment through a callback the moment it closes.

    Entries must arrive sorted by ``(time_us, seq)`` — the order the
    logger writes them (``iter_entries`` yields them that way; the
    timestamps a node records are monotone).

    Devices may be declared up front (``single_res_ids`` /
    ``multi_res_ids``) or inferred from entry types exactly as the batch
    builder infers them.  ``peak_open_items`` tracks the high-water mark
    of open state (open interval + open segments + unresolved bind
    candidates), maintained by O(1) deltas at each span open/close so
    the instrumentation costs nothing on the per-entry path: with
    ``track_binds=False`` it is O(devices), independent of log length —
    the bounded-memory contract the tests pin down.
    """

    def __init__(
        self,
        *,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
        track_binds: bool = True,
        bind_horizon_ns: Optional[int] = None,
        on_interval: Optional[Callable[[PowerInterval], None]] = None,
        on_segment: Optional[Callable[[ActivitySegment], None]] = None,
        on_multi_segment: Optional[
            Callable[[MultiActivitySegment], None]] = None,
    ) -> None:
        self.track_binds = track_binds
        self.bind_horizon_ns = bind_horizon_ns
        self.on_segment = on_segment or _ignore
        self.on_multi_segment = on_multi_segment or _ignore
        self._open_items = 0
        self.peak_open_items = 0
        self.intervals = _IntervalTracker(on_interval or _ignore,
                                          bump=self._bump)
        self._single_ids: set[int] = set(single_res_ids or [])
        self._multi_ids: set[int] = set(multi_res_ids or [])
        self._singles: dict[int, _SingleTracker] = {
            res_id: self._make_single(res_id) for res_id in self._single_ids
        }
        self._multis: dict[int, _MultiTracker] = {
            res_id: _MultiTracker(res_id, self.on_multi_segment,
                                  bump=self._bump)
            for res_id in self._multi_ids
        }
        self._last_entry_time_ns = 0
        self._saw_any = False

    def _bump(self, delta: int) -> None:
        self._open_items += delta
        if self._open_items > self.peak_open_items:
            self.peak_open_items = self._open_items

    def _make_single(self, res_id: int) -> _SingleTracker:
        return _SingleTracker(
            res_id, self.on_segment,
            track_binds=self.track_binds,
            bind_horizon_ns=self.bind_horizon_ns,
            bump=self._bump,
        )

    # -- feeding -----------------------------------------------------------

    def feed(self, entry: LogEntry) -> None:
        self._saw_any = True
        time_ns = entry.time_ns
        self._last_entry_time_ns = time_ns
        entry_type = entry.type
        if entry_type == TYPE_POWERSTATE or entry_type == TYPE_BOOT:
            # Only power entries can open or close an interval; the
            # activity types below just advance the watermark.
            self.intervals.feed(entry)
            return
        self.intervals.note_record(time_ns, entry.icount)
        if entry_type == TYPE_ACT_CHANGE or entry_type == TYPE_ACT_BIND:
            res_id = entry.res_id
            # Same inference as the batch builder: a change/bind marks a
            # single-activity device unless the id is already multi.
            if res_id not in self._multi_ids:
                tracker = self._singles.get(res_id)
                if tracker is None:
                    tracker = self._singles[res_id] = \
                        self._make_single(res_id)
                    self._single_ids.add(res_id)
                tracker.feed(entry)
        elif entry_type == TYPE_ACT_ADD or entry_type == TYPE_ACT_REMOVE:
            res_id = entry.res_id
            tracker = self._multis.get(res_id)
            if tracker is None:
                tracker = self._multis[res_id] = \
                    _MultiTracker(res_id, self.on_multi_segment,
                                  bump=self._bump)
                self._multi_ids.add(res_id)
            tracker.feed(entry)

    def feed_all(self, entries: Iterable[LogEntry],
                 end_time_ns: Optional[int] = None) -> None:
        """Feed a whole entry iterable, then :meth:`finish`."""
        for entry in entries:
            self.feed(entry)
        self.finish(end_time_ns)

    def finish(self, end_time_ns: Optional[int] = None) -> None:
        """Close every open span.  ``end_time_ns`` defaults to the last
        entry's time (the batch builder's default)."""
        if end_time_ns is None:
            end_time_ns = self._last_entry_time_ns if self._saw_any else 0
        self.intervals.finish()
        for tracker in self._singles.values():
            tracker.finish(end_time_ns)
        for tracker in self._multis.values():
            tracker.finish(end_time_ns)

    # -- introspection ------------------------------------------------------

    def open_items(self) -> int:
        """Open spans plus retained bind candidates — the stream's live
        state, the quantity that must stay flat as the log grows."""
        return (
            self.intervals.open_count()
            + sum(t.open_count() for t in self._singles.values())
            + sum(t.open_count() for t in self._multis.values())
        )

    def single_tracker(self, res_id: int) -> Optional[_SingleTracker]:
        return self._singles.get(res_id)

    def multi_tracker(self, res_id: int) -> Optional[_MultiTracker]:
        return self._multis.get(res_id)

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)


# -- columnar reconstruction ------------------------------------------------


class _SingleColumns:
    """One single-activity device's segments as parallel columns.

    ``t0``/``t1`` are sorted, non-overlapping int64 arrays (zero-length
    segments were never emitted); ``labels`` holds the painted 16-bit
    encodings and ``bound`` the bind-resolved encoding (or ``None``) per
    segment — the columnar form of :class:`ActivitySegment`.
    """

    __slots__ = ("t0", "t1", "labels", "bound")

    def __init__(self, t0, t1, labels, bound) -> None:
        self.t0 = t0
        self.t1 = t1
        self.labels = labels
        self.bound = bound

    def __len__(self) -> int:
        return len(self.labels)


class _MultiColumns:
    """One multi-activity device's segments as parallel columns;
    ``set_ids`` indexes :attr:`ColumnarTimeline.label_sets`."""

    __slots__ = ("t0", "t1", "set_ids")

    def __init__(self, t0, t1, set_ids) -> None:
        self.t0 = t0
        self.t1 = t1
        self.set_ids = set_ids

    def __len__(self) -> int:
        return len(self.set_ids)


class ColumnarTimeline:
    """The whole reconstruction as column arrays: power intervals and
    activity segments rebuilt from :class:`~repro.core.logger.LogColumns`
    without materializing a single :class:`LogEntry`,
    :class:`PowerInterval`, or segment object.

    Semantics mirror the streaming trackers entry-for-entry (the
    backend-equivalence tests pin the outputs bit-for-bit):

    * intervals close at each power-state boundary and finally at the
      last record of *any* type; state vectors are interned tuples in
      sorted-``res_id`` order, exactly like :class:`_IntervalTracker`;
    * single-device segments span consecutive change/bind records, with
      zero-length spans dropped and the trailing span closed at
      ``end_time_ns``; bind events resolve every unresolved segment of
      the label they rebind, transitively, like :class:`_SingleTracker`
      with an unbounded horizon;
    * multi-device spans carry interned ``frozenset`` label sets — the
      *same* interned objects per distinct set, so downstream iteration
      order matches the streaming path's.

    Entries must be in log order.  Devices may be declared up front
    (always the case on node paths); otherwise they are inferred over
    the whole log like :class:`TimelineBuilder` does.
    """

    def __init__(
        self,
        columns: LogColumns,
        end_time_ns: Optional[int] = None,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
    ) -> None:
        self.columns = columns
        n = len(columns)
        if end_time_ns is None:
            end_time_ns = int(columns.time_ns[-1]) if n else 0
        self.end_time_ns = end_time_ns
        types = columns.type
        res = columns.res_id
        is_single_entry = (types == TYPE_ACT_CHANGE) \
            | (types == TYPE_ACT_BIND)
        is_multi_entry = (types == TYPE_ACT_ADD) | (types == TYPE_ACT_REMOVE)
        self._single_ids = set(single_res_ids or [])
        self._multi_ids = set(multi_res_ids or [])
        # Whole-log device inference, replicating the batch builder's
        # in-order rule: add/remove marks a device multi; change/bind
        # marks it single only if it was not yet multi at that point —
        # i.e. its first change precedes its first add/remove.
        single_pos = np.nonzero(is_single_entry)[0]
        multi_pos = np.nonzero(is_multi_entry)[0]
        first_multi: dict[int, int] = {rid: -1 for rid in self._multi_ids}
        if len(multi_pos):
            rids, firsts = np.unique(res[multi_pos], return_index=True)
            for rid, first in zip(rids.tolist(), firsts.tolist()):
                pos = int(multi_pos[first])
                if rid not in first_multi:
                    first_multi[rid] = pos
                self._multi_ids.add(rid)
        if len(single_pos):
            rids, firsts = np.unique(res[single_pos], return_index=True)
            for rid, first in zip(rids.tolist(), firsts.tolist()):
                bound = first_multi.get(rid)
                if bound is None or int(single_pos[first]) < bound:
                    self._single_ids.add(rid)
        self._build_intervals(single_pos, multi_pos)
        self._singles: dict[int, _SingleColumns] = {}
        for rid in sorted(self._single_ids):
            mask = is_single_entry & (res == rid)
            rows = np.nonzero(mask)[0]
            # The streaming feed drops a change/bind the moment its
            # res_id is known to be multi, so rows at or past the
            # device's first add/remove (or all rows, when it was
            # declared multi up front: bound -1) never reach the
            # single tracker.
            bound = first_multi.get(rid)
            if bound is not None:
                rows = rows[rows < bound]
            self._singles[rid] = self._build_single(rows)
        self.label_sets: list[frozenset[ActivityLabel]] = []
        self._set_intern: dict[tuple[int, ...], int] = {}
        self._multis: dict[int, _MultiColumns] = {}
        for rid in sorted(self._multi_ids):
            mask = is_multi_entry & (res == rid)
            self._multis[rid] = self._build_multi(np.nonzero(mask)[0])

    # -- construction -------------------------------------------------------

    def _build_intervals(self, single_pos, multi_pos) -> None:
        """Power entries → interval columns, fully vectorized.

        Equivalent to replaying :class:`_IntervalTracker` entry by
        entry:

        * the span opens at the first power/boot entry; every *non-boot*
          power entry at a time strictly later than the open span emits
          a boundary (same-time entries merge, boots never emit) —
          computed as a first-of-each-distinct-time mask;
        * pulses are the iCount deltas between consecutive boundaries;
        * the state vector at each boundary is the last value every sink
          set *before* the emitting entry — a per-sink ``searchsorted``
          forward fill — with equal rows interned via ``np.unique``;
        * the trailing span closes at the last record of any type, with
          the post-log state vector and non-negative clamped pulses.
        """
        columns = self.columns
        types = columns.type
        p_pos = np.nonzero(
            (types == TYPE_POWERSTATE) | (types == TYPE_BOOT))[0]
        self.vectors: list[tuple[tuple[int, int], ...]] = []
        n_power = len(p_pos)
        n = len(columns)
        if not n_power or not n:
            self.interval_t0 = np.empty(0, dtype=np.int64)
            self.interval_t1 = np.empty(0, dtype=np.int64)
            self.interval_pulses = np.empty(0, dtype=np.int64)
            self.interval_vec = np.empty(0, dtype=np.intp)
            return
        p_types = types[p_pos]
        p_res = columns.res_id[p_pos]
        p_time = columns.time_ns[p_pos]
        p_ic = columns.icount[p_pos]
        p_val = columns.value[p_pos]
        open_time = int(p_time[0])
        open_ic = int(p_ic[0])
        # Emitting entries: non-boot rows whose time exceeds the running
        # span start.  Times are non-decreasing, so the running start is
        # simply the previous candidate's time (or the open time).
        candidates = np.nonzero(p_types != TYPE_BOOT)[0]
        cand_times = p_time[candidates]
        previous = np.concatenate((
            np.array([open_time], dtype=np.int64), cand_times[:-1]))
        emit = candidates[cand_times > previous]
        boundary_times = p_time[emit]
        boundary_ic = p_ic[emit]
        if len(emit):
            t0s = np.concatenate((
                np.array([open_time], dtype=np.int64), boundary_times[:-1]))
            pulse_base = np.concatenate((
                np.array([open_ic], dtype=np.int64), boundary_ic[:-1]))
            t1s = boundary_times
            pulses = boundary_ic - pulse_base
        else:
            t0s = np.empty(0, dtype=np.int64)
            t1s = np.empty(0, dtype=np.int64)
            pulses = np.empty(0, dtype=np.int64)
        # Trailing span: closes at the last record of *any* type (time
        # past it is unobservable), clamped to non-negative pulses.
        last_t = int(columns.time_ns[n - 1])
        last_ic = int(columns.icount[n - 1])
        tail_start = int(t1s[-1]) if len(t1s) else open_time
        tail_ic = int(boundary_ic[-1]) if len(t1s) else open_ic
        has_tail = last_t > tail_start
        if has_tail:
            t0s = np.concatenate((t0s, [tail_start]))
            t1s = np.concatenate((t1s, [last_t]))
            pulses = np.concatenate((pulses, [max(last_ic - tail_ic, 0)]))
        # State vectors: one query per boundary (the state *before* the
        # emitting entry) plus the post-log state for the tail.  Per
        # sink, the value at query q is the sink's last write before
        # row q — a forward fill by bisection over its write positions.
        queries = emit
        if has_tail:
            queries = np.concatenate((queries, [n_power]))
        sink_ids = np.unique(p_res).tolist()
        value_matrix = np.full((len(queries), len(sink_ids)), -1,
                               dtype=np.int64)
        for column_index, rid in enumerate(sink_ids):
            writes = np.nonzero(p_res == rid)[0]
            write_values = p_val[writes]
            fill = np.searchsorted(writes, queries, side="left") - 1
            seen = fill >= 0
            value_matrix[seen, column_index] = write_values[fill[seen]]
        # Intern equal rows, numbered in first-occurrence order (the
        # order the streaming tracker would have produced): byte-view
        # unique + a first-index renumbering, no per-row python.
        matrix = np.ascontiguousarray(value_matrix)
        if matrix.shape[1]:
            row_view = matrix.view(
                [("", matrix.dtype)] * matrix.shape[1]).ravel()
            _, first_idx, inverse = np.unique(
                row_view, return_index=True, return_inverse=True)
        else:
            first_idx = np.zeros(min(len(matrix), 1), dtype=np.intp)
            inverse = np.zeros(len(matrix), dtype=np.intp)
        rank = np.argsort(first_idx, kind="stable")
        remap = np.empty(len(first_idx), dtype=np.intp)
        remap[rank] = np.arange(len(first_idx), dtype=np.intp)
        vectors = self.vectors
        for row_index in first_idx[rank].tolist():
            vectors.append(tuple(
                (rid, value)
                for rid, value in zip(sink_ids,
                                      value_matrix[row_index].tolist())
                if value != -1))
        self.interval_t0 = t0s
        self.interval_t1 = t1s
        self.interval_pulses = pulses
        self.interval_vec = remap[inverse]

    def _build_single(self, pos: np.ndarray) -> _SingleColumns:
        """One device's change/bind rows → segment columns, with the
        :class:`_SingleTracker` bind semantics (pop every unresolved
        segment of the rebound label; chain transitively)."""
        columns = self.columns
        bind_rows = columns.type[pos] == TYPE_ACT_BIND
        if not bind_rows.any():
            # No binds: segments are simply the spans between
            # consecutive changes (plus the trailing span to the window
            # end), zero-length spans dropped — fully vectorized.
            times = columns.time_ns[pos]
            values = columns.value[pos]
            if not len(pos):
                empty = np.empty(0, dtype=np.int64)
                return _SingleColumns(t0=empty, t1=empty, labels=[],
                                      bound=[])
            t0 = times
            t1 = np.concatenate((times[1:], [self.end_time_ns]))
            keep = t1 > t0
            kept_labels = values[keep].tolist()
            return _SingleColumns(
                t0=t0[keep], t1=t1[keep],
                labels=kept_labels,
                bound=[None] * len(kept_labels),
            )
        times = columns.time_ns[pos].tolist()
        labels = columns.value[pos].tolist()
        binds = bind_rows.tolist()
        t0s: list[int] = []
        t1s: list[int] = []
        seg_labels: list[int] = []
        bound: list[Optional[int]] = []
        unresolved: dict[int, list[int]] = {}
        open_label: Optional[int] = None
        open_t0 = 0
        for k in range(len(times)):
            t = times[k]
            new_label = labels[k]
            previous_label = open_label
            if open_label is not None and t > open_t0:
                index = len(seg_labels)
                t0s.append(open_t0)
                t1s.append(t)
                seg_labels.append(open_label)
                bound.append(None)
                unresolved.setdefault(open_label, []).append(index)
            if binds[k] and previous_label is not None:
                pending = unresolved.pop(previous_label, [])
                if pending:
                    for index in pending:
                        bound[index] = new_label
                    unresolved.setdefault(new_label, []).extend(pending)
            open_label = new_label
            open_t0 = t
        if open_label is not None and self.end_time_ns > open_t0:
            t0s.append(open_t0)
            t1s.append(self.end_time_ns)
            seg_labels.append(open_label)
            bound.append(None)
        return _SingleColumns(
            t0=np.array(t0s, dtype=np.int64),
            t1=np.array(t1s, dtype=np.int64),
            labels=seg_labels,
            bound=bound,
        )

    def _intern_set(self, values: set[int]) -> int:
        key = tuple(sorted(values))
        set_id = self._set_intern.get(key)
        if set_id is None:
            set_id = len(self.label_sets)
            self._set_intern[key] = set_id
            self.label_sets.append(
                frozenset(ActivityLabel.decode(v) for v in key))
        return set_id

    def _build_multi(self, pos: np.ndarray) -> _MultiColumns:
        """One device's add/remove rows → label-set spans, mirroring
        :class:`_MultiTracker` (snapshot emitted before each change)."""
        columns = self.columns
        times = columns.time_ns[pos].tolist()
        labels = columns.value[pos].tolist()
        adds = (columns.type[pos] == TYPE_ACT_ADD).tolist()
        t0s: list[int] = []
        t1s: list[int] = []
        set_ids: list[int] = []
        current: set[int] = set()
        start = 0
        started = False
        for k in range(len(times)):
            t = times[k]
            if started and t > start:
                t0s.append(start)
                t1s.append(t)
                set_ids.append(self._intern_set(current))
            if adds[k]:
                current.add(labels[k])
            else:
                current.discard(labels[k])
            start = t
            started = True
        if started and self.end_time_ns > start:
            t0s.append(start)
            t1s.append(self.end_time_ns)
            set_ids.append(self._intern_set(current))
        return _MultiColumns(
            t0=np.array(t0s, dtype=np.int64),
            t1=np.array(t1s, dtype=np.int64),
            set_ids=set_ids,
        )

    # -- views --------------------------------------------------------------

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)

    def single_columns(self, res_id: int) -> Optional[_SingleColumns]:
        return self._singles.get(res_id)

    def multi_columns(self, res_id: int) -> Optional[_MultiColumns]:
        return self._multis.get(res_id)

    def power_intervals(self) -> list[PowerInterval]:
        """Materialize the interval columns as objects (tests, tools)."""
        vectors = self.vectors
        return [
            PowerInterval(t0_ns=t0, t1_ns=t1, pulses=p, states=vectors[v])
            for t0, t1, p, v in zip(
                self.interval_t0.tolist(), self.interval_t1.tolist(),
                self.interval_pulses.tolist(), self.interval_vec.tolist())
        ]

    def activity_segments(self, res_id: int) -> list[ActivitySegment]:
        """Materialize one device's segment columns as objects."""
        device = self._singles.get(res_id)
        if device is None:
            return []
        segments = []
        for t0, t1, label, bound in zip(
                device.t0.tolist(), device.t1.tolist(),
                device.labels, device.bound):
            segments.append(ActivitySegment(
                res_id=res_id, t0_ns=t0, t1_ns=t1,
                label=ActivityLabel.decode(label),
                bound_to=(ActivityLabel.decode(bound)
                          if bound is not None else None),
            ))
        return segments

    def grouped_inputs(
        self,
        energy_per_pulse_j: float,
        min_interval_ns: int = 0,
    ) -> tuple[list[tuple[tuple[int, int], ...]], list[int], list[float]]:
        """Group intervals by state vector straight off the columns —
        the regression's ``(E_j, t_j)`` inputs, bit-identical to
        :func:`repro.core.regression.group_intervals` over the usable
        materialized intervals (same first-occurrence group order, same
        int time sums, same float energy fold).

        ``np.bincount(idx, weights=w)`` accumulates each bin's weights
        sequentially in array order starting from ``0.0`` — exactly the
        ``dict.get(key, 0.0) + x`` fold the scalar loop performs, so the
        per-group energy sums here are bit-identical to it (time sums
        are exact int64 arithmetic regardless)."""
        dt = self.interval_t1 - self.interval_t0
        keep = dt >= min_interval_ns
        if not bool(keep.any()):
            raise RegressionError("no usable power intervals")
        vec = self.interval_vec[keep]
        # interval_vec is already a dense code (an index into
        # self.vectors), so grouping needs no sort: a reversed fancy
        # assignment yields each code's first-occurrence row (last
        # write wins), an argsort over the handful of present codes
        # gives first-occurrence order, and a remap renumbers rows.
        n_vecs = len(self.vectors)
        n_rows = len(vec)
        first_row = np.full(n_vecs, -1, dtype=np.int64)
        first_row[vec[::-1]] = np.arange(
            n_rows - 1, -1, -1, dtype=np.int64)
        present = np.nonzero(first_row >= 0)[0]
        ordered = present[np.argsort(first_row[present], kind="stable")]
        remap = np.full(n_vecs, -1, dtype=np.intp)
        remap[ordered] = np.arange(len(ordered), dtype=np.intp)
        groups = remap[vec]
        times = np.bincount(
            groups, weights=dt[keep], minlength=len(ordered))
        energies = np.bincount(
            groups,
            weights=self.interval_pulses[keep] * energy_per_pulse_j,
            minlength=len(ordered))
        vectors = self.vectors
        grouped = [vectors[v] for v in ordered.tolist()]
        return (
            grouped,
            [int(t) for t in times.tolist()],
            energies.tolist(),
        )


class TimelineBuilder:
    """The batch view of one node's log: a thin wrapper that runs the
    streaming trackers over a stored entry list and returns their
    emissions as lists.  Kept for callers that want random access
    (per-device lane rendering, windowed figures); the reconstruction
    semantics live in the trackers above."""

    def __init__(
        self,
        entries: list[LogEntry],
        end_time_ns: Optional[int] = None,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
    ) -> None:
        # Decoded logs arrive already in (time_us, seq) order — the
        # logger writes monotone timestamps and the decoder numbers
        # entries sequentially — so check (copy-free) before paying for
        # a keyed sort.
        presorted = True
        for i in range(1, len(entries)):
            prev, cur = entries[i - 1], entries[i]
            if prev.time_us > cur.time_us or (
                    prev.time_us == cur.time_us and prev.seq > cur.seq):
                presorted = False
                break
        if presorted:
            self.entries = list(entries)
        else:
            self.entries = sorted(entries, key=lambda e: (e.time_us, e.seq))
        if end_time_ns is None and self.entries:
            end_time_ns = self.entries[-1].time_ns
        self.end_time_ns = end_time_ns or 0
        self._single_ids = set(single_res_ids or [])
        self._multi_ids = set(multi_res_ids or [])
        # One pass: infer undeclared devices from entry types.  The
        # per-device entry index (for activity_segments rebuilds) is
        # deferred until someone asks — the common accounting path never
        # touches it.
        for entry in self.entries:
            if entry.type in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
                if entry.res_id not in self._multi_ids:
                    self._single_ids.add(entry.res_id)
            elif entry.type in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
                self._multi_ids.add(entry.res_id)
        self._by_res_cache: Optional[dict[int, list[LogEntry]]] = None
        self._intervals_cache: Optional[list[PowerInterval]] = None

    @property
    def _by_res(self) -> dict[int, list[LogEntry]]:
        """Per-device entry index, built on first use (the log
        interleaves all devices, so this turns per-device rebuilds from
        O(devices x entries) into O(entries))."""
        if self._by_res_cache is None:
            by_res: dict[int, list[LogEntry]] = {}
            for entry in self.entries:
                by_res.setdefault(entry.res_id, []).append(entry)
            self._by_res_cache = by_res
        return self._by_res_cache

    # -- power intervals ----------------------------------------------------

    def power_intervals(self) -> list[PowerInterval]:
        """Spans of constant power state, with their pulse deltas.

        Computed once and cached (the intervals are immutable): the
        regression and the accounting both walk them.
        """
        if self._intervals_cache is None:
            intervals: list[PowerInterval] = []
            tracker = _IntervalTracker(intervals.append)
            feed = tracker.feed
            for entry in self.entries:
                # Only power entries move the interval state; the final
                # watermark (the last record of *any* type) is applied
                # once below instead of per entry.
                if entry.type == TYPE_POWERSTATE or entry.type == TYPE_BOOT:
                    feed(entry)
            if self.entries:
                last = self.entries[-1]
                tracker.note_record(last.time_ns, last.icount)
            tracker.finish()
            self._intervals_cache = intervals
        return self._intervals_cache

    # -- single-activity segments --------------------------------------------

    def activity_segments(
        self,
        res_id: int,
        bind_horizon_ns: Optional[int] = None,
    ) -> list[ActivitySegment]:
        """The painted-activity history of one single-activity device,
        with bind events resolved onto the segments they absorb (see
        :class:`_SingleTracker` for the bind semantics)."""
        if res_id in self._multi_ids:
            raise RegressionError(
                f"res_id {res_id} is a multi-activity device"
            )
        segments: list[ActivitySegment] = []
        tracker = _SingleTracker(
            res_id, segments.append, bind_horizon_ns=bind_horizon_ns)
        for entry in self._by_res.get(res_id, ()):
            tracker.feed(entry)
        tracker.finish(self.end_time_ns)
        return segments

    # -- multi-activity segments ----------------------------------------------

    def multi_activity_segments(self, res_id: int) -> list[MultiActivitySegment]:
        """The activity-set history of one multi-activity device."""
        segments: list[MultiActivitySegment] = []
        tracker = _MultiTracker(res_id, segments.append)
        for entry in self._by_res.get(res_id, ()):
            tracker.feed(entry)
        tracker.finish(self.end_time_ns)
        return segments

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)
