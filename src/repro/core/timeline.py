"""Offline reconstruction of power-state intervals and activity segments.

The decoded log is a single interleaved stream of power-state changes and
activity changes across all devices.  This module rebuilds:

* **Power intervals** — maximal spans during which *every* sink's power
  state is constant, each annotated with the iCount pulse delta (the
  ``(dE, dt, alpha-vector)`` tuples that feed the Section 2.5 regression);
* **Activity segments** — per-device spans painted with one activity
  (single-activity devices) or a set (multi-activity devices), with proxy
  ``bind`` events resolved so a proxy segment knows which real activity
  absorbed it.

Two entry points share one reconstruction core:

* :class:`TimelineStream` — the streaming visitor.  Feed it decoded
  entries in log order and it emits each :class:`PowerInterval`,
  :class:`ActivitySegment`, and :class:`MultiActivitySegment` through a
  callback *the moment it closes*.  Its working state is the set of
  currently-open spans (one per device plus one power interval), so a
  log of any length can be folded into an energy map without the entry
  list, interval list, or segment lists ever being materialized.
* :class:`TimelineBuilder` — the batch view, now a thin wrapper that
  runs the same trackers over a stored entry list and collects their
  emissions into lists.  Output is identical to the streaming path by
  construction.

One semantic caveat is inherent to the paper's bind model: a proxy
segment's ``bound_to`` may be assigned *after* the segment closed (a
bind reaches back over every unresolved segment of the label it binds).
The stream therefore emits segments whose ``bound_to`` can still mutate
until the stream finishes; consumers that fold proxies must defer label
resolution (see :class:`repro.core.accounting.EnergyAccumulator`), and
consumers that do not (``fold_proxies=False``) can run with
``track_binds=False`` for strictly bounded memory.

Everything here consumes only the log plus instrumentation metadata (which
res_ids exist, what their state values are named) — never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    LogEntry,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
)
from repro.errors import RegressionError


@dataclass(slots=True)
class PowerInterval:
    """A span of constant power states across all sinks.

    Not frozen (cheap construction on the per-interval hot path); treat
    as immutable once emitted.
    """

    t0_ns: int
    t1_ns: int
    pulses: int  # iCount pulses accumulated over the interval
    states: tuple[tuple[int, int], ...]  # sorted (res_id, value) pairs

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    def energy_j(self, energy_per_pulse_j: float) -> float:
        return self.pulses * energy_per_pulse_j

    def state_of(self, res_id: int) -> Optional[int]:
        for rid, value in self.states:
            if rid == res_id:
                return value
        return None


@dataclass(slots=True)
class ActivitySegment:
    """A span during which one device was painted with one activity."""

    res_id: int
    t0_ns: int
    t1_ns: int
    label: ActivityLabel
    bound_to: Optional[ActivityLabel] = None

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns

    @property
    def effective_label(self) -> ActivityLabel:
        """The activity this segment's usage is charged to (the bind
        target when a proxy was resolved, else the painted label)."""
        return self.bound_to if self.bound_to is not None else self.label


@dataclass(slots=True)
class MultiActivitySegment:
    """A span during which a multi-activity device served a label set."""

    res_id: int
    t0_ns: int
    t1_ns: int
    labels: frozenset[ActivityLabel]

    @property
    def dt_ns(self) -> int:
        return self.t1_ns - self.t0_ns


# -- streaming trackers ----------------------------------------------------
#
# Each tracker owns one kind of open span and pushes closed spans to an
# ``emit`` callback.  They are the single source of truth for the
# reconstruction semantics; both TimelineStream and TimelineBuilder are
# wiring around them.


class _IntervalTracker:
    """Folds BOOT/POWERSTATE entries into closed :class:`PowerInterval`s.

    State: the current power-state vector (interned), the open span's
    start time and pulse count, and the last entry seen — O(sinks),
    independent of log length.
    """

    __slots__ = ("emit", "bump", "_states", "_interned", "_vector",
                 "_dirty", "_span_start_ns", "_span_start_pulses",
                 "_last_time_ns", "_last_icount", "_saw_any",
                 "last_emitted_t1_ns")

    def __init__(self, emit: Callable[[PowerInterval], None],
                 bump: Optional[Callable[[int], None]] = None) -> None:
        self.emit = emit
        self.bump = bump
        self._states: dict[int, int] = {}
        self._interned: dict[tuple[tuple[int, int], ...],
                             tuple[tuple[int, int], ...]] = {}
        self._vector: tuple[tuple[int, int], ...] = ()
        self._dirty = False
        self._span_start_ns: Optional[int] = None
        self._span_start_pulses = 0
        self._last_time_ns = 0
        self._last_icount = 0
        self._saw_any = False
        self.last_emitted_t1_ns: Optional[int] = None

    def _current_vector(self) -> tuple[tuple[int, int], ...]:
        # The state vector is rebuilt only when a transition actually
        # changed it, and equal vectors are interned to one tuple — the
        # regression groups intervals by vector, so identical objects make
        # that grouping (and this loop) allocation-light.
        if self._dirty:
            built = tuple(sorted(self._states.items()))
            self._vector = self._interned.setdefault(built, built)
            self._dirty = False
        return self._vector

    def _set_state(self, res_id: int, value: int) -> None:
        if self._states.get(res_id) != value:
            self._states[res_id] = value
            self._dirty = True

    def note_record(self, time_ns: int, icount: int) -> None:
        """Advance the "last record" watermark without an interval
        boundary — for entries of other types: the trailing interval
        ends at the last *record*, whatever it was (energy past it is
        unobservable)."""
        self._saw_any = True
        self._last_time_ns = time_ns
        self._last_icount = icount

    def feed(self, entry: LogEntry) -> None:
        # Every entry type updates the "last record" watermark (see
        # note_record).
        self._saw_any = True
        self._last_time_ns = entry.time_ns
        self._last_icount = entry.icount
        entry_type = entry.type
        if entry_type == TYPE_BOOT:
            # Boot entries establish the initial vector without opening
            # an interval boundary.
            self._set_state(entry.res_id, entry.value)
            if self._span_start_ns is None:
                self._span_start_ns = entry.time_ns
                self._span_start_pulses = entry.icount
                if self.bump is not None:
                    self.bump(1)
            return
        if entry_type != TYPE_POWERSTATE:
            return
        if self._span_start_ns is None:
            self._span_start_ns = entry.time_ns
            self._span_start_pulses = entry.icount
            self._set_state(entry.res_id, entry.value)
            if self.bump is not None:
                self.bump(1)
            return
        time_ns = entry.time_ns
        if time_ns > self._span_start_ns:
            interval = PowerInterval(
                t0_ns=self._span_start_ns,
                t1_ns=time_ns,
                pulses=entry.icount - self._span_start_pulses,
                states=self._current_vector(),
            )
            self._span_start_ns = time_ns
            self._span_start_pulses = entry.icount
            self.last_emitted_t1_ns = time_ns
            self.emit(interval)
        self._set_state(entry.res_id, entry.value)

    def finish(self) -> None:
        """Close the trailing span at the last record.  Time past the
        last record is unobservable, exactly as when a real node dumps
        its log.  Idempotent: the span is consumed, so a second finish
        emits nothing."""
        if self._span_start_ns is None or not self._saw_any:
            return
        if self._last_time_ns > self._span_start_ns:
            interval = PowerInterval(
                t0_ns=self._span_start_ns,
                t1_ns=self._last_time_ns,
                pulses=max(self._last_icount - self._span_start_pulses, 0),
                states=self._current_vector(),
            )
            self.last_emitted_t1_ns = self._last_time_ns
            self.emit(interval)
        self._span_start_ns = None

    def open_count(self) -> int:
        return 1 if self._span_start_ns is not None else 0


class _SingleTracker:
    """Rebuilds one single-activity device's painted history.

    Bind semantics follow the paper: "the resources used by a proxy
    activity are accounted for separately, and then assigned to the
    real activity as soon as the system can determine what this
    activity is."  Concretely, a bind of label ``N`` while the device
    carries label ``L`` resolves *every not-yet-resolved segment of
    L* (one reception episode spans many proxy fragments interleaved
    with sleep), and resolution chains transitively — a UART proxy
    bound to the RX proxy bound to a remote activity ends up charged
    to the remote activity.

    ``bind_horizon_ns`` optionally limits how far back a bind
    reaches; useful when the same proxy has unrelated earlier
    episodes that legitimately never resolved (e.g. LPL false
    positives followed by a real reception).

    ``track_binds=False`` drops the unresolved-segment bookkeeping
    entirely: closed segments are emitted and forgotten, so memory is
    bounded by the one open segment.  ``bound_to`` is then never set —
    only valid for consumers that read ``label``, not
    ``effective_label`` (i.e. ``fold_proxies=False`` accounting).
    """

    __slots__ = ("res_id", "emit", "bump", "track_binds",
                 "bind_horizon_ns", "_unresolved", "_open")

    def __init__(
        self,
        res_id: int,
        emit: Callable[[ActivitySegment], None],
        track_binds: bool = True,
        bind_horizon_ns: Optional[int] = None,
        bump: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.res_id = res_id
        self.emit = emit
        self.bump = bump
        self.track_binds = track_binds
        self.bind_horizon_ns = bind_horizon_ns
        # Segments awaiting resolution, keyed by the label they are
        # currently attributed to (their own label, or a proxy they were
        # already bound to).
        self._unresolved: dict[ActivityLabel, list[ActivitySegment]] = {}
        # The currently-open segment (t1_ns finalized at close), or None.
        self._open: Optional[ActivitySegment] = None

    @property
    def open_segment(self) -> Optional[ActivitySegment]:
        return self._open

    def _close(self, t1_ns: int) -> None:
        segment = self._open
        if segment is None:
            return
        self._open = None
        if self.bump is not None:
            self.bump(-1)
        if t1_ns <= segment.t0_ns:
            return  # zero-length: never existed
        segment.t1_ns = t1_ns
        if self.track_binds:
            self._unresolved.setdefault(segment.label, []).append(segment)
            if self.bump is not None:
                self.bump(1)
        self.emit(segment)

    def feed(self, entry: LogEntry) -> None:
        if entry.type not in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
            return
        new_label = entry.label
        previous = self._open
        self._close(entry.time_ns)
        if (entry.type == TYPE_ACT_BIND and previous is not None
                and self.track_binds):
            pending = self._unresolved.pop(previous.label, [])
            kept: list[ActivitySegment] = []
            for segment in pending:
                if (self.bind_horizon_ns is not None
                        and entry.time_ns - segment.t1_ns
                        > self.bind_horizon_ns):
                    continue  # stale episode: stays unbound
                segment.bound_to = new_label
                kept.append(segment)
            # Transitivity: these now follow the new label's fate.
            if kept:
                self._unresolved.setdefault(new_label, []).extend(kept)
            if self.bump is not None:
                self.bump(len(kept) - len(pending))
        self._open = ActivitySegment(
            res_id=self.res_id, t0_ns=entry.time_ns, t1_ns=entry.time_ns,
            label=new_label,
        )
        if self.bump is not None:
            self.bump(1)

    def finish(self, end_time_ns: int) -> None:
        self._close(end_time_ns)

    def open_count(self) -> int:
        count = 1 if self._open is not None else 0
        if self.track_binds:
            count += sum(len(v) for v in self._unresolved.values())
        return count


class _MultiTracker:
    """Rebuilds one multi-activity device's label-set history."""

    __slots__ = ("res_id", "emit", "bump", "_current", "_start_ns",
                 "_started")

    def __init__(self, res_id: int,
                 emit: Callable[[MultiActivitySegment], None],
                 bump: Optional[Callable[[int], None]] = None) -> None:
        self.res_id = res_id
        self.emit = emit
        self.bump = bump
        self._current: set[ActivityLabel] = set()
        self._start_ns = 0
        self._started = False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def open_start_ns(self) -> int:
        return self._start_ns

    def current_labels(self) -> frozenset[ActivityLabel]:
        """Snapshot of the open span's label set (it mutates in place)."""
        return frozenset(self._current)

    def feed(self, entry: LogEntry) -> None:
        if entry.type not in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
            return
        if self._started and entry.time_ns > self._start_ns:
            self.emit(
                MultiActivitySegment(
                    res_id=self.res_id,
                    t0_ns=self._start_ns,
                    t1_ns=entry.time_ns,
                    labels=frozenset(self._current),
                )
            )
        if entry.type == TYPE_ACT_ADD:
            self._current.add(entry.label)
        else:
            self._current.discard(entry.label)
        self._start_ns = entry.time_ns
        if not self._started:
            self._started = True
            if self.bump is not None:
                self.bump(1)

    def finish(self, end_time_ns: int) -> None:
        if self._started and end_time_ns > self._start_ns:
            self.emit(
                MultiActivitySegment(
                    res_id=self.res_id,
                    t0_ns=self._start_ns,
                    t1_ns=end_time_ns,
                    labels=frozenset(self._current),
                )
            )
        if self._started:
            self._started = False
            if self.bump is not None:
                self.bump(-1)

    def open_count(self) -> int:
        return 1 if self._started else 0


def _ignore(_obj) -> None:
    pass


class TimelineStream:
    """The streaming visitor: feed entries in log order, receive each
    interval and segment through a callback the moment it closes.

    Entries must arrive sorted by ``(time_us, seq)`` — the order the
    logger writes them (``iter_entries`` yields them that way; the
    timestamps a node records are monotone).

    Devices may be declared up front (``single_res_ids`` /
    ``multi_res_ids``) or inferred from entry types exactly as the batch
    builder infers them.  ``peak_open_items`` tracks the high-water mark
    of open state (open interval + open segments + unresolved bind
    candidates), maintained by O(1) deltas at each span open/close so
    the instrumentation costs nothing on the per-entry path: with
    ``track_binds=False`` it is O(devices), independent of log length —
    the bounded-memory contract the tests pin down.
    """

    def __init__(
        self,
        *,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
        track_binds: bool = True,
        bind_horizon_ns: Optional[int] = None,
        on_interval: Optional[Callable[[PowerInterval], None]] = None,
        on_segment: Optional[Callable[[ActivitySegment], None]] = None,
        on_multi_segment: Optional[
            Callable[[MultiActivitySegment], None]] = None,
    ) -> None:
        self.track_binds = track_binds
        self.bind_horizon_ns = bind_horizon_ns
        self.on_segment = on_segment or _ignore
        self.on_multi_segment = on_multi_segment or _ignore
        self._open_items = 0
        self.peak_open_items = 0
        self.intervals = _IntervalTracker(on_interval or _ignore,
                                          bump=self._bump)
        self._single_ids: set[int] = set(single_res_ids or [])
        self._multi_ids: set[int] = set(multi_res_ids or [])
        self._singles: dict[int, _SingleTracker] = {
            res_id: self._make_single(res_id) for res_id in self._single_ids
        }
        self._multis: dict[int, _MultiTracker] = {
            res_id: _MultiTracker(res_id, self.on_multi_segment,
                                  bump=self._bump)
            for res_id in self._multi_ids
        }
        self._last_entry_time_ns = 0
        self._saw_any = False

    def _bump(self, delta: int) -> None:
        self._open_items += delta
        if self._open_items > self.peak_open_items:
            self.peak_open_items = self._open_items

    def _make_single(self, res_id: int) -> _SingleTracker:
        return _SingleTracker(
            res_id, self.on_segment,
            track_binds=self.track_binds,
            bind_horizon_ns=self.bind_horizon_ns,
            bump=self._bump,
        )

    # -- feeding -----------------------------------------------------------

    def feed(self, entry: LogEntry) -> None:
        self._saw_any = True
        time_ns = entry.time_ns
        self._last_entry_time_ns = time_ns
        entry_type = entry.type
        if entry_type == TYPE_POWERSTATE or entry_type == TYPE_BOOT:
            # Only power entries can open or close an interval; the
            # activity types below just advance the watermark.
            self.intervals.feed(entry)
            return
        self.intervals.note_record(time_ns, entry.icount)
        if entry_type == TYPE_ACT_CHANGE or entry_type == TYPE_ACT_BIND:
            res_id = entry.res_id
            # Same inference as the batch builder: a change/bind marks a
            # single-activity device unless the id is already multi.
            if res_id not in self._multi_ids:
                tracker = self._singles.get(res_id)
                if tracker is None:
                    tracker = self._singles[res_id] = \
                        self._make_single(res_id)
                    self._single_ids.add(res_id)
                tracker.feed(entry)
        elif entry_type == TYPE_ACT_ADD or entry_type == TYPE_ACT_REMOVE:
            res_id = entry.res_id
            tracker = self._multis.get(res_id)
            if tracker is None:
                tracker = self._multis[res_id] = \
                    _MultiTracker(res_id, self.on_multi_segment,
                                  bump=self._bump)
                self._multi_ids.add(res_id)
            tracker.feed(entry)

    def feed_all(self, entries: Iterable[LogEntry],
                 end_time_ns: Optional[int] = None) -> None:
        """Feed a whole entry iterable, then :meth:`finish`."""
        for entry in entries:
            self.feed(entry)
        self.finish(end_time_ns)

    def finish(self, end_time_ns: Optional[int] = None) -> None:
        """Close every open span.  ``end_time_ns`` defaults to the last
        entry's time (the batch builder's default)."""
        if end_time_ns is None:
            end_time_ns = self._last_entry_time_ns if self._saw_any else 0
        self.intervals.finish()
        for tracker in self._singles.values():
            tracker.finish(end_time_ns)
        for tracker in self._multis.values():
            tracker.finish(end_time_ns)

    # -- introspection ------------------------------------------------------

    def open_items(self) -> int:
        """Open spans plus retained bind candidates — the stream's live
        state, the quantity that must stay flat as the log grows."""
        return (
            self.intervals.open_count()
            + sum(t.open_count() for t in self._singles.values())
            + sum(t.open_count() for t in self._multis.values())
        )

    def single_tracker(self, res_id: int) -> Optional[_SingleTracker]:
        return self._singles.get(res_id)

    def multi_tracker(self, res_id: int) -> Optional[_MultiTracker]:
        return self._multis.get(res_id)

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)


class TimelineBuilder:
    """The batch view of one node's log: a thin wrapper that runs the
    streaming trackers over a stored entry list and returns their
    emissions as lists.  Kept for callers that want random access
    (per-device lane rendering, windowed figures); the reconstruction
    semantics live in the trackers above."""

    def __init__(
        self,
        entries: list[LogEntry],
        end_time_ns: Optional[int] = None,
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
    ) -> None:
        # Decoded logs arrive already in (time_us, seq) order — the
        # logger writes monotone timestamps and the decoder numbers
        # entries sequentially — so check (copy-free) before paying for
        # a keyed sort.
        presorted = True
        for i in range(1, len(entries)):
            prev, cur = entries[i - 1], entries[i]
            if prev.time_us > cur.time_us or (
                    prev.time_us == cur.time_us and prev.seq > cur.seq):
                presorted = False
                break
        if presorted:
            self.entries = list(entries)
        else:
            self.entries = sorted(entries, key=lambda e: (e.time_us, e.seq))
        if end_time_ns is None and self.entries:
            end_time_ns = self.entries[-1].time_ns
        self.end_time_ns = end_time_ns or 0
        self._single_ids = set(single_res_ids or [])
        self._multi_ids = set(multi_res_ids or [])
        # One pass: infer undeclared devices from entry types.  The
        # per-device entry index (for activity_segments rebuilds) is
        # deferred until someone asks — the common accounting path never
        # touches it.
        for entry in self.entries:
            if entry.type in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
                if entry.res_id not in self._multi_ids:
                    self._single_ids.add(entry.res_id)
            elif entry.type in (TYPE_ACT_ADD, TYPE_ACT_REMOVE):
                self._multi_ids.add(entry.res_id)
        self._by_res_cache: Optional[dict[int, list[LogEntry]]] = None
        self._intervals_cache: Optional[list[PowerInterval]] = None

    @property
    def _by_res(self) -> dict[int, list[LogEntry]]:
        """Per-device entry index, built on first use (the log
        interleaves all devices, so this turns per-device rebuilds from
        O(devices x entries) into O(entries))."""
        if self._by_res_cache is None:
            by_res: dict[int, list[LogEntry]] = {}
            for entry in self.entries:
                by_res.setdefault(entry.res_id, []).append(entry)
            self._by_res_cache = by_res
        return self._by_res_cache

    # -- power intervals ----------------------------------------------------

    def power_intervals(self) -> list[PowerInterval]:
        """Spans of constant power state, with their pulse deltas.

        Computed once and cached (the intervals are immutable): the
        regression and the accounting both walk them.
        """
        if self._intervals_cache is None:
            intervals: list[PowerInterval] = []
            tracker = _IntervalTracker(intervals.append)
            feed = tracker.feed
            for entry in self.entries:
                # Only power entries move the interval state; the final
                # watermark (the last record of *any* type) is applied
                # once below instead of per entry.
                if entry.type == TYPE_POWERSTATE or entry.type == TYPE_BOOT:
                    feed(entry)
            if self.entries:
                last = self.entries[-1]
                tracker.note_record(last.time_ns, last.icount)
            tracker.finish()
            self._intervals_cache = intervals
        return self._intervals_cache

    # -- single-activity segments --------------------------------------------

    def activity_segments(
        self,
        res_id: int,
        bind_horizon_ns: Optional[int] = None,
    ) -> list[ActivitySegment]:
        """The painted-activity history of one single-activity device,
        with bind events resolved onto the segments they absorb (see
        :class:`_SingleTracker` for the bind semantics)."""
        if res_id in self._multi_ids:
            raise RegressionError(
                f"res_id {res_id} is a multi-activity device"
            )
        segments: list[ActivitySegment] = []
        tracker = _SingleTracker(
            res_id, segments.append, bind_horizon_ns=bind_horizon_ns)
        for entry in self._by_res.get(res_id, ()):
            tracker.feed(entry)
        tracker.finish(self.end_time_ns)
        return segments

    # -- multi-activity segments ----------------------------------------------

    def multi_activity_segments(self, res_id: int) -> list[MultiActivitySegment]:
        """The activity-set history of one multi-activity device."""
        segments: list[MultiActivitySegment] = []
        tracker = _MultiTracker(res_id, segments.append)
        for entry in self._by_res.get(res_id, ()):
            tracker.feed(entry)
        tracker.finish(self.end_time_ns)
        return segments

    def single_device_ids(self) -> list[int]:
        return sorted(self._single_ids)

    def multi_device_ids(self) -> list[int]:
        return sorted(self._multi_ids)
