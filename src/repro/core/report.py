"""ASCII rendering for tables, lane timelines, and line plots.

The paper's figures are lane charts (hardware components on the Y axis,
time on the X axis, colored by activity) and XY plots.  We render both as
text so every experiment's output is self-contained in the bench logs:

* :func:`format_table` — aligned fixed-width tables (Tables 1–5);
* :func:`render_lanes` — Figure 11/12/15/16-style activity lanes, one row
  per hardware component, with a legend mapping glyphs to activities;
* :func:`render_xy` — Figure 10/13/14-style series plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.units import to_ms

#: Glyphs assigned to activities in lane charts, in assignment order.
LANE_GLYPHS = "RGBVTQXPASDFHJKLMNZ#@%&*+=~"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_right: Optional[Sequence[bool]] = None,
) -> str:
    """Render an aligned table.  Cells are str()'d; floats pre-format
    upstream so each table controls its own precision."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if align_right is None:
        align_right = [False] + [True] * (len(headers) - 1)

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if align_right[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


@dataclass
class LaneSegment:
    """One painted span in a lane chart."""

    t0_ns: int
    t1_ns: int
    label: str


def render_lanes(
    lanes: dict[str, list[LaneSegment]],
    t0_ns: int,
    t1_ns: int,
    width: int = 100,
    title: str = "",
) -> str:
    """Render per-component activity lanes over a time window.

    Each activity gets a glyph; unpainted time renders as '.'.  When a
    cell spans several activities the earliest one wins (cells are narrow
    at the default width, so this only blurs sub-cell detail).
    """
    if t1_ns <= t0_ns:
        raise ValueError("empty window")
    glyph_of: dict[str, str] = {}

    def glyph(label: str) -> str:
        if label not in glyph_of:
            glyph_of[label] = LANE_GLYPHS[len(glyph_of) % len(LANE_GLYPHS)]
        return glyph_of[label]

    span = t1_ns - t0_ns
    name_width = max((len(name) for name in lanes), default=4)
    lines = []
    if title:
        lines.append(title)
    for name, segments in lanes.items():
        cells = ["."] * width
        for segment in segments:
            lo = max(segment.t0_ns, t0_ns)
            hi = min(segment.t1_ns, t1_ns)
            if hi <= lo:
                continue
            c0 = int((lo - t0_ns) * width / span)
            c1 = max(c0 + 1, int((hi - t0_ns) * width / span))
            mark = glyph(segment.label)
            for cell in range(c0, min(c1, width)):
                if cells[cell] == ".":
                    cells[cell] = mark
        lines.append(f"{name.rjust(name_width)} |{''.join(cells)}|")
    axis = (
        f"{' ' * name_width} "
        f"{to_ms(t0_ns):.1f} ms{' ' * max(width - 18, 1)}{to_ms(t1_ns):.1f} ms"
    )
    lines.append(axis)
    if glyph_of:
        legend = "  ".join(
            f"{mark}={label}" for label, mark in glyph_of.items()
        )
        lines.append(f"legend: {legend}  .=idle")
    return "\n".join(lines)


def render_xy(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 90,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line plot."""
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        return f"{title}\n(no data)"
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@"
    for index, (name, (xs, ys)) in enumerate(series.items()):
        mark = marks[index % len(marks)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}: {y_min:.3g} .. {y_max:.3g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {x_min:.3g} .. {x_max:.3g}")
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """A simple key/value block for scalar results."""
    key_width = max((len(key) for key, _ in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {key.ljust(key_width)} : {value}")
    return "\n".join(lines)
