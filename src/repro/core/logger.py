"""The Quanto event log (paper Section 4.4 and Table 4).

Every power-state change and activity change produces one 12-byte entry::

    typedef struct entry_t {
        uint8_t  type;    // entry type
        uint8_t  res_id;  // hardware resource
        uint32_t time;    // local time (us, wraps)
        uint32_t ic;      // iCount cumulative pulses (wraps)
        union { uint16_t act; uint16_t powerstate; };
    } entry_t;                      // 12 bytes

We pack entries with ``struct`` into a real 12-byte wire format, so the
RAM budget, field widths, and wrap-around behaviour are honoured, and the
offline decoder has to unwrap 32-bit timestamps the way a real tool would.

The packed format is also consumed **over the network**: the live ingest
server (:mod:`repro.serve`) accepts exactly these 12-byte frames from
streaming nodes, reassembled from arbitrary TCP chunk boundaries by
:class:`WireDecoder` — the format is the protocol, with no extra framing
layer.  Anything that changes :data:`ENTRY_STRUCT` therefore changes the
wire protocol, not just the on-node RAM layout.

Costs (Table 4): each synchronous record charges **102 cycles** to the CPU
(41 call overhead + 19 timer read + 24 iCount read + 18 bookkeeping).  The
buffer holds 800 entries by default.  Two modes:

* ``ram`` — log to the fixed buffer; when full, stop recording (the
  experiment harness sizes the buffer for the run, like the paper's
  stop-and-dump approach).
* ``drain`` — continuous logging: a low-priority task empties the buffer
  to a backchannel while the CPU would otherwise be idle, charging its own
  CPU time to Quanto's own activity (like Unix ``top`` accounting for
  itself; the paper measured 4–15 % CPU for this mode).

Hot-path note: the synchronous :meth:`QuantoLogger.record` path stores
raw ``(type, res_id, time, ic, value)`` tuples in a capacity-bounded
ring and defers the ``struct`` packing to dump time, where
:meth:`QuantoLogger.raw_bytes` packs the whole log in one bulk
``pack_into`` sweep over a preallocated buffer (memoized until the next
record).  Field masking still happens at record time, so the wire
format, the 32-bit wrap-around behaviour, the RAM budget (capacity is
counted in 12-byte entries, exactly as before), and the Table 4 cycle
charges are all bit-identical to eager packing — only *when* the bytes
are produced changes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from math import floor
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.core.labels import ActivityLabel
from repro.errors import HardwareError, LoggerError, LogOverflowError

ENTRY_STRUCT = struct.Struct("<BBIIH")
ENTRY_SIZE = ENTRY_STRUCT.size  # 12 bytes
assert ENTRY_SIZE == 12

#: The same wire format as :data:`ENTRY_STRUCT`, as a numpy structured
#: dtype: 12 bytes, little-endian, no padding.  ``np.frombuffer`` over a
#: packed log with this dtype decodes every entry in one shot — the
#: columnar analysis backend's entry point.
ENTRY_DTYPE = np.dtype([
    ("type", "u1"),
    ("res_id", "u1"),
    ("time", "<u4"),
    ("ic", "<u4"),
    ("value", "<u2"),
])
assert ENTRY_DTYPE.itemsize == ENTRY_SIZE

# Entry types.
TYPE_POWERSTATE = 1
TYPE_ACT_CHANGE = 2
TYPE_ACT_BIND = 3
TYPE_ACT_ADD = 4
TYPE_ACT_REMOVE = 5
TYPE_BOOT = 6  # initial-state snapshot marker

TYPE_NAMES = {
    TYPE_POWERSTATE: "powerstate",
    TYPE_ACT_CHANGE: "act_change",
    TYPE_ACT_BIND: "act_bind",
    TYPE_ACT_ADD: "act_add",
    TYPE_ACT_REMOVE: "act_remove",
    TYPE_BOOT: "boot",
}

# Cost model (Table 4), in CPU cycles at 1 MHz.
COST_CALL_OVERHEAD = 41
COST_READ_TIMER = 19
COST_READ_ICOUNT = 24
COST_OTHER = 18
COST_TOTAL = COST_CALL_OVERHEAD + COST_READ_TIMER + COST_READ_ICOUNT + COST_OTHER
assert COST_TOTAL == 102

DEFAULT_BUFFER_ENTRIES = 800

#: Drain mode: cycles to push one entry out the backchannel port.
DRAIN_CYCLES_PER_ENTRY = 48
#: Drain mode: entries shipped per drain-task invocation.
DRAIN_BATCH = 16

#: Stop-and-dump mode: cycles to ship one 12-byte entry over the serial
#: port (~104 bits at 57.6 kbit/s at 1 MHz ~= 1.8 ms).
DUMP_CYCLES_PER_ENTRY = 1800
#: Entries shipped per dump-task invocation (bounds job length).
DUMP_BATCH = 32


@dataclass(slots=True)
class LogEntry:
    """A decoded log entry with the unwrapped absolute timestamp.

    Not frozen — a frozen dataclass pays ``object.__setattr__`` per
    field, and a decode pass constructs one of these per 12 bytes of
    log.  Treat instances as immutable anyway; nothing may mutate a
    decoded entry.
    """

    type: int
    res_id: int
    time_us: int  # unwrapped, monotone
    icount: int  # unwrapped, monotone
    value: int
    seq: int  # position in the log (stable tie-break for equal times)
    # Derived once at decode time: the reconstruction reads time_ns
    # several times per entry (interval tracker, every device tracker),
    # so it is a stored field, not a per-access multiply.
    time_ns: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.time_ns = self.time_us * 1000

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"type{self.type}")

    @property
    def label(self) -> ActivityLabel:
        """Interpret ``value`` as an activity label."""
        return ActivityLabel.decode(self.value)


class QuantoLogger:
    """Synchronous event recording with the paper's cost model."""

    def __init__(
        self,
        mcu,
        icount,
        mode: str = "ram",
        buffer_entries: int = DEFAULT_BUFFER_ENTRIES,
        strict_overflow: bool = False,
        auto_dump: bool = False,
        scheduler=None,
        quanto_activity: Optional[ActivityLabel] = None,
        cpu_activity=None,
    ) -> None:
        if mode not in ("ram", "drain"):
            raise LoggerError(f"unknown logger mode {mode!r}")
        # Note: in drain mode the scheduler may be attached after
        # construction (the node wires the logger before the scheduler
        # exists); it must be present by the first record.
        self.mcu = mcu
        self.icount = icount
        self.mode = mode
        self.buffer_entries = int(buffer_entries)
        self.strict_overflow = strict_overflow
        #: Paper §4.4 first approach: when the RAM buffer fills, stop
        #: logging, dump it to the serial port (a real blackout window —
        #: events during the dump are lost), then resume.
        self.auto_dump = auto_dump
        self.scheduler = scheduler
        self.quanto_activity = quanto_activity
        self.cpu_activity = cpu_activity
        # The RAM ring and the shipped log hold *raw entry tuples*;
        # packing to the 12-byte wire format is deferred to raw_bytes().
        # The list objects are never reassigned (drain/dump mutate them
        # in place), so the bound methods cached below stay valid.
        self._buffer: list[tuple[int, int, int, int, int]] = []
        self._dumped: list[tuple[int, int, int, int, int]] = []
        self._packed_cache: Optional[bytes] = None
        self._packed_count = -1
        # Fused-batch decode (decode_batch) parks this log's decoded
        # columns here, keyed by entry count; columns() serves them
        # without re-decoding.
        self._columns_cache: Optional[tuple[int, "LogColumns"]] = None
        self._append = self._buffer.append
        self._read_icount = icount.read
        # Per-record constants, hoisted off the synchronous path: the
        # mode test and the MCU's cycle length never change after
        # construction.
        self._drain_mode = mode == "drain"
        self._cycle_ns = mcu.cycle_ns
        self.enabled = True
        self.stopped_on_overflow = False
        self.records_written = 0
        self.records_dropped = 0
        self.drain_task_runs = 0
        self._drain_scheduled = False
        self._dumping = False
        self.dumps_completed = 0
        self.dump_cycles_total = 0

    # -- warm-start reset --------------------------------------------------

    def reset(self) -> None:
        """Empty the log and rewind every counter to the post-construction
        state.  The ring and shipped lists are cleared *in place* so the
        bound-method caches (``_append``) stay valid; wiring (mcu, meter,
        scheduler, activity hooks) survives."""
        self._buffer.clear()
        self._dumped.clear()
        self._packed_cache = None
        self._packed_count = -1
        self._columns_cache = None
        self.enabled = True
        self.stopped_on_overflow = False
        self.records_written = 0
        self.records_dropped = 0
        self.drain_task_runs = 0
        self._drain_scheduled = False
        self._dumping = False
        self.dumps_completed = 0
        self.dump_cycles_total = 0

    # -- recording (synchronous path) ------------------------------------

    def record(self, entry_type: int, res_id: int, value: int) -> None:
        """Record one event.  Must be called from CPU job context (drivers
        and OS instrumentation always are); charges 102 cycles."""
        if not self.enabled or self.stopped_on_overflow:
            self.records_dropped += 1
            return
        # The synchronous cost: reading the timer and iCount and storing
        # the entry.  Charged to whatever activity the CPU currently has,
        # exactly like the real implementation.  The timestamp is the
        # cycle-advanced virtual time, so records within one CPU job carry
        # strictly increasing times.
        # Inlined mcu.consume(COST_TOTAL) + mcu.virtual_now(): this is
        # the 102-cycle synchronous path the paper budgets; two method
        # calls per record are real overhead at fleet scale.  The guard
        # and arithmetic match the Mcu methods exactly.
        mcu = self.mcu
        if not mcu._in_job:
            raise HardwareError("Mcu.consume() called outside a job")
        pending = mcu._pending_cycles + COST_TOTAL
        mcu._pending_cycles = pending
        virtual_ns = mcu._job_start_ns + pending * self._cycle_ns
        time_us = (virtual_ns // 1000) & 0xFFFFFFFF
        # Inlined ICountMeter.read(virtual_ns): one read per record
        # makes its call frame real overhead too.  Same statements in
        # the same order — the rail integration, the mid-job
        # extrapolation, the jitter draw, and the monotone clamp are
        # exactly read()'s (see icount.py for the commentary).
        meter = self.icount
        rail = meter.rail
        now = rail.sim._now
        dt_ns = now - rail._last_update_ns
        if dt_ns > 0:
            total = rail._total_amps
            if total:
                dt_s = dt_ns * 1e-9
                voltage = rail.voltage
                rail._energy_j += voltage * total * dt_s
                sink_energy = rail._sink_energy_j
                for name, handle in rail._hot.items():
                    sink_energy[name] += voltage * handle._amps * dt_s
            rail._last_update_ns = now
        energy = rail._energy_j
        ahead_ns = virtual_ns - now
        if ahead_ns > 0:
            energy += rail._total_amps * rail.voltage * ahead_ns * 1e-9
        count = energy / meter._effective_j
        gauss = meter._gauss
        if gauss is not None:
            count += gauss()
        pulses = floor(count)
        last = meter._last_count
        if pulses < last:
            # Jitter must never make the counter run backwards.
            pulses = last
        meter._last_count = pulses
        pulses &= 0xFFFFFFFF
        if len(self._buffer) >= self.buffer_entries:
            if self.strict_overflow:
                raise LogOverflowError(
                    f"log buffer full ({self.buffer_entries} entries)"
                )
            if self.auto_dump:
                self._start_dump()
                self.records_dropped += 1  # lost in the blackout
                return
            self.stopped_on_overflow = True
            self.records_dropped += 1
            return
        # Masked at record time (the fields a real store would latch);
        # packed lazily in bulk.
        self._append(
            (entry_type & 0xFF, res_id & 0xFF, time_us, pulses,
             value & 0xFFFF)
        )
        self.records_written += 1
        if self._drain_mode:
            self._schedule_drain()

    # -- convenience recorders (the observer-pattern glue) -----------------

    def on_powerstate(self, var, value: int) -> None:
        self.record(TYPE_POWERSTATE, var.res_id, value)

    def on_single_activity(self, device, label: ActivityLabel,
                           bound: bool) -> None:
        # The precomputed wire encoding directly: this glue runs once
        # per activity record, and encode() is a method hop over the
        # same stored value.
        entry_type = TYPE_ACT_BIND if bound else TYPE_ACT_CHANGE
        self.record(entry_type, device.res_id, label._encoded)

    def on_multi_activity(self, device, label: ActivityLabel,
                          added: bool) -> None:
        entry_type = TYPE_ACT_ADD if added else TYPE_ACT_REMOVE
        self.record(entry_type, device.res_id, label._encoded)

    def record_boot_snapshot(self, tracker, activity_devices) -> None:
        """Record the initial power-state vector and activity of every
        device so the decoder knows the starting conditions."""
        for var in tracker.all_vars():
            self.record(TYPE_BOOT, var.res_id, var.value)
        for device in activity_devices:
            if isinstance(device, object) and hasattr(device, "get"):
                self.record(TYPE_ACT_CHANGE, device.res_id,
                            device.get().encode())

    # -- stop-and-dump mode -------------------------------------------------

    def _start_dump(self) -> None:
        """Begin the §4.4 stop-and-dump cycle: logging pauses, a task
        ships the buffer over the serial port, logging resumes.  Events
        during the dump are lost — the cost of this mode's simplicity."""
        if self._dumping:
            return
        if self.scheduler is None:
            # Without a scheduler the dump cannot be performed; behave
            # like the plain stop-on-overflow mode.
            self.stopped_on_overflow = True
            return
        self._dumping = True
        self.enabled = False
        self.scheduler.post_function(self._dump_task, cycles=0,
                                     label="quanto-dump")

    def _dump_task(self) -> None:
        """Ship one batch to the serial port (runs under Quanto's own
        activity when one is configured)."""
        previous = None
        if self.quanto_activity is not None and self.cpu_activity is not None:
            previous = self.cpu_activity.get()
            self.cpu_activity.set(self.quanto_activity)
        batch = min(len(self._buffer), DUMP_BATCH)
        cycles = batch * DUMP_CYCLES_PER_ENTRY
        self.mcu.consume(cycles)
        self.dump_cycles_total += cycles
        self._dumped.extend(self._buffer[:batch])
        del self._buffer[:batch]
        if previous is not None:
            self.cpu_activity.set(previous)
        if self._buffer:
            self.scheduler.post_function(self._dump_task, cycles=0,
                                         label="quanto-dump")
            return
        self._dumping = False
        self.enabled = True
        self.dumps_completed += 1

    # -- drain mode -------------------------------------------------------

    def _schedule_drain(self) -> None:
        """Queue the drain task once at least a full batch has built up.
        The threshold matters: the drain's own activity switches are
        themselves logged (Quanto accounts for Quanto), so draining
        single entries would regenerate work as fast as it shipped it."""
        if self._drain_scheduled:
            return
        if len(self._buffer) < DRAIN_BATCH:
            return
        if self.scheduler is None:
            raise LoggerError("drain mode needs a scheduler attached")
        self._drain_scheduled = True
        self.scheduler.post_function(self._drain_task, cycles=0,
                                     label="quanto-drain")

    def _drain_task(self) -> None:
        """The low-priority drain: ships a batch, charging its cycles to
        the Quanto activity (so the profile accounts for the profiler)."""
        self._drain_scheduled = False
        if not self._buffer:
            return
        previous = None
        if self.quanto_activity is not None and self.cpu_activity is not None:
            previous = self.cpu_activity.get()
            self.cpu_activity.set(self.quanto_activity)
        batch = min(len(self._buffer), DRAIN_BATCH)
        self.mcu.consume(batch * DRAIN_CYCLES_PER_ENTRY)
        self._dumped.extend(self._buffer[:batch])
        del self._buffer[:batch]
        self.drain_task_runs += 1
        if previous is not None:
            self.cpu_activity.set(previous)
        self._schedule_drain()

    # -- offline access ----------------------------------------------------

    def raw_bytes(self) -> bytes:
        """Everything recorded: shipped entries plus the residual buffer,
        packed to the 12-byte wire format.

        Packing happens here, in one bulk ``pack_into`` sweep over a
        preallocated buffer, instead of per record on the synchronous
        path.  The shipped+resident entry sequence is append-only (a
        drain moves entries between the two stores without reordering),
        so the packed bytes are memoized by total entry count and reused
        by every analysis pass over the same log.
        """
        total = len(self._dumped) + len(self._buffer)
        if self._packed_count != total:
            packed = bytearray(total * ENTRY_SIZE)
            pack_into = ENTRY_STRUCT.pack_into
            offset = 0
            for store in (self._dumped, self._buffer):
                for entry in store:
                    pack_into(packed, offset, *entry)
                    offset += ENTRY_SIZE
            self._packed_cache = bytes(packed)
            self._packed_count = total
        return self._packed_cache

    def ram_bytes_used(self) -> int:
        return len(self._buffer) * ENTRY_SIZE

    def decode(self) -> list[LogEntry]:
        """Decode the log, unwrapping the 32-bit time and iCount fields."""
        return decode_log(self.raw_bytes())

    def columns(self) -> "LogColumns":
        """The whole log as unwrapped column arrays (the columnar
        backend's decode path).

        When the packed-bytes cache is warm this is a zero-copy
        ``np.frombuffer`` over it; otherwise the structured array is
        built straight off the raw-tuple ring — either way no per-entry
        :class:`LogEntry` is ever allocated.
        """
        total = len(self._dumped) + len(self._buffer)
        cached = self._columns_cache
        if cached is not None and cached[0] == total:
            return cached[1]
        if self._packed_count == total and self._packed_cache is not None:
            return decode_columns(self._packed_cache)
        records = np.empty(total, dtype=ENTRY_DTYPE)
        if total:
            # Fields were masked at record time, so the tuples fit the
            # wire widths exactly; numpy casts them in bulk.
            records[:] = self._dumped + self._buffer
        return _unwrap_records(records)


def iter_entries(raw: bytes):
    """Incrementally decode packed entries, unwrapping u32 time and iCount
    wrap-around.

    A generator: each :class:`LogEntry` is yielded as soon as its 12 bytes
    are parsed, so downstream consumers (the timeline stream, the energy
    accumulator) can process a log without the whole decoded list ever
    existing in memory.  The wrap-around unwrapping state is three
    integers — independent of log length.
    """
    if len(raw) % ENTRY_SIZE:
        raise LoggerError(
            f"log length {len(raw)} is not a multiple of {ENTRY_SIZE}"
        )
    time_base = 0
    last_time = 0
    ic_base = 0
    last_ic = 0
    seq = 0
    for entry_type, res_id, time_us, pulses, value in \
            ENTRY_STRUCT.iter_unpack(raw):
        if seq:
            if time_us < last_time:
                time_base += 1 << 32
            if pulses < last_ic:
                ic_base += 1 << 32
        last_time, last_ic = time_us, pulses
        yield LogEntry(
            type=entry_type,
            res_id=res_id,
            time_us=time_base + time_us,
            icount=ic_base + pulses,
            value=value,
            seq=seq,
        )
        seq += 1


def decode_log(raw: bytes) -> list[LogEntry]:
    """Decode a whole log at once (the batch wrapper over
    :func:`iter_entries`)."""
    return list(iter_entries(raw))


class WireDecoder:
    """Incremental decoder for the 12-byte wire format arriving in
    arbitrary chunk boundaries — the network-facing form of
    :func:`iter_entries`.

    A TCP stream (or any chunked transport) cuts the packed log wherever
    it likes: mid-entry, even mid-field.  :meth:`feed` buffers the
    partial tail of each chunk and carries the u32 time/iCount unwrap
    state across calls, so feeding a log in any split — one byte at a
    time or all at once — yields exactly the entry sequence
    :func:`iter_entries` yields for the whole buffer (same ``seq``
    numbers, same unwrapped timestamps).  State between feeds is the
    sub-entry remainder (< 12 bytes) plus five integers, independent of
    how much has streamed through.
    """

    __slots__ = ("_partial", "_time_base", "_last_time", "_ic_base",
                 "_last_ic", "_seq")

    def __init__(self) -> None:
        self._partial = b""
        self._time_base = 0
        self._last_time = 0
        self._ic_base = 0
        self._last_ic = 0
        self._seq = 0

    @property
    def entries_decoded(self) -> int:
        """How many entries have been yielded so far."""
        return self._seq

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the incomplete trailing entry (0..11)."""
        return len(self._partial)

    def feed(self, chunk: bytes) -> list[LogEntry]:
        """Decode every entry completed by ``chunk``; buffer the rest."""
        buf = self._partial + bytes(chunk) if self._partial else bytes(chunk)
        usable = len(buf) - len(buf) % ENTRY_SIZE
        self._partial = buf[usable:]
        if not usable:
            return []
        entries: list[LogEntry] = []
        append = entries.append
        time_base = self._time_base
        last_time = self._last_time
        ic_base = self._ic_base
        last_ic = self._last_ic
        seq = self._seq
        for entry_type, res_id, time_us, pulses, value in \
                ENTRY_STRUCT.iter_unpack(buf[:usable]):
            if seq:
                if time_us < last_time:
                    time_base += 1 << 32
                if pulses < last_ic:
                    ic_base += 1 << 32
            last_time, last_ic = time_us, pulses
            append(LogEntry(
                type=entry_type,
                res_id=res_id,
                time_us=time_base + time_us,
                icount=ic_base + pulses,
                value=value,
                seq=seq,
            ))
            seq += 1
        self._time_base = time_base
        self._last_time = last_time
        self._ic_base = ic_base
        self._last_ic = last_ic
        self._seq = seq
        return entries

    def finish(self) -> None:
        """Assert the stream ended on an entry boundary.  A leftover
        partial entry means the sender died mid-record (the torn tail a
        crash leaves); raise so the consumer can surface it."""
        if self._partial:
            raise LoggerError(
                f"stream ended with {len(self._partial)} bytes of a "
                f"partial entry (after {self._seq} complete entries)"
            )

    # -- durability ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The decoder's complete state as a JSON-able dict: the buffered
        sub-entry remainder plus the five unwrap integers.  Together with
        the byte offset the caller has fed, this is everything needed to
        resume decoding the same stream after a process restart —
        :meth:`from_snapshot` of this dict, fed the remaining bytes,
        yields exactly the entries an uninterrupted decoder would."""
        return {
            "partial": self._partial.hex(),
            "time_base": self._time_base,
            "last_time": self._last_time,
            "ic_base": self._ic_base,
            "last_ic": self._last_ic,
            "seq": self._seq,
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "WireDecoder":
        """Rebuild a decoder from a :meth:`snapshot` dict."""
        try:
            decoder = cls()
            decoder._partial = bytes.fromhex(state["partial"])
            decoder._time_base = int(state["time_base"])
            decoder._last_time = int(state["last_time"])
            decoder._ic_base = int(state["ic_base"])
            decoder._last_ic = int(state["last_ic"])
            decoder._seq = int(state["seq"])
        except (KeyError, TypeError, ValueError) as exc:
            raise LoggerError(f"bad WireDecoder snapshot: {exc}") from exc
        if len(decoder._partial) >= ENTRY_SIZE:
            raise LoggerError(
                f"bad WireDecoder snapshot: {len(decoder._partial)} "
                f"buffered bytes (>= one {ENTRY_SIZE}-byte entry)")
        return decoder


# -- columnar decode --------------------------------------------------------


@dataclass(slots=True)
class LogColumns:
    """A decoded log as parallel column arrays (one row per entry).

    ``time_ns`` and ``icount`` are unwrapped and monotone, exactly like
    the fields of :class:`LogEntry`; ``seq`` is implicit (row index).
    This is the input format of the columnar analysis backend — decode
    allocates five arrays total instead of one object per entry.
    """

    type: np.ndarray  # u1
    res_id: np.ndarray  # u1
    time_ns: np.ndarray  # i8, unwrapped, = time_us * 1000
    icount: np.ndarray  # i8, unwrapped
    value: np.ndarray  # i8 (u16 wire field, widened for plain-int math)

    def __len__(self) -> int:
        return len(self.type)

    @classmethod
    def from_entries(cls, entries: Iterable[LogEntry]) -> "LogColumns":
        """Columns from already-decoded entries (the compat path used
        when a caller holds a :class:`LogEntry` list, e.g. a
        TimelineBuilder, rather than packed bytes)."""
        entries = list(entries)
        return cls(
            type=np.array([e.type for e in entries], dtype=np.uint8),
            res_id=np.array([e.res_id for e in entries], dtype=np.uint8),
            time_ns=np.array([e.time_ns for e in entries], dtype=np.int64),
            icount=np.array([e.icount for e in entries], dtype=np.int64),
            value=np.array([e.value for e in entries], dtype=np.int64),
        )


def _unwrap_records(records: np.ndarray) -> LogColumns:
    """Unwrap u32 time/iCount wrap-around over a structured entry array
    — the vectorized form of :func:`iter_entries`'s three-integer state:
    a field wrapped wherever it decreases, so the cumulative wrap count
    times 2^32 is the base to add."""
    time_us = records["time"].astype(np.int64)
    icount = records["ic"].astype(np.int64)
    if len(records) > 1:
        time_wraps = np.zeros(len(records), dtype=np.int64)
        np.cumsum(np.diff(time_us) < 0, out=time_wraps[1:])
        time_us = time_us + (time_wraps << 32)
        ic_wraps = np.zeros(len(records), dtype=np.int64)
        np.cumsum(np.diff(icount) < 0, out=ic_wraps[1:])
        icount = icount + (ic_wraps << 32)
    return LogColumns(
        type=records["type"].copy(),
        res_id=records["res_id"].copy(),
        time_ns=time_us * 1000,
        icount=icount,
        value=records["value"].astype(np.int64),
    )


def decode_columns(raw: bytes) -> LogColumns:
    """Decode a packed log into :class:`LogColumns` in one shot."""
    if len(raw) % ENTRY_SIZE:
        raise LoggerError(
            f"log length {len(raw)} is not a multiple of {ENTRY_SIZE}"
        )
    return _unwrap_records(np.frombuffer(raw, dtype=ENTRY_DTYPE))


def decode_batch_records(
    records: np.ndarray, counts: Sequence[int],
) -> list[LogColumns]:
    """Decode K concatenated logs from one structured array in one fused
    pass: a single vectorized unwrap whose wrap state resets at every
    world boundary, then per-world column slices.

    ``records`` holds the K logs back to back; ``counts[i]`` is world
    i's entry count.  The unwrap computes the *global* cumulative wrap
    count once, then subtracts each world's value at its first row —
    which cancels every wrap flagged before (or at) that row, including
    the spurious flag a ragged world boundary itself raises — so each
    world's slice carries exactly the wrap bases its own serial decode
    would, bit for bit.
    """
    if sum(counts) != len(records):
        raise LoggerError(
            f"batch counts sum to {sum(counts)}, got {len(records)} records")
    total = len(records)
    time_us = records["time"].astype(np.int64)
    icount = records["ic"].astype(np.int64)
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if total > 1:
        # An empty trailing world's start offset equals ``total``; clip
        # it — no row maps to an empty world, so the value is unused.
        starts = np.minimum(offsets[:-1], total - 1)
        world_of_row = np.repeat(
            np.arange(len(counts), dtype=np.int64), counts)
        for field in (time_us, icount):
            wraps = np.zeros(total, dtype=np.int64)
            np.cumsum(np.diff(field) < 0, out=wraps[1:])
            wraps -= wraps[starts][world_of_row]
            field += wraps << 32
    type_col = records["type"].copy()
    res_col = records["res_id"].copy()
    time_ns = time_us * 1000
    value = records["value"].astype(np.int64)
    worlds = []
    for index in range(len(counts)):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        worlds.append(LogColumns(
            type=type_col[lo:hi],
            res_id=res_col[lo:hi],
            time_ns=time_ns[lo:hi],
            icount=icount[lo:hi],
            value=value[lo:hi],
        ))
    return worlds


def decode_batch(loggers: Sequence["QuantoLogger"]) -> list[LogColumns]:
    """Fused decode of K loggers' raw-tuple rings.

    Builds one structured array over the concatenated shipped+resident
    tuples (no per-logger ``raw_bytes`` materialization), runs the
    batched unwrap, and parks each logger's columns in its
    ``_columns_cache`` so the analysis layer's ``columns()`` call is a
    cache hit.  Returns the per-world columns in logger order.
    """
    stores = [(lg._dumped, lg._buffer) for lg in loggers]
    counts = [len(d) + len(b) for d, b in stores]
    records = np.empty(sum(counts), dtype=ENTRY_DTYPE)
    offset = 0
    for (dumped, buffer), count in zip(stores, counts):
        if count:
            # Fields were masked at record time, so the tuples fit the
            # wire widths exactly; numpy casts them in bulk.
            records[offset:offset + count] = dumped + buffer
        offset += count
    worlds = decode_batch_records(records, counts)
    for logger, count, columns in zip(loggers, counts, worlds):
        logger._columns_cache = (count, columns)
    return worlds
