"""Network-wide energy accounting: merging per-node energy maps.

The payoff of carrying activity labels across nodes (paper §3.3 and the
"tracking butterfly effects" direction in §5.3): because node B's work on
node A's packet is charged to ``A:Activity``, summing per-node energy
maps by activity yields the *network-wide* cost of each activity — e.g.
the total energy a flood initiated at one node consumed everywhere.

The merge is incremental: :class:`NetworkMerger` folds one node's map at
a time into the running report, so a fleet-scale analysis can price
nodes as their logs are decoded (and a node's map can be dropped once
folded).  :func:`merge_energy_maps` is the batch wrapper.

Per-node logs use per-node clocks; this merge only aggregates totals, so
clock skew between nodes does not matter (time-aligned cross-node
timelines would need a sync protocol, which the paper also does not
assume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.accounting import CONST_KEY, EnergyMap


def origin_of(activity_name: str) -> Optional[int]:
    """The originating node id of a rendered ``origin:Name`` activity,
    or None for pseudo-activities (Const., Idle, proxies…)."""
    prefix, sep, _ = activity_name.partition(":")
    if not sep:
        return None
    try:
        return int(prefix)
    except ValueError:
        return None


@dataclass
class NetworkEnergyReport:
    """Aggregated network-wide view."""

    #: (node_id, component, activity) -> joules
    per_node: dict[tuple[int, str, str], float] = field(default_factory=dict)
    #: activity -> joules across all nodes
    by_activity: dict[str, float] = field(default_factory=dict)
    #: activity -> {node_id: joules}; shows how an activity's cost spreads
    spread: dict[str, dict[int, float]] = field(default_factory=dict)
    total_j: float = 0.0

    def remote_fraction(self, activity: str, origin_node: int) -> float:
        """Fraction of an activity's energy spent on *other* nodes — the
        quantified butterfly effect.  0.0 when the activity is unknown
        or carries no energy (nothing was spent, so nothing was spent
        remotely)."""
        nodes = self.spread.get(activity, {})
        total = sum(nodes.values())
        if total == 0.0:
            return 0.0
        remote = sum(j for node, j in nodes.items() if node != origin_node)
        return remote / total

    def remote_fractions(self) -> dict[str, float]:
        """``remote_fraction`` for every activity whose origin is
        encoded in its name, keyed by activity name."""
        fractions: dict[str, float] = {}
        for activity in self.by_activity:
            origin = origin_of(activity)
            if origin is not None:
                fractions[activity] = self.remote_fraction(activity, origin)
        return fractions

    def node_ids(self) -> list[int]:
        return sorted({node_id for node_id, _, _ in self.per_node})


class NetworkMerger:
    """Folds per-node :class:`EnergyMap`s into one running report.

    ``include_const`` folds each node's constant baseline in; by default
    it is excluded so the report shows *attributable* energy (the paper's
    activity tables treat Const. as its own row for the same reason).
    """

    def __init__(self, include_const: bool = False) -> None:
        self.include_const = include_const
        self._report = NetworkEnergyReport()

    def add(self, node_id: int, energy_map: EnergyMap) -> None:
        """Fold one node's map; the map can be dropped afterwards."""
        report = self._report
        for (component, activity), joules in energy_map.energy_j.items():
            if not self.include_const and activity == CONST_KEY:
                continue
            report.per_node[(node_id, component, activity)] = (
                report.per_node.get((node_id, component, activity), 0.0)
                + joules
            )
            report.by_activity[activity] = (
                report.by_activity.get(activity, 0.0) + joules
            )
            report.spread.setdefault(activity, {})
            report.spread[activity][node_id] = (
                report.spread[activity].get(node_id, 0.0) + joules
            )
            report.total_j += joules

    def report(self) -> NetworkEnergyReport:
        return self._report


def merge_energy_maps(
    maps: dict[int, EnergyMap],
    include_const: bool = False,
) -> NetworkEnergyReport:
    """Aggregate per-node maps into the network-wide report (the batch
    wrapper over :class:`NetworkMerger`)."""
    merger = NetworkMerger(include_const=include_const)
    for node_id, energy_map in maps.items():
        merger.add(node_id, energy_map)
    return merger.report()


def activities_by_origin(report: NetworkEnergyReport,
                         origin: int) -> list[str]:
    """Activity names originating at a node (rendered ``origin:Name``)."""
    prefix = f"{origin}:"
    return sorted(
        name for name in report.by_activity if name.startswith(prefix)
    )
