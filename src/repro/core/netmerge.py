"""Network-wide energy accounting: merging per-node energy maps.

The payoff of carrying activity labels across nodes (paper §3.3 and the
"tracking butterfly effects" direction in §5.3): because node B's work on
node A's packet is charged to ``A:Activity``, summing per-node energy
maps by activity yields the *network-wide* cost of each activity — e.g.
the total energy a flood initiated at one node consumed everywhere.

Per-node logs use per-node clocks; this merge only aggregates totals, so
clock skew between nodes does not matter (time-aligned cross-node
timelines would need a sync protocol, which the paper also does not
assume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.accounting import CONST_KEY, EnergyMap


@dataclass
class NetworkEnergyReport:
    """Aggregated network-wide view."""

    #: (node_id, component, activity) -> joules
    per_node: dict[tuple[int, str, str], float] = field(default_factory=dict)
    #: activity -> joules across all nodes
    by_activity: dict[str, float] = field(default_factory=dict)
    #: activity -> {node_id: joules}; shows how an activity's cost spreads
    spread: dict[str, dict[int, float]] = field(default_factory=dict)
    total_j: float = 0.0

    def remote_fraction(self, activity: str, origin_node: int) -> float:
        """Fraction of an activity's energy spent on *other* nodes — the
        quantified butterfly effect."""
        nodes = self.spread.get(activity, {})
        total = sum(nodes.values())
        if total == 0.0:
            return 0.0
        remote = sum(j for node, j in nodes.items() if node != origin_node)
        return remote / total


def merge_energy_maps(
    maps: dict[int, EnergyMap],
    include_const: bool = False,
) -> NetworkEnergyReport:
    """Aggregate per-node maps into the network-wide report.

    ``include_const`` folds each node's constant baseline in; by default
    it is excluded so the report shows *attributable* energy (the paper's
    activity tables treat Const. as its own row for the same reason).
    """
    report = NetworkEnergyReport()
    for node_id, energy_map in maps.items():
        for (component, activity), joules in energy_map.energy_j.items():
            if not include_const and activity == CONST_KEY:
                continue
            report.per_node[(node_id, component, activity)] = (
                report.per_node.get((node_id, component, activity), 0.0)
                + joules
            )
            report.by_activity[activity] = (
                report.by_activity.get(activity, 0.0) + joules
            )
            report.spread.setdefault(activity, {})
            report.spread[activity][node_id] = (
                report.spread[activity].get(node_id, 0.0) + joules
            )
            report.total_j += joules
    return report


def activities_by_origin(report: NetworkEnergyReport,
                         origin: int) -> list[str]:
    """Activity names originating at a node (rendered ``origin:Name``)."""
    prefix = f"{origin}:"
    return sorted(
        name for name in report.by_activity if name.startswith(prefix)
    )
