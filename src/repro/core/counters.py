"""Online counter-based accounting (paper Section 5.1, "Logging vs
counting", and the Section 5.3 "real time tracking" direction).

Instead of logging every event for offline analysis, a node can keep a
fixed set of per-activity accumulators: time and metered energy charged to
the CPU's current activity as it changes.  Memory is constant (a small
slot table), and the logging overhead disappears — the trade-off the paper
discusses.

This accountant subscribes to the same observer interfaces as the logger
(SingleActivityTrack on the CPU plus the iCount meter), so it demonstrates
that Quanto's event generation cleanly decouples from event consumption.
Slot exhaustion goes to an ``overflow`` bucket rather than dropping data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.labels import ActivityLabel
from repro.errors import ActivityError


@dataclass
class ActivityCounters:
    """One slot: accumulated CPU time and node energy for an activity."""

    label: ActivityLabel
    time_ns: int = 0
    energy_j: float = 0.0
    switches: int = 0


class CounterAccountant:
    """Fixed-memory, always-current accounting of the CPU's activities.

    Attribution model: between consecutive CPU activity changes, all
    elapsed time and all metered node energy are charged to the activity
    the CPU carried.  This is coarser than the offline regression (it
    cannot split concurrent sinks), but it is *live* and constant-space —
    an energy ``top``.
    """

    #: Default number of slots (12 bytes of state each on the real node).
    DEFAULT_SLOTS = 16

    def __init__(self, sim, icount, slots: int = DEFAULT_SLOTS,
                 energy_per_pulse_j: Optional[float] = None,
                 mcu=None):
        if slots < 2:
            raise ActivityError("need at least two counter slots")
        self.sim = sim
        self.icount = icount
        self.mcu = mcu  # when set, spans use the cycle-advanced clock
        self.max_slots = slots
        self.energy_per_pulse_j = (
            energy_per_pulse_j
            if energy_per_pulse_j is not None
            else icount.nominal_energy_per_pulse_j
        )
        self._slots: dict[ActivityLabel, ActivityCounters] = {}
        self._overflow = ActivityCounters(ActivityLabel(0, 0xFF))
        self._current: Optional[ActivityLabel] = None
        self._mark_time_ns = sim.now
        self._mark_pulses = icount.read()

    def reset(self) -> None:
        """Warm-start reset: empty slot table, marks re-taken at the
        (reset) simulator's t=0 and the meter's rewound count."""
        self._slots.clear()
        self._overflow = ActivityCounters(ActivityLabel(0, 0xFF))
        self._current = None
        self._mark_time_ns = self.sim.now
        self._mark_pulses = self.icount.read()

    def _now(self) -> int:
        """The accounting clock: virtual (cycle-advanced) time when a CPU
        is attached, so activity switches inside one job still accrue the
        cycles spent between them."""
        if self.mcu is not None:
            return self.mcu.virtual_now()
        return self.sim.now

    # -- the observer interface (same shape as the logger's) ----------------

    def on_single_activity(self, device, label: ActivityLabel,
                           bound: bool) -> None:
        """Track the CPU's SingleActivityDevice."""
        self._charge_current()
        if bound and self._current is not None:
            # Fold what the proxy just accumulated into the bind target.
            self._merge(self._current, label)
        self._current = label
        slot = self._slot_for(label)
        if slot is not None:
            slot.switches += 1

    # -- internals ---------------------------------------------------------

    def _slot_for(self, label: ActivityLabel) -> Optional[ActivityCounters]:
        slot = self._slots.get(label)
        if slot is not None:
            return slot
        if len(self._slots) >= self.max_slots:
            return None  # falls into the overflow bucket
        slot = ActivityCounters(label)
        self._slots[label] = slot
        return slot

    def _charge_current(self) -> None:
        now = self._now()
        pulses = self.icount.read(at_ns=now)
        dt_ns = now - self._mark_time_ns
        d_energy = (pulses - self._mark_pulses) * self.energy_per_pulse_j
        self._mark_time_ns = now
        self._mark_pulses = pulses
        if self._current is None or dt_ns <= 0 and d_energy <= 0:
            return
        slot = self._slot_for(self._current)
        target = slot if slot is not None else self._overflow
        target.time_ns += max(dt_ns, 0)
        target.energy_j += max(d_energy, 0.0)

    def _merge(self, source: ActivityLabel, target: ActivityLabel) -> None:
        src = self._slots.get(source)
        if src is None:
            return
        dst = self._slot_for(target)
        if dst is None:
            dst = self._overflow
        dst.time_ns += src.time_ns
        dst.energy_j += src.energy_j
        src.time_ns = 0
        src.energy_j = 0.0

    # -- reading the counters ------------------------------------------------

    def snapshot(self) -> dict[ActivityLabel, ActivityCounters]:
        """Charge the open span and return the current counters."""
        self._charge_current()
        return dict(self._slots)

    @property
    def overflow(self) -> ActivityCounters:
        return self._overflow

    def memory_bytes(self) -> int:
        """RAM the counter table would occupy on the node: 12 bytes per
        slot (2-byte label, 4-byte time, 4-byte energy, 2-byte count)."""
        return 12 * self.max_slots

    def total_energy_j(self) -> float:
        self._charge_current()
        total = sum(slot.energy_j for slot in self._slots.values())
        return total + self._overflow.energy_j
