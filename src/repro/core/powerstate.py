"""The PowerState / PowerStateTrack interfaces (paper Figures 1 and 3).

Device drivers expose hardware power states by calling ``set`` (or
``set_bits`` for multi-field registers) on their :class:`PowerStateVar`.
The variable is idempotent — signalling the same state twice produces no
notification — and the :class:`PowerStateTracker` fans actual changes out
to registered listeners (the Quanto logger, tests, online accountants).

Each variable also carries *instrumentation metadata*: names for its state
values and which value is the baseline (off/sleep).  The offline analysis
uses that metadata to build regression columns; it is knowledge about the
instrumented platform, not ground truth about actual draws.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PowerModelError

#: Tracker callback: fn(var, new_value)
PowerTrackFn = Callable[["PowerStateVar", int], None]


class PowerStateVar:
    """One energy sink's power state, as the driver exposes it."""

    def __init__(
        self,
        name: str,
        res_id: int,
        state_names: Optional[dict[int, str]] = None,
        baseline_value: int = 0,
        initial_value: int = 0,
    ):
        self.name = name
        self.res_id = res_id
        self.state_names = dict(state_names or {0: "OFF", 1: "ON"})
        self.baseline_value = baseline_value
        self._value = initial_value
        self._trackers: list[PowerTrackFn] = []
        self.change_count = 0

    def add_tracker(self, fn: PowerTrackFn) -> None:
        """Subscribe to PowerStateTrack change events."""
        self._trackers.append(fn)

    @property
    def value(self) -> int:
        return self._value

    def state_name(self, value: Optional[int] = None) -> str:
        v = self._value if value is None else value
        return self.state_names.get(v, f"state{v}")

    def set(self, value: int) -> None:
        """Set the power state.  Idempotent: no change, no notification."""
        # Idempotent first: the stored value already passed the range
        # check when it was set, so equality implies validity.
        if value == self._value:
            return
        if not 0 <= value <= 0xFFFF:
            raise PowerModelError(
                f"{self.name}: power state {value} does not fit in 16 bits"
            )
        self._value = value
        self.change_count += 1
        for tracker in self._trackers:
            tracker(self, value)

    def reset(self, initial_value: int = 0) -> None:
        """Warm-start reset: back to the initial value without notifying
        trackers (the boot snapshot re-records the starting vector, just
        as it did on the cold run)."""
        self._value = initial_value
        self.change_count = 0

    def set_bits(self, mask: int, offset: int, value: int) -> None:
        """Update a bit-field within the state word (paper Figure 1's
        ``setBits``), for devices whose state is a composite register."""
        if mask < 0 or offset < 0:
            raise PowerModelError("mask and offset must be non-negative")
        cleared = self._value & ~(mask << offset)
        self.set(cleared | ((value & mask) << offset))


class PowerStateTracker:
    """The node-wide registry of power-state variables.

    The glue component of paper Section 2.4: drivers own the variables;
    the tracker knows all of them, forwards changes to node-level
    listeners, and hands the offline analysis its column layout.
    """

    def __init__(self) -> None:
        self._vars: dict[int, PowerStateVar] = {}
        self._listeners: list[PowerTrackFn] = []

    def create(
        self,
        name: str,
        res_id: int,
        state_names: Optional[dict[int, str]] = None,
        baseline_value: int = 0,
        initial_value: int = 0,
    ) -> PowerStateVar:
        """Create and register a variable for one energy sink."""
        if res_id in self._vars:
            raise PowerModelError(f"res_id {res_id} already registered "
                                  f"({self._vars[res_id].name})")
        var = PowerStateVar(name, res_id, state_names, baseline_value,
                            initial_value)
        var.add_tracker(self._forward)
        self._vars[res_id] = var
        return var

    def _forward(self, var: PowerStateVar, value: int) -> None:
        for listener in self._listeners:
            listener(var, value)

    def add_listener(self, fn: PowerTrackFn) -> None:
        """Subscribe to changes of *every* registered variable."""
        self._listeners.append(fn)

    def var(self, res_id: int) -> PowerStateVar:
        try:
            return self._vars[res_id]
        except KeyError:
            raise PowerModelError(f"no power-state var with res_id {res_id}") \
                from None

    def all_vars(self) -> list[PowerStateVar]:
        """All variables, ordered by res_id (the analysis layout)."""
        return [self._vars[rid] for rid in sorted(self._vars)]

    def snapshot(self) -> dict[int, int]:
        """Current state of every sink (res_id -> value), e.g. for boot
        records so the offline pass knows the initial vector."""
        return {rid: var.value for rid, var in sorted(self._vars.items())}
