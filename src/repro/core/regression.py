"""The energy-breakdown regression (paper Section 2.5).

Input: power intervals — spans of constant power state with their measured
aggregate energy.  The solver:

1. groups intervals by identical power-state vector *j*, accumulating the
   energy ``E_j`` and time ``t_j`` spent in that vector;
2. forms the average aggregate power ``y_j = E_j / t_j`` and the weight
   ``w_j = sqrt(E_j * t_j)`` (confidence grows with both, and they are
   linearly dependent at constant power — hence the square root);
3. builds the binary design matrix ``X`` with one column per (sink, state)
   pair plus a constant column, and solves the weighted least squares
   ``Pi = (X^T W X)^{-1} X^T W Y``;
4. reports residuals ``eps = Y - X Pi`` and the relative error
   ``||Y - X Pi|| / ||Y||`` that the paper quotes (0.83 % for Table 2).

Identifiability is checked explicitly: unobserved columns are dropped
(reported), and a rank-deficient design (states that always co-occur —
the paper's "linear independence" limitation, Section 5.2) either raises
or is reported, depending on ``strict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.timeline import PowerInterval
from repro.errors import RegressionError

#: Supported weighting schemes (the ablation bench sweeps these).
WEIGHTINGS = ("sqrt_et", "none", "t", "e")


@dataclass(frozen=True)
class SinkColumn:
    """One design-matrix column: a (sink, state-value) pair."""

    res_id: int
    value: int
    name: str


def layout_from_tracker(tracker) -> list[SinkColumn]:
    """Build the column layout from a node's PowerStateTracker: one column
    per non-baseline state of every registered variable.  Binary on/off
    sinks get the bare sink name; multi-state sinks get ``sink.STATE``."""
    columns: list[SinkColumn] = []
    for var in tracker.all_vars():
        non_baseline = [
            value for value in sorted(var.state_names)
            if value != var.baseline_value
        ]
        for value in non_baseline:
            if len(non_baseline) == 1:
                name = var.name
            else:
                name = f"{var.name}.{var.state_names[value]}"
            columns.append(SinkColumn(var.res_id, value, name))
    return columns


@dataclass
class RegressionResult:
    """The solved breakdown."""

    columns: list[SinkColumn]
    power_w: dict[str, float]  # column name -> estimated power draw (W)
    const_power_w: float
    voltage: float
    y: np.ndarray  # observed mean power per grouped state (W)
    y_hat: np.ndarray  # reconstructed
    weights: np.ndarray
    group_states: list[tuple[tuple[int, int], ...]]
    group_time_ns: list[int]
    group_energy_j: list[float]
    dropped_columns: list[SinkColumn] = field(default_factory=list)
    aliased_groups: list[list[str]] = field(default_factory=list)
    weighting: str = "sqrt_et"

    @property
    def residuals(self) -> np.ndarray:
        return self.y - self.y_hat

    @property
    def relative_error(self) -> float:
        """``||Y - X Pi|| / ||Y||`` — the paper's Table 2 metric."""
        norm_y = float(np.linalg.norm(self.y))
        if norm_y == 0.0:
            return 0.0
        return float(np.linalg.norm(self.residuals)) / norm_y

    def current_ma(self, name: str) -> float:
        """Estimated current draw of a column in mA (at the supply V)."""
        return self.power_w[name] / self.voltage * 1e3

    @property
    def const_current_ma(self) -> float:
        return self.const_power_w / self.voltage * 1e3

    def power_of_states(self, states: Sequence[tuple[int, int]]) -> float:
        """Reconstruct the aggregate power (W) of a full state vector."""
        state_map = dict(states)
        total = self.const_power_w
        for column in self.columns:
            if state_map.get(column.res_id) == column.value:
                total += self.power_w[column.name]
        return total


def group_intervals(
    intervals: Iterable[PowerInterval],
    energy_per_pulse_j: float,
) -> tuple[list[tuple[tuple[int, int], ...]], list[int], list[float]]:
    """Group intervals by power-state vector; returns (vectors, t_ns, E_j)."""
    time_by_state: dict[tuple[tuple[int, int], ...], int] = {}
    energy_by_state: dict[tuple[tuple[int, int], ...], float] = {}
    for interval in intervals:
        key = interval.states
        time_by_state[key] = time_by_state.get(key, 0) + interval.dt_ns
        energy_by_state[key] = (
            energy_by_state.get(key, 0.0)
            + interval.energy_j(energy_per_pulse_j)
        )
    vectors = list(time_by_state)
    return (
        vectors,
        [time_by_state[v] for v in vectors],
        [energy_by_state[v] for v in vectors],
    )


def _make_weights(times_s: np.ndarray, energies: np.ndarray,
                  weighting: str) -> np.ndarray:
    if weighting == "sqrt_et":
        return np.sqrt(np.maximum(energies * times_s, 0.0))
    if weighting == "none":
        return np.ones_like(times_s)
    if weighting == "t":
        return times_s.copy()
    if weighting == "e":
        return energies.copy()
    raise RegressionError(f"unknown weighting {weighting!r}")


def solve_breakdown(
    intervals: Iterable[PowerInterval],
    layout: Sequence[SinkColumn],
    energy_per_pulse_j: float,
    voltage: float,
    weighting: str = "sqrt_et",
    min_interval_ns: int = 0,
    strict: bool = False,
) -> RegressionResult:
    """Solve the weighted least-squares energy breakdown.

    ``min_interval_ns`` filters out ultra-short intervals whose pulse
    quantization dominates (the weighting already de-emphasizes them, but
    filtering keeps the grouped system smaller).
    """
    usable = [iv for iv in intervals if iv.dt_ns >= min_interval_ns]
    if not usable:
        raise RegressionError("no usable power intervals")
    vectors, times_ns, energies = group_intervals(usable, energy_per_pulse_j)
    return solve_grouped(
        vectors, times_ns, energies, layout, voltage,
        weighting=weighting, strict=strict,
    )


def solve_grouped(
    vectors: Sequence[tuple[tuple[int, int], ...]],
    times_ns: Sequence[int],
    energies: Sequence[float],
    layout: Sequence[SinkColumn],
    voltage: float,
    *,
    weighting: str = "sqrt_et",
    strict: bool = False,
) -> RegressionResult:
    """Solve the breakdown from already-grouped ``(E_j, t_j)`` inputs.

    This is the solver core behind :func:`solve_breakdown`; the columnar
    backend feeds it grouped sums computed straight off the interval
    columns (:meth:`repro.core.timeline.ColumnarTimeline.grouped_inputs`)
    without ever materializing :class:`PowerInterval` objects.  Given
    equal groups, the result is identical to the interval path's.
    """
    if not vectors:
        raise RegressionError("no grouped power states")

    times_s = np.array(times_ns, dtype=float) * 1e-9
    energy_arr = np.array(energies, dtype=float)
    y = energy_arr / times_s  # mean power per grouped state, watts

    # Design matrix: one column per layout entry that is actually observed
    # active in at least one group, plus the constant column.  The group
    # vectors are dict-ified once, not once per layout column.
    vector_maps = [dict(vector) for vector in vectors]
    observed_columns: list[SinkColumn] = []
    dropped: list[SinkColumn] = []
    column_data: list[np.ndarray] = []
    for column in layout:
        indicator = np.array(
            [
                1.0 if vector.get(column.res_id) == column.value else 0.0
                for vector in vector_maps
            ]
        )
        if indicator.any():
            observed_columns.append(column)
            column_data.append(indicator)
        else:
            dropped.append(column)

    n_rows = len(vectors)
    x = np.column_stack(column_data + [np.ones(n_rows)]) if column_data else \
        np.ones((n_rows, 1))
    weights = _make_weights(times_s, energy_arr, weighting)
    if not np.any(weights > 0):
        weights = np.ones_like(weights)
    sqrt_w = np.sqrt(weights)

    xw = x * sqrt_w[:, None]
    yw = y * sqrt_w

    # lstsq's effective rank doubles as the deficiency probe: with
    # ``rcond=None`` its cutoff is eps * max(M, N) * S.max() — the same
    # formula ``matrix_rank``'s default tolerance uses — so one SVD
    # serves both the solve and the aliasing diagnosis.
    solution, _residuals, rank, _sv = np.linalg.lstsq(xw, yw, rcond=None)
    aliased: list[list[str]] = []
    if rank < x.shape[1]:
        aliased = _find_aliased(x, observed_columns)
        if strict:
            raise RegressionError(
                f"design matrix is rank deficient ({rank} < {x.shape[1]}); "
                f"aliased groups: {aliased}"
            )
    y_hat = x @ solution

    power_w = {
        column.name: float(solution[i])
        for i, column in enumerate(observed_columns)
    }
    const_power = float(solution[-1])

    return RegressionResult(
        columns=observed_columns,
        power_w=power_w,
        const_power_w=const_power,
        voltage=voltage,
        y=y,
        y_hat=y_hat,
        weights=weights,
        group_states=list(vectors),
        group_time_ns=list(times_ns),
        group_energy_j=list(energies),
        dropped_columns=dropped,
        aliased_groups=aliased,
        weighting=weighting,
    )


def _find_aliased(x: np.ndarray, columns: Sequence[SinkColumn]) -> list[list[str]]:
    """Group columns with identical indicator patterns (always co-active),
    the concrete form of the paper's linear-independence limitation."""
    names = [column.name for column in columns] + ["Const."]
    signature_to_names: dict[bytes, list[str]] = {}
    for i, name in enumerate(names):
        signature = x[:, i].tobytes()
        signature_to_names.setdefault(signature, []).append(name)
    return [group for group in signature_to_names.values() if len(group) > 1]


def solve_from_currents(
    state_currents_ma: Sequence[tuple[Sequence[int], float]],
    column_names: Sequence[str],
    weights: Optional[Sequence[float]] = None,
) -> tuple[dict[str, float], float, float]:
    """Table 2 helper: regress scope-measured *currents* (mA) on binary
    state indicators plus a constant.

    ``state_currents_ma`` is a list of (indicator-vector, measured mA)
    rows, e.g. the eight LED states of Blink.  Returns (per-column mA,
    constant mA, relative error) exactly as the paper's Table 2 lays out.
    """
    if not state_currents_ma:
        raise RegressionError("no calibration rows")
    x = np.array([list(ind) + [1.0] for ind, _ in state_currents_ma],
                 dtype=float)
    y = np.array([current for _, current in state_currents_ma], dtype=float)
    if weights is None:
        w = np.ones(len(y))
    else:
        w = np.array(weights, dtype=float)
    sqrt_w = np.sqrt(w)
    solution, *_ = np.linalg.lstsq(x * sqrt_w[:, None], y * sqrt_w, rcond=None)
    y_hat = x @ solution
    norm_y = float(np.linalg.norm(y))
    rel_error = float(np.linalg.norm(y - y_hat)) / norm_y if norm_y else 0.0
    estimates = {
        name: float(solution[i]) for i, name in enumerate(column_names)
    }
    return estimates, float(solution[-1]), rel_error
