"""Activity devices: the "painting" abstraction (paper Section 3).

Each hardware component that can do work on behalf of an activity is
represented by one activity device:

* :class:`SingleActivityDevice` — components that serve one activity at a
  time (the CPU, the radio transmit path, an LED).  Mirrors the paper's
  interface: ``get`` / ``set`` / ``bind``, where ``bind`` additionally
  declares that the *previous* activity's resource usage should be charged
  to the new one — the mechanism that resolves interrupt proxy activities.
* :class:`MultiActivityDevice` — components that can serve several
  activities simultaneously (hardware timers, the radio receive path while
  listening): ``add`` / ``remove`` over a set of labels.

Observers subscribe via the Track interfaces (paper Figure 9): callbacks
on changed/bound (single) and added/removed (multi).  The Quanto logger is
one such observer; the online counter accountant is another.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ActivityError
from repro.core.labels import ActivityLabel, idle_label

#: Single-device observer: fn(device, new_label, bound: bool)
SingleTrackFn = Callable[["SingleActivityDevice", ActivityLabel, bool], None]

#: Multi-device observer: fn(device, label, added: bool)
MultiTrackFn = Callable[["MultiActivityDevice", ActivityLabel, bool], None]


class SingleActivityDevice:
    """A component that is painted with exactly one activity at a time."""

    def __init__(self, name: str, res_id: int,
                 initial: Optional[ActivityLabel] = None):
        self.name = name
        self.res_id = res_id
        self._current = initial if initial is not None else idle_label()
        self._trackers: list[SingleTrackFn] = []
        self.change_count = 0
        self.bind_count = 0

    def add_tracker(self, fn: SingleTrackFn) -> None:
        """Subscribe to SingleActivityTrack events."""
        self._trackers.append(fn)

    def get(self) -> ActivityLabel:
        """The device's current activity."""
        return self._current

    def set(self, new: ActivityLabel) -> None:
        """Paint the device with ``new``.  Idempotent sets do not notify."""
        current = self._current
        # Identity first: labels are widely interned (decode cache, app
        # references), making the common idempotent set pointer-cheap.
        # The fallback compares the 16-bit wire encodings — injective in
        # (origin, aid), so it is exactly label equality without the
        # dataclass tuple comparison.
        if new is current or new._encoded == current._encoded:
            return
        self._current = new
        self.change_count += 1
        for tracker in self._trackers:
            tracker(self, new, False)

    def bind(self, new: ActivityLabel) -> None:
        """Paint the device with ``new`` *and* declare that the previous
        activity's usage (typically a proxy) belongs to ``new``."""
        self._current = new
        self.bind_count += 1
        for tracker in self._trackers:
            tracker(self, new, True)

    def reset(self, initial: ActivityLabel) -> None:
        """Warm-start reset: repaint to the initial label and zero the
        tallies without notifying trackers (the boot snapshot re-records
        the starting activities)."""
        self._current = initial
        self.change_count = 0
        self.bind_count = 0


class MultiActivityDevice:
    """A component that can serve several activities concurrently."""

    def __init__(self, name: str, res_id: int):
        self.name = name
        self.res_id = res_id
        self._current: set[ActivityLabel] = set()
        self._trackers: list[MultiTrackFn] = []
        self.change_count = 0

    def add_tracker(self, fn: MultiTrackFn) -> None:
        """Subscribe to MultiActivityTrack events."""
        self._trackers.append(fn)

    def activities(self) -> frozenset[ActivityLabel]:
        """The current activity set."""
        return frozenset(self._current)

    def add(self, label: ActivityLabel) -> bool:
        """Add an activity; returns False if it was already present
        (mirrors the paper's error_t return)."""
        if label in self._current:
            return False
        self._current.add(label)
        self.change_count += 1
        for tracker in self._trackers:
            tracker(self, label, True)
        return True

    def remove(self, label: ActivityLabel) -> bool:
        """Remove an activity; returns False if it was not present."""
        if label not in self._current:
            return False
        self._current.discard(label)
        self.change_count += 1
        for tracker in self._trackers:
            tracker(self, label, False)
        return True

    def clear(self) -> None:
        """Remove every activity (device going idle)."""
        for label in list(self._current):
            self.remove(label)

    def reset(self) -> None:
        """Warm-start reset: empty set, zero tally, no notifications."""
        self._current.clear()
        self.change_count = 0


class ProxyActivitySet:
    """The static proxy activities of a node's interrupt vectors.

    TinyOS on the MSP430 has no reentrant interrupts, so the paper assigns
    each interrupt routine a fixed proxy activity.  This helper hands out
    those labels for a given node."""

    def __init__(self, node_id: int, proxy_ids: dict[str, int]):
        if not 0 <= node_id <= 0xFF:
            raise ActivityError(f"node id {node_id} does not fit in 8 bits")
        self.node_id = node_id
        self._labels = {
            name: ActivityLabel(origin=node_id, aid=aid)
            for name, aid in proxy_ids.items()
        }

    def label(self, name: str) -> ActivityLabel:
        try:
            return self._labels[name]
        except KeyError:
            raise ActivityError(f"no proxy activity named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._labels)
