"""The energy map: where the joules have gone (paper Table 3).

``build_energy_map`` merges the three offline products:

* power intervals (who was in which power state, when, and the metered
  aggregate energy),
* the regression (what each (sink, state) draws),
* activity segments (on whose behalf each device was working),

into per-(component, activity) time and energy totals.  Policies:

* ``fold_proxies`` — charge a proxy segment's usage to the activity it was
  later bound to (the paper folds these when accounting, but keeps them
  separate in figures for clarity; both views are supported).
* multi-activity devices split an interval's energy **equally** among the
  activities present (the paper's stated default policy; a proportional
  hook exists for experimentation).

The map also carries the metered total so callers can verify that the
reconstruction matches the measurement (the paper reports 0.004 % for
Blink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.regression import RegressionResult, SinkColumn
from repro.core.timeline import (
    ActivitySegment,
    MultiActivitySegment,
    PowerInterval,
    TimelineBuilder,
)
from repro.errors import RegressionError

#: Pseudo-activity for the constant (baseline) draw, as in Table 3.
CONST_KEY = "Const."
#: Pseudo-activity for devices with no activity instrumentation.
UNTRACKED_KEY = "(untracked)"


@dataclass
class EnergyMap:
    """Time and energy by (component name, activity name)."""

    time_ns: dict[tuple[str, str], int] = field(default_factory=dict)
    energy_j: dict[tuple[str, str], float] = field(default_factory=dict)
    metered_energy_j: float = 0.0
    reconstructed_energy_j: float = 0.0
    span_ns: int = 0

    def add_time(self, component: str, activity: str, dt_ns: int) -> None:
        key = (component, activity)
        self.time_ns[key] = self.time_ns.get(key, 0) + dt_ns

    def add_energy(self, component: str, activity: str, joules: float) -> None:
        key = (component, activity)
        self.energy_j[key] = self.energy_j.get(key, 0.0) + joules
        self.reconstructed_energy_j += joules

    # -- views -------------------------------------------------------------

    def components(self) -> list[str]:
        names = {component for component, _ in self.energy_j}
        names.update(component for component, _ in self.time_ns)
        return sorted(names)

    def activities(self) -> list[str]:
        names = {activity for _, activity in self.energy_j}
        names.update(activity for _, activity in self.time_ns)
        return sorted(names)

    def energy_by_component(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for (component, _), joules in self.energy_j.items():
            totals[component] = totals.get(component, 0.0) + joules
        return totals

    def energy_by_activity(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for (_, activity), joules in self.energy_j.items():
            totals[activity] = totals.get(activity, 0.0) + joules
        return totals

    def time_by_activity(self, component: str) -> dict[str, int]:
        return {
            activity: dt
            for (comp, activity), dt in self.time_ns.items()
            if comp == component
        }

    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def accounting_error(self) -> float:
        """Relative gap between metered and reconstructed total energy."""
        if self.metered_energy_j == 0.0:
            return 0.0
        return abs(self.reconstructed_energy_j - self.metered_energy_j) \
            / self.metered_energy_j


def _segment_cover(
    segments: Sequence[ActivitySegment],
    start: int,
    t0: int,
    t1: int,
    fold_proxies: bool,
    registry: ActivityRegistry,
    idle_name: str,
) -> tuple[dict[str, int], int]:
    """How [t0,t1) divides among activity names for one single device.

    ``segments`` are time-ordered and non-overlapping, and successive
    calls pass non-decreasing windows, so the scan starts at ``start``
    (the cursor returned by the previous call) and stops at the first
    segment past the window — amortised O(segments) over a whole run
    instead of O(intervals x segments).  Returns ``(shares, cursor)``.
    """
    shares: dict[str, int] = {}
    covered = 0
    n = len(segments)
    i = start
    while i < n and segments[i].t1_ns <= t0:
        i += 1
    cursor = i
    while i < n:
        segment = segments[i]
        s0 = segment.t0_ns
        if s0 >= t1:
            break
        s1 = segment.t1_ns
        lo = s0 if s0 > t0 else t0
        hi = s1 if s1 < t1 else t1
        overlap = hi - lo
        if overlap > 0:
            label = segment.effective_label if fold_proxies else segment.label
            name = registry.name_of(label)
            shares[name] = shares.get(name, 0) + overlap
            covered += overlap
        i += 1
    remainder = (t1 - t0) - covered
    if remainder > 0:
        shares[idle_name] = shares.get(idle_name, 0) + remainder
    return shares, cursor


def _multi_cover(
    segments: Sequence[MultiActivitySegment],
    start: int,
    t0: int,
    t1: int,
    registry: ActivityRegistry,
    idle_name: str,
) -> tuple[dict[str, float], int]:
    """Equal-split shares (fractions of [t0,t1)) for a multi device.

    Same cursor contract as :func:`_segment_cover`.
    """
    shares: dict[str, float] = {}
    window = t1 - t0
    covered = 0
    n = len(segments)
    i = start
    while i < n and segments[i].t1_ns <= t0:
        i += 1
    cursor = i
    while i < n:
        segment = segments[i]
        s0 = segment.t0_ns
        if s0 >= t1:
            break
        s1 = segment.t1_ns
        lo = s0 if s0 > t0 else t0
        hi = s1 if s1 < t1 else t1
        overlap = hi - lo
        if overlap > 0:
            covered += overlap
            if not segment.labels:
                shares[idle_name] = (
                    shares.get(idle_name, 0.0) + overlap / window
                )
            else:
                split = overlap / window / len(segment.labels)
                for label in segment.labels:
                    name = registry.name_of(label)
                    shares[name] = shares.get(name, 0.0) + split
        i += 1
    remainder = window - covered
    if remainder > 0:
        shares[idle_name] = shares.get(idle_name, 0.0) + remainder / window
    return shares, cursor


def build_energy_map(
    timeline: TimelineBuilder,
    regression: RegressionResult,
    registry: ActivityRegistry,
    component_names: dict[int, str],
    energy_per_pulse_j: float,
    fold_proxies: bool = False,
    idle_name: str = "Idle",
) -> EnergyMap:
    """Merge power intervals, regression, and activity segments.

    ``component_names`` maps res_id to the display name of each device.
    Devices present in the power layout but absent from the activity log
    are charged to ``(untracked)``.
    """
    intervals = timeline.power_intervals()
    if not intervals:
        raise RegressionError("no power intervals to account")

    single_segments = {
        res_id: timeline.activity_segments(res_id)
        for res_id in timeline.single_device_ids()
    }
    multi_segments = {
        res_id: timeline.multi_activity_segments(res_id)
        for res_id in timeline.multi_device_ids()
    }

    energy_map = EnergyMap()
    energy_map.span_ns = intervals[-1].t1_ns - intervals[0].t0_ns
    energy_map.metered_energy_j = (
        sum(interval.pulses for interval in intervals) * energy_per_pulse_j
    )

    # Column lookup: which (res_id, value) pairs carry estimated power.
    column_power: dict[tuple[int, int], tuple[str, float]] = {}
    for column in regression.columns:
        column_power[(column.res_id, column.value)] = (
            column.name,
            regression.power_w[column.name],
        )

    # Per-device scan cursors: intervals advance monotonically in time,
    # so each device's segment list is walked once across all intervals.
    single_cursor: dict[int, int] = {res_id: 0 for res_id in single_segments}
    multi_cursor: dict[int, int] = {res_id: 0 for res_id in multi_segments}

    for interval in intervals:
        dt_ns = interval.dt_ns
        if dt_ns <= 0:
            continue
        dt_s = dt_ns * 1e-9
        # Constant draw: the baseline floor, charged to Const.
        energy_map.add_energy(CONST_KEY, CONST_KEY,
                              regression.const_power_w * dt_s)
        for res_id, value in interval.states:
            entry = column_power.get((res_id, value))
            if entry is None:
                continue  # baseline state of this sink: no marginal draw
            column_name, power_w = entry
            component = component_names.get(res_id, column_name)
            joules = power_w * dt_s
            if res_id in single_segments:
                shares, single_cursor[res_id] = _segment_cover(
                    single_segments[res_id], single_cursor[res_id],
                    interval.t0_ns, interval.t1_ns,
                    fold_proxies, registry, idle_name,
                )
                total_share = sum(shares.values()) or 1
                for activity, share_ns in shares.items():
                    fraction = share_ns / total_share
                    energy_map.add_energy(component, activity,
                                          joules * fraction)
            elif res_id in multi_segments:
                shares_f, multi_cursor[res_id] = _multi_cover(
                    multi_segments[res_id], multi_cursor[res_id],
                    interval.t0_ns, interval.t1_ns,
                    registry, idle_name,
                )
                for activity, fraction in shares_f.items():
                    energy_map.add_energy(component, activity,
                                          joules * fraction)
            else:
                energy_map.add_energy(component, UNTRACKED_KEY, joules)

    # Time breakdown per device (Table 3a): how long each component worked
    # on behalf of each activity, independent of power states.
    for res_id, segments in single_segments.items():
        component = component_names.get(res_id, f"res{res_id}")
        for segment in segments:
            label = segment.effective_label if fold_proxies else segment.label
            energy_map.add_time(component, registry.name_of(label),
                                segment.dt_ns)
    for res_id, msegments in multi_segments.items():
        component = component_names.get(res_id, f"res{res_id}")
        for msegment in msegments:
            if not msegment.labels:
                energy_map.add_time(component, idle_name, msegment.dt_ns)
                continue
            for label in msegment.labels:
                energy_map.add_time(component, registry.name_of(label),
                                    msegment.dt_ns // len(msegment.labels))

    return energy_map
