"""The energy map: where the joules have gone (paper Table 3).

Accounting merges the three offline products:

* power intervals (who was in which power state, when, and the metered
  aggregate energy),
* the regression (what each (sink, state) draws),
* activity segments (on whose behalf each device was working),

into per-(component, activity) time and energy totals.  Policies:

* ``fold_proxies`` — charge a proxy segment's usage to the activity it was
  later bound to (the paper folds these when accounting, but keeps them
  separate in figures for clarity; both views are supported).
* multi-activity devices split an interval's energy **equally** among the
  activities present (the paper's stated default policy; a proportional
  hook exists for experimentation).

The accounting core is :class:`EnergyAccumulator`, a streaming consumer:
it owns a :class:`~repro.core.timeline.TimelineStream`, folds every power
interval into the :class:`EnergyMap` the moment the interval closes, and
consumes activity segments as the intervals sweep past them — so the
whole log → timeline → accounting pipeline runs in one pass with state
bounded by the number of *open* spans, not the log length.

One policy is inherently retrospective: with ``fold_proxies=True`` a
proxy segment's attribution can change arbitrarily late (a bind reaches
back over every unresolved segment of its label), so the fold path
records compact per-interval cover ops and resolves activity names only
at :meth:`EnergyAccumulator.finish` — replayed in interval order, which
keeps the result byte-identical to the batch computation.  The
``fold_proxies=False`` path needs no deferral and runs fully bounded.

:func:`build_energy_map` is the batch wrapper: it re-feeds a
:class:`~repro.core.timeline.TimelineBuilder`'s entries through an
accumulator, so both paths share one accounting implementation.

The map also carries the metered total so callers can verify that the
reconstruction matches the measurement (the paper reports 0.004 % for
Blink).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.logger import LogColumns, decode_columns
from repro.core.regression import RegressionResult, SinkColumn
from repro.core.timeline import (
    ActivitySegment,
    ColumnarTimeline,
    MultiActivitySegment,
    PowerInterval,
    TimelineBuilder,
    TimelineStream,
)
from repro.errors import AnalysisBackendError, RegressionError, WindowingError

#: Pseudo-activity for the constant (baseline) draw, as in Table 3.
CONST_KEY = "Const."
#: Pseudo-activity for devices with no activity instrumentation.
UNTRACKED_KEY = "(untracked)"

#: The (component, activity) pair the constant draw is charged to.
_CONST_PAIR = (CONST_KEY, CONST_KEY)

#: The selectable log→energy analysis implementations.  Both produce
#: bit-identical :class:`EnergyMap`s (float bits and dict order) on any
#: log — the backend-parametrized golden-digest suite enforces it.
ANALYSIS_BACKENDS = ("streaming", "columnar")

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_ANALYSIS_BACKEND"

#: The default when neither an argument nor the environment selects one.
#: Columnar: ~1.5x the reconstruction throughput of the streaming
#: reference on the 554-entry benchmark log (growing with log size as
#: the vectorized decode/cover amortizes) at bit-identical output (the
#: contract above) — real money at sweep scale, where every grid point
#: pays one full reconstruction.  The streaming implementation remains
#: the reference; select it with ``REPRO_ANALYSIS_BACKEND=streaming``
#: (CI runs the whole tier-1 suite on both).
DEFAULT_ANALYSIS_BACKEND = "columnar"


def resolve_analysis_backend(backend: Optional[str] = None) -> str:
    """Pick the analysis backend: explicit argument, else
    ``$REPRO_ANALYSIS_BACKEND``, else the columnar default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_ANALYSIS_BACKEND
    if backend not in ANALYSIS_BACKENDS:
        known = ", ".join(ANALYSIS_BACKENDS)
        raise AnalysisBackendError(
            f"unknown analysis backend {backend!r}; known backends: {known}"
        )
    return backend


def _overlapping(spans, t0: int, t1: int):
    """Yield ``(span, overlap_ns)`` for time-ordered spans intersecting
    the window [t0, t1) — the one clamp loop every cover path shares.
    Stops at the first span starting past the window."""
    for span in spans:
        s0 = span.t0_ns
        if s0 >= t1:
            break
        s1 = span.t1_ns
        lo = s0 if s0 > t0 else t0
        hi = s1 if s1 < t1 else t1
        if hi > lo:
            yield span, hi - lo


def _multi_shares(pairs, window: int, idle_name: str, name_of) -> dict[str, float]:
    """Equal-split name fractions of a ``window``-ns span from
    ``(labels, overlap)`` pairs (labels: a frozenset, possibly empty);
    the uncovered remainder is idle.  Multi labels never rebind, so
    names resolve immediately.  Shared by the streaming and columnar
    backends — one implementation, identical float arithmetic."""
    shares: dict[str, float] = {}
    covered = 0
    for labels, overlap in pairs:
        covered += overlap
        if not labels:
            shares[idle_name] = (
                shares.get(idle_name, 0.0) + overlap / window
            )
        else:
            split = overlap / window / len(labels)
            for label in labels:
                name = name_of(label)
                shares[name] = shares.get(name, 0.0) + split
    remainder = window - covered
    if remainder > 0:
        shares[idle_name] = (
            shares.get(idle_name, 0.0) + remainder / window
        )
    return shares


def _charge_named(
    energy_map: "EnergyMap",
    component: str,
    joules: float,
    named: dict[str, int],
    total_share: int,
    idle_ns: int,
    idle_name: str,
) -> None:
    """Charge one interval×device cover, grouped by activity name, into
    the map — the single place single-device joules are attributed (the
    streaming path calls it per cover, the columnar fold per row), so
    both backends produce identical arithmetic in identical order."""
    if idle_ns > 0:
        named[idle_name] = named.get(idle_name, 0) + idle_ns
        total_share += idle_ns
    if not total_share:
        total_share = 1
    # Inlined EnergyMap.add_energy: one dict probe per activity on
    # the hottest attribution loop, same accumulation order.
    energy_j = energy_map.energy_j
    for activity, share_ns in named.items():
        key = (component, activity)
        joule_share = joules * (share_ns / total_share)
        energy_j[key] = energy_j.get(key, 0.0) + joule_share
        energy_map.reconstructed_energy_j += joule_share


def _scan_cover(
    segments: Sequence,
    start: int,
    t0: int,
    t1: int,
) -> tuple[list[tuple], int, int]:
    """How [t0,t1) divides among a finished, time-ordered span list
    (single- or multi-activity segments alike).

    Successive calls pass non-decreasing windows, so the scan starts at
    ``start`` (the cursor returned by the previous call) and stops at
    the first segment past the window — amortised O(segments) over a
    run.  Returns ``(shares, covered_ns, cursor)``.
    """
    n = len(segments)
    i = start
    while i < n and segments[i].t1_ns <= t0:
        i += 1
    cursor = i
    shares = list(_overlapping(
        (segments[j] for j in range(cursor, n)), t0, t1))
    covered = sum(overlap for _, overlap in shares)
    return shares, covered, cursor


@dataclass
class EnergyMap:
    """Time and energy by (component name, activity name)."""

    time_ns: dict[tuple[str, str], int] = field(default_factory=dict)
    energy_j: dict[tuple[str, str], float] = field(default_factory=dict)
    metered_energy_j: float = 0.0
    reconstructed_energy_j: float = 0.0
    span_ns: int = 0

    def add_time(self, component: str, activity: str, dt_ns: int) -> None:
        key = (component, activity)
        self.time_ns[key] = self.time_ns.get(key, 0) + dt_ns

    def add_energy(self, component: str, activity: str, joules: float) -> None:
        key = (component, activity)
        self.energy_j[key] = self.energy_j.get(key, 0.0) + joules
        self.reconstructed_energy_j += joules

    # -- views -------------------------------------------------------------

    def components(self) -> list[str]:
        names = {component for component, _ in self.energy_j}
        names.update(component for component, _ in self.time_ns)
        return sorted(names)

    def activities(self) -> list[str]:
        names = {activity for _, activity in self.energy_j}
        names.update(activity for _, activity in self.time_ns)
        return sorted(names)

    def energy_by_component(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for (component, _), joules in self.energy_j.items():
            totals[component] = totals.get(component, 0.0) + joules
        return totals

    def energy_by_activity(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for (_, activity), joules in self.energy_j.items():
            totals[activity] = totals.get(activity, 0.0) + joules
        return totals

    def time_by_activity(self, component: str) -> dict[str, int]:
        return {
            activity: dt
            for (comp, activity), dt in self.time_ns.items()
            if comp == component
        }

    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def accounting_error(self) -> float:
        """Relative gap between metered and reconstructed total energy."""
        if self.metered_energy_j == 0.0:
            return 0.0
        return abs(self.reconstructed_energy_j - self.metered_energy_j) \
            / self.metered_energy_j


class EnergyAccumulator:
    """Streaming accounting: fold a log's entries straight into an
    :class:`EnergyMap`.

    Feed decoded entries in log order (:meth:`feed`), then call
    :meth:`finish` with the analysis end time.  Internally a
    :class:`TimelineStream` closes intervals and segments; each closed
    interval is covered against the segments that overlap it — buffered
    closed segments plus each device's still-open span — and the
    interval's joules are charged immediately (``fold_proxies=False``)
    or recorded as a compact cover op for name resolution at finish
    (``fold_proxies=True``; see the module docstring for why folding is
    inherently retrospective).

    Declare the instrumented devices up front (``single_res_ids`` /
    ``multi_res_ids``) when streaming a raw log: inference from entry
    types works, but a device whose first activity record appears
    mid-log would be charged ``(untracked)`` for earlier intervals,
    where the batch path (which infers over the whole log) charges Idle.
    Node logs declare their devices (`QuantoNode.timeline` does), so the
    two paths agree byte-for-byte on every experiment.

    ``end_time_ns`` (the analysis window end) is taken at construction
    because it matters *during* the feed: a cover computed when an
    interval closes is complete only while the interval ends inside the
    window.  Records can legitimately overshoot the window end — the
    logger stamps cycle-advanced virtual time, so a run's last CPU job
    writes records slightly past ``sim.now`` — and segments in that
    overshoot close early (at the window end) or never open at all.
    Intervals past the window end therefore defer their covers and
    re-cover from the retained segment tail at :meth:`finish`, exactly
    as the batch path sees them.  With ``end_time_ns=None`` the window
    is the last record, which no interval can outrun.
    """

    def __init__(
        self,
        regression: RegressionResult,
        registry: ActivityRegistry,
        component_names: dict[int, str],
        energy_per_pulse_j: float,
        fold_proxies: bool = False,
        idle_name: str = "Idle",
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
        end_time_ns: Optional[int] = None,
    ) -> None:
        self.registry = registry
        self.component_names = component_names
        self.energy_per_pulse_j = energy_per_pulse_j
        self.fold_proxies = fold_proxies
        self.idle_name = idle_name
        self.end_time_ns = end_time_ns
        self.regression = regression
        # Column lookup: which (res_id, value) pairs carry estimated power.
        # (A missing regression only errors if an interval actually needs
        # it — an empty log fails first with "no power intervals".)
        self._column_power: dict[tuple[int, int], tuple[str, float]] = {}
        for column in (regression.columns if regression is not None else ()):
            self._column_power[(column.res_id, column.value)] = (
                column.name,
                regression.power_w[column.name],
            )
        # Per-vector cover plan: state vectors are interned by the
        # timeline tracker, so the (res_id, component, power) triples an
        # interval needs are resolved once per distinct vector instead of
        # probing every (res_id, value) pair of every interval.  Only the
        # column lookup is cached — tracker kinds stay dynamic (a device
        # can appear mid-stream on the inference path).
        self._vector_plan: dict[tuple[tuple[int, int], ...],
                                tuple[tuple[int, str, float], ...]] = {}
        self._const_power_w = (
            regression.const_power_w if regression is not None else 0.0
        )
        # Bind tracking is only needed when proxy usage is folded onto
        # the bound activity; without it the stream stays strictly
        # bounded (no unresolved-segment retention).
        self.stream = TimelineStream(
            single_res_ids=single_res_ids,
            multi_res_ids=multi_res_ids,
            track_binds=fold_proxies,
            on_interval=self._on_interval,
            on_segment=self._on_segment,
            on_multi_segment=self._on_multi_segment,
        )
        self.map = EnergyMap()
        # Closed-but-unconsumed segments per device; intervals sweep
        # forward in time, so each deque is drained from the front as
        # the intervals pass (the streaming form of the batch cursors).
        self._pending_single: dict[int, deque[ActivitySegment]] = {}
        self._pending_multi: dict[int, deque[MultiActivitySegment]] = {}
        # Deferred cover ops (fold mode only), replayed at finish in
        # interval order.
        self._ops: list[tuple] = []
        # Time breakdown accumulators: per-device name->ns in
        # first-occurrence order (non-fold), or retained segments whose
        # effective label is resolved at finish (fold).
        self._time_single: dict[int, dict[str, int]] = {}
        self._time_single_segments: dict[int, list[ActivitySegment]] = {}
        self._time_multi: dict[int, dict[str, int]] = {}
        self._intervals_seen = 0
        self._pulses_total = 0
        self._span_t0_ns = 0
        self._last_interval_t1_ns = 0
        # Flips once the intervals outrun the analysis window (see the
        # class docstring); from then on covers defer to finish and the
        # segment deques are retained instead of consumed.
        self._tail_mode = False
        self._pending_count = 0
        self._finished = False
        self.peak_pending_segments = 0

    # -- stream plumbing ---------------------------------------------------

    def feed(self, entry) -> None:
        self.stream.feed(entry)

    def feed_all(self, entries: Iterable) -> EnergyMap:
        feed = self.stream.feed
        for entry in entries:
            feed(entry)
        return self.finish()

    def _on_segment(self, segment: ActivitySegment) -> None:
        res_id = segment.res_id
        queue = self._pending_single.get(res_id)
        if queue is None:
            queue = self._pending_single[res_id] = deque()
        queue.append(segment)
        self._note_pending(1)
        # Time breakdown (Table 3a): with fixed labels the per-name sums
        # accumulate as segments close; folded labels resolve at finish.
        if self.fold_proxies:
            self._time_single_segments.setdefault(res_id, []).append(segment)
        else:
            per_name = self._time_single.get(res_id)
            if per_name is None:
                per_name = self._time_single[res_id] = {}
            name = self.registry.name_of(segment.label)
            per_name[name] = per_name.get(name, 0) + segment.dt_ns

    def _on_multi_segment(self, segment: MultiActivitySegment) -> None:
        res_id = segment.res_id
        queue = self._pending_multi.get(res_id)
        if queue is None:
            queue = self._pending_multi[res_id] = deque()
        queue.append(segment)
        self._note_pending(1)
        per_name = self._time_multi.get(res_id)
        if per_name is None:
            per_name = self._time_multi[res_id] = {}
        if not segment.labels:
            per_name[self.idle_name] = (
                per_name.get(self.idle_name, 0) + segment.dt_ns
            )
            return
        split = segment.dt_ns // len(segment.labels)
        for label in segment.labels:
            name = self.registry.name_of(label)
            per_name[name] = per_name.get(name, 0) + split

    def _note_pending(self, delta: int) -> None:
        """O(1) running count of buffered segments (peak is the
        bounded-memory diagnostic the tests pin)."""
        self._pending_count += delta
        if self._pending_count > self.peak_pending_segments:
            self.peak_pending_segments = self._pending_count

    # -- interval covers ----------------------------------------------------

    def _single_cover(
        self, res_id: int, t0: int, t1: int,
    ) -> tuple[list[tuple[ActivitySegment, int]], int]:
        """Which segments of one device cover [t0, t1), with overlaps.

        Consumes buffered closed segments that the window has fully
        passed, scans the rest, and truncates the device's open span at
        the window end (it stays open at least that long — entries
        arrive in time order).  Returns ``(shares, idle_remainder_ns)``.
        """
        queue = self._pending_single.get(res_id)
        shares: list[tuple[ActivitySegment, int]] = []
        covered = 0
        if queue:
            while queue and queue[0].t1_ns <= t0:
                queue.popleft()
                self._note_pending(-1)
            # Inlined _overlapping: this cover runs per (interval x
            # device column), and the fused loop also accumulates the
            # covered sum instead of re-walking the share list.
            append = shares.append
            for span in queue:
                s0 = span.t0_ns
                if s0 >= t1:
                    break
                s1 = span.t1_ns
                lo = s0 if s0 > t0 else t0
                hi = s1 if s1 < t1 else t1
                if hi > lo:
                    append((span, hi - lo))
                    covered += hi - lo
        # The open span has a provisional t1; it reaches at least the
        # window end, so clamp it by hand.
        tracker = self.stream._singles.get(res_id)
        open_segment = tracker.open_segment if tracker is not None else None
        if open_segment is not None and open_segment.t0_ns < t1:
            lo = open_segment.t0_ns if open_segment.t0_ns > t0 else t0
            if t1 > lo:
                shares.append((open_segment, t1 - lo))
                covered += t1 - lo
        return shares, (t1 - t0) - covered

    def _multi_cover(self, res_id: int, t0: int, t1: int) -> dict[str, float]:
        """Streaming multi-device cover: buffered closed segments plus
        the open span (snapshotted and clamped at the window end)."""
        queue = self._pending_multi.get(res_id)
        spans: list[MultiActivitySegment] = []
        if queue:
            while queue and queue[0].t1_ns <= t0:
                queue.popleft()
                self._note_pending(-1)
            spans.extend(queue)
        tracker = self.stream.multi_tracker(res_id)
        if tracker is not None and tracker.started \
                and tracker.open_start_ns < t1:
            spans.append(MultiActivitySegment(
                res_id=res_id, t0_ns=tracker.open_start_ns, t1_ns=t1,
                labels=tracker.current_labels()))
        return _multi_shares(
            ((span.labels, overlap)
             for span, overlap in _overlapping(spans, t0, t1)),
            t1 - t0, self.idle_name, self.registry.name_of)

    def _multi_cover_list(
        self,
        segments: Sequence[MultiActivitySegment],
        start: int,
        t0: int,
        t1: int,
    ) -> tuple[dict[str, float], int]:
        """Batch-style multi cover over a finished segment list (tail
        replay): same cursor contract as :func:`_scan_cover`."""
        pairs, _covered, cursor = _scan_cover(segments, start, t0, t1)
        shares = _multi_shares(
            ((span.labels, overlap) for span, overlap in pairs),
            t1 - t0, self.idle_name, self.registry.name_of)
        return shares, cursor

    def _apply_single(
        self,
        component: str,
        joules: float,
        shares: Sequence[tuple[ActivitySegment, int]],
        idle_ns: int,
    ) -> None:
        """Group per-segment overlaps by activity name and charge them —
        the one place single-device joules are attributed, eagerly or on
        replay (so both orders produce identical arithmetic)."""
        named: dict[str, int] = {}
        fold = self.fold_proxies
        name_of = self.registry.name_of
        total_share = 0
        for segment, overlap in shares:
            if fold:
                bound = segment.bound_to
                label = bound if bound is not None else segment.label
            else:
                label = segment.label
            name = name_of(label)
            named[name] = named.get(name, 0) + overlap
            total_share += overlap
        _charge_named(self.map, component, joules, named, total_share,
                      idle_ns, self.idle_name)

    def _on_interval(self, interval: PowerInterval) -> None:
        if self._intervals_seen == 0:
            self._span_t0_ns = interval.t0_ns
        self._intervals_seen += 1
        self._pulses_total += interval.pulses
        self._last_interval_t1_ns = interval.t1_ns
        dt_ns = interval.dt_ns
        if dt_ns <= 0:
            return
        if self.regression is None:
            raise RegressionError(
                "accounting needs a regression once power intervals exist"
            )
        if not self._tail_mode and self.end_time_ns is not None \
                and interval.t1_ns > self.end_time_ns:
            # The intervals have outrun the analysis window: covers are
            # no longer complete at close time (a segment open now may
            # close early, at the window end; successors may still open
            # inside this interval).  Interval ends are monotone, so
            # every remaining interval defers to finish.
            self._tail_mode = True
        tail = self._tail_mode
        dt_s = dt_ns * 1e-9
        fold = self.fold_proxies
        # Constant draw: the baseline floor, charged to Const.
        const_j = self._const_power_w * dt_s
        if fold or tail:
            self._ops.append(("const", const_j))
        else:
            energy_j = self.map.energy_j
            energy_j[_CONST_PAIR] = energy_j.get(_CONST_PAIR, 0.0) + const_j
            self.map.reconstructed_energy_j += const_j
        states = interval.states
        plan = self._vector_plan.get(states)
        if plan is None:
            resolved = []
            for res_id, value in states:
                entry = self._column_power.get((res_id, value))
                if entry is None:
                    continue  # baseline state of the sink: no marginal draw
                column_name, power_w = entry
                resolved.append((
                    res_id,
                    self.component_names.get(res_id, column_name),
                    power_w,
                ))
            plan = self._vector_plan[states] = tuple(resolved)
        singles = self.stream._singles
        multis = self.stream._multis
        for res_id, component, power_w in plan:
            joules = power_w * dt_s
            if singles.get(res_id) is not None:
                if tail:
                    self._ops.append(("single_tail", component, joules,
                                      res_id, interval.t0_ns,
                                      interval.t1_ns))
                    continue
                shares, idle_ns = self._single_cover(
                    res_id, interval.t0_ns, interval.t1_ns)
                if fold:
                    self._ops.append(
                        ("single", component, joules, shares, idle_ns))
                else:
                    self._apply_single(component, joules, shares, idle_ns)
            elif multis.get(res_id) is not None:
                if tail:
                    self._ops.append(("multi_tail", component, joules,
                                      res_id, interval.t0_ns,
                                      interval.t1_ns))
                    continue
                shares_f = self._multi_cover(
                    res_id, interval.t0_ns, interval.t1_ns)
                if fold:
                    self._ops.append(("multi", component, joules, shares_f))
                else:
                    for activity, fraction in shares_f.items():
                        self.map.add_energy(component, activity,
                                            joules * fraction)
            else:
                if fold or tail:
                    self._ops.append(("untracked", component, joules))
                else:
                    self.map.add_energy(component, UNTRACKED_KEY, joules)
        if not tail:
            # No later window can start before this interval's end, so
            # segments wholly behind it are spent — including those of
            # devices the covers above never touched (no power column).
            # This is what keeps pending state flat as the log grows; in
            # tail mode the deques are retained for the finish re-cover.
            boundary = interval.t1_ns
            for queue in self._pending_single.values():
                while queue and queue[0].t1_ns <= boundary:
                    queue.popleft()
                    self._note_pending(-1)
            for queue in self._pending_multi.values():
                while queue and queue[0].t1_ns <= boundary:
                    queue.popleft()
                    self._note_pending(-1)

    # -- completion ---------------------------------------------------------

    def finish(self) -> EnergyMap:
        """Close the stream and return the completed map.  Idempotent:
        a second call returns the same map without re-charging."""
        if self._finished:
            return self.map
        self.stream.finish(self.end_time_ns)
        if not self._intervals_seen:
            raise RegressionError("no power intervals to account")
        self._finished = True
        # Replay deferred cover ops now that every bind has been seen
        # (fold mode) and every tail segment has closed (tail windows).
        # Replay order is interval order — the same order the batch path
        # charges them; tail windows re-cover from the retained segment
        # deques with batch-style cursors.
        tail_single: dict[int, list[ActivitySegment]] = {}
        tail_multi: dict[int, list[MultiActivitySegment]] = {}
        single_cursor: dict[int, int] = {}
        multi_cursor: dict[int, int] = {}
        for op in self._ops:
            kind = op[0]
            if kind == "const":
                self.map.add_energy(CONST_KEY, CONST_KEY, op[1])
            elif kind == "single":
                _, component, joules, shares, idle_ns = op
                self._apply_single(component, joules, shares, idle_ns)
            elif kind == "single_tail":
                _, component, joules, res_id, t0, t1 = op
                segments = tail_single.get(res_id)
                if segments is None:
                    segments = tail_single[res_id] = list(
                        self._pending_single.get(res_id, ()))
                    single_cursor[res_id] = 0
                shares, covered, single_cursor[res_id] = _scan_cover(
                    segments, single_cursor[res_id], t0, t1)
                self._apply_single(component, joules, shares,
                                   (t1 - t0) - covered)
            elif kind == "multi":
                _, component, joules, shares_f = op
                for activity, fraction in shares_f.items():
                    self.map.add_energy(component, activity,
                                        joules * fraction)
            elif kind == "multi_tail":
                _, component, joules, res_id, t0, t1 = op
                msegments = tail_multi.get(res_id)
                if msegments is None:
                    msegments = tail_multi[res_id] = list(
                        self._pending_multi.get(res_id, ()))
                    multi_cursor[res_id] = 0
                shares_f, multi_cursor[res_id] = self._multi_cover_list(
                    msegments, multi_cursor[res_id], t0, t1)
                for activity, fraction in shares_f.items():
                    self.map.add_energy(component, activity,
                                        joules * fraction)
            else:  # untracked
                _, component, joules = op
                self.map.add_energy(component, UNTRACKED_KEY, joules)
        self._ops.clear()
        # Time breakdown per device (Table 3a): how long each component
        # worked on behalf of each activity, independent of power states.
        if self.fold_proxies:
            for res_id in sorted(self._time_single_segments):
                component = self.component_names.get(res_id, f"res{res_id}")
                for segment in self._time_single_segments[res_id]:
                    self.map.add_time(
                        component,
                        self.registry.name_of(segment.effective_label),
                        segment.dt_ns)
        else:
            for res_id in sorted(self._time_single):
                component = self.component_names.get(res_id, f"res{res_id}")
                for name, dt_ns in self._time_single[res_id].items():
                    self.map.add_time(component, name, dt_ns)
        for res_id in sorted(self._time_multi):
            component = self.component_names.get(res_id, f"res{res_id}")
            for name, dt_ns in self._time_multi[res_id].items():
                self.map.add_time(component, name, dt_ns)
        self.map.span_ns = self._last_interval_t1_ns - self._span_t0_ns
        self.map.metered_energy_j = (
            self._pulses_total * self.energy_per_pulse_j
        )
        return self.map


# -- windowed (online) accounting -------------------------------------------


@dataclass
class WindowSnapshot:
    """One closed accounting window: the stride's *delta* breakdown for
    display, plus the exact cumulative running sums up to the window's
    close.

    The deltas (``energy_j`` / ``time_ns``) are what a live dashboard
    renders: "energy this window, by (component, activity)".  They are
    computed by subtracting successive cumulative values, which is exact
    for the integer time sums but — like any float subtraction — not
    information-preserving for energy.  The cumulative dicts are
    therefore carried verbatim: they are the accumulator's own running
    sums (the identical IEEE-754 add sequence the batch path performs),
    which is what makes :func:`fold_windows` byte-identical to
    :func:`build_energy_map` instead of merely close.
    """

    #: Stride index relative to the window origin (0-based).
    index: int
    #: Window bounds; ``t1_ns`` of the final window is the analysis end,
    #: not the stride boundary.
    t0_ns: int
    t1_ns: int
    #: Power intervals charged during this stride.
    intervals: int
    #: This stride's per-(component, activity) energy / busy-time deltas
    #: (zero-valued keys omitted; display-quality floats).
    energy_j: dict[tuple[str, str], float]
    time_ns: dict[tuple[str, str], int]
    #: Exact running sums at window close — same float bits and dict
    #: insertion order as the batch map built from the same prefix.
    cumulative_energy_j: dict[tuple[str, str], float]
    cumulative_time_ns: dict[tuple[str, str], int]
    #: Cumulative totals at window close.
    reconstructed_energy_j: float
    metered_energy_j: float
    span_ns: int
    #: True for the snapshot emitted by :meth:`WindowedAccumulator.finish`
    #: (it absorbs the tail re-cover and the final time fold).
    final: bool = False


def fold_windows(snapshots: Sequence[WindowSnapshot]) -> EnergyMap:
    """Collapse an emitted window sequence back into one
    :class:`EnergyMap`.

    Because every snapshot carries the accumulator's exact cumulative
    sums, the fold is simply the last window's cumulative state — no
    re-adding of per-window deltas (which would change the float-add
    order).  Folding the full sequence emitted by a finished
    :class:`WindowedAccumulator` therefore reproduces
    :func:`build_energy_map` bit-for-bit: same float bits, same dict
    insertion order.
    """
    if not snapshots:
        raise WindowingError("cannot fold an empty window sequence")
    last = snapshots[-1]
    return EnergyMap(
        time_ns=dict(last.cumulative_time_ns),
        energy_j=dict(last.cumulative_energy_j),
        metered_energy_j=last.metered_energy_j,
        reconstructed_energy_j=last.reconstructed_energy_j,
        span_ns=last.span_ns,
    )


class WindowedAccumulator(EnergyAccumulator):
    """Online accounting: the streaming accumulator, sliced into
    tumbling windows as entries arrive.

    Time is divided into ``stride_ns``-wide strides anchored at
    ``origin_ns`` (default: the first power interval's start).  The
    accounting quantum is the power interval — an interval is charged to
    the stride containing its start, so strides partition the intervals
    without splitting any (splitting would change the float-add order
    and break the fold contract).  When the interval starts cross a
    stride boundary the open window closes: a :class:`WindowSnapshot` is
    appended to :attr:`windows` (a deque bounded by ``retain``) and
    passed to ``on_window`` if given.  :meth:`finish` closes the last,
    partial window; its snapshot absorbs the deferred tail re-cover and
    carries the finished map's exact state.

    Memory stays bounded by the stream's open spans plus ``retain``
    snapshots of the (component, activity) key set — independent of log
    length, like the parent.

    Windowing requires eager charging, so proxy folding (inherently
    retrospective — a bind can reattribute arbitrarily old segments) is
    not supported; the parent is always constructed with
    ``fold_proxies=False``.

    Sliding windows are views, not extra state: :meth:`sliding` merges
    the last ``width/stride`` retained snapshots.
    """

    def __init__(
        self,
        regression: RegressionResult,
        registry: ActivityRegistry,
        component_names: dict[int, str],
        energy_per_pulse_j: float,
        *,
        stride_ns: int,
        idle_name: str = "Idle",
        single_res_ids: Optional[Iterable[int]] = None,
        multi_res_ids: Optional[Iterable[int]] = None,
        end_time_ns: Optional[int] = None,
        origin_ns: Optional[int] = None,
        retain: Optional[int] = 64,
        on_window=None,
    ) -> None:
        if stride_ns <= 0:
            raise WindowingError(
                f"window stride must be positive, got {stride_ns}"
            )
        super().__init__(
            regression, registry, component_names, energy_per_pulse_j,
            fold_proxies=False, idle_name=idle_name,
            single_res_ids=single_res_ids, multi_res_ids=multi_res_ids,
            end_time_ns=end_time_ns,
        )
        self.stride_ns = int(stride_ns)
        self.on_window = on_window
        #: Closed windows, oldest first, bounded by ``retain`` (None
        #: retains everything — batch-replay use only).
        self.windows: deque[WindowSnapshot] = deque(maxlen=retain)
        #: Total windows closed (unlike ``len(windows)``, unaffected by
        #: the retention bound).
        self.windows_emitted = 0
        self._window_origin = origin_ns
        self._window_index: Optional[int] = None
        self._prev_energy: dict[tuple[str, str], float] = {}
        self._prev_time: dict[tuple[str, str], int] = {}
        self._prev_intervals = 0

    # -- the stride clock ---------------------------------------------------

    def _on_interval(self, interval: PowerInterval) -> None:
        t0 = interval.t0_ns
        if self._window_index is None:
            if self._window_origin is None:
                self._window_origin = t0
            self._window_index = (t0 - self._window_origin) // self.stride_ns
        else:
            index = (t0 - self._window_origin) // self.stride_ns
            # Interval starts are monotone (intervals tile), so strides
            # close in order; a long interval can leave empty strides
            # behind it, which still emit (zero-delta) snapshots so the
            # window sequence is gap-free.
            while self._window_index < index:
                self._close_window(final=False)
        super()._on_interval(interval)

    def _fold_time(self) -> dict[tuple[str, str], int]:
        """The cumulative busy-time breakdown from the live per-device
        name→ns sums — the same device/name order the parent's finish
        folds, so the final snapshot's dict matches it exactly.  Only
        closed segments are included (an open span's label is charged
        when it closes)."""
        cumulative: dict[tuple[str, str], int] = {}
        for res_id in sorted(self._time_single):
            component = self.component_names.get(res_id, f"res{res_id}")
            for name, dt_ns in self._time_single[res_id].items():
                key = (component, name)
                cumulative[key] = cumulative.get(key, 0) + dt_ns
        for res_id in sorted(self._time_multi):
            component = self.component_names.get(res_id, f"res{res_id}")
            for name, dt_ns in self._time_multi[res_id].items():
                key = (component, name)
                cumulative[key] = cumulative.get(key, 0) + dt_ns
        return cumulative

    def _close_window(self, final: bool) -> None:
        index = self._window_index
        cumulative_energy = dict(self.map.energy_j)
        # The finished map's own time fold is authoritative for the
        # final window (it includes spans the stream just closed).
        cumulative_time = (
            dict(self.map.time_ns) if final else self._fold_time()
        )
        delta_energy: dict[tuple[str, str], float] = {}
        previous = self._prev_energy
        for key, value in cumulative_energy.items():
            delta = value - previous.get(key, 0.0)
            if delta != 0.0:
                delta_energy[key] = delta
        delta_time: dict[tuple[str, str], int] = {}
        previous_t = self._prev_time
        for key, value in cumulative_time.items():
            delta = value - previous_t.get(key, 0)
            if delta:
                delta_time[key] = delta
        t0_ns = self._window_origin + index * self.stride_ns
        t1_ns = (self._last_interval_t1_ns if final
                 else t0_ns + self.stride_ns)
        snapshot = WindowSnapshot(
            index=index,
            t0_ns=t0_ns,
            t1_ns=t1_ns,
            intervals=self._intervals_seen - self._prev_intervals,
            energy_j=delta_energy,
            time_ns=delta_time,
            cumulative_energy_j=cumulative_energy,
            cumulative_time_ns=cumulative_time,
            reconstructed_energy_j=self.map.reconstructed_energy_j,
            metered_energy_j=self._pulses_total * self.energy_per_pulse_j,
            span_ns=self._last_interval_t1_ns - self._span_t0_ns,
            final=final,
        )
        self._prev_energy = cumulative_energy
        self._prev_time = cumulative_time
        self._prev_intervals = self._intervals_seen
        self._window_index = index + 1
        self.windows.append(snapshot)
        self.windows_emitted += 1
        if self.on_window is not None:
            self.on_window(snapshot)

    def finish(self) -> EnergyMap:
        if self._finished:
            return self.map
        super().finish()
        if self._window_index is not None:
            self._close_window(final=True)
        return self.map

    # -- durability ---------------------------------------------------------

    def snapshot(self) -> bytes:
        """The accumulator's complete mid-stream state as one opaque
        blob (pickle).  Everything the fold contract depends on rides
        along — open spans, interned state-vector sums, cumulative
        per-key float sums, window origin/index, the retained snapshot
        deque — so :meth:`restore` of this blob, fed the remaining
        entries, produces windows and a final map **bit-identical** to
        an uninterrupted accumulator (the crash-safety contract the
        ingest server's checkpoints lean on).

        ``on_window`` is deliberately not captured (server callbacks
        close over sockets); reattach one via :meth:`restore`.
        """
        import pickle

        on_window = self.on_window
        self.on_window = None
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            self.on_window = on_window

    @classmethod
    def restore(cls, blob: bytes, on_window=None) -> "WindowedAccumulator":
        """Rebuild an accumulator from a :meth:`snapshot` blob."""
        import pickle

        try:
            accumulator = pickle.loads(blob)
        except Exception as exc:
            raise WindowingError(
                f"bad WindowedAccumulator snapshot: {exc}") from exc
        if not isinstance(accumulator, cls):
            raise WindowingError(
                f"bad WindowedAccumulator snapshot: unpickled "
                f"{type(accumulator).__name__}")
        accumulator.on_window = on_window
        return accumulator

    # -- live views ---------------------------------------------------------

    def live_breakdown(self) -> dict:
        """The cumulative breakdown *right now*, without closing the
        stream: what a dashboard polls between window closes.  Energy
        values are the exact running sums; time covers closed segments."""
        return {
            "energy_j": dict(self.map.energy_j),
            "time_ns": self._fold_time(),
            "reconstructed_energy_j": self.map.reconstructed_energy_j,
            "metered_energy_j": (
                self._pulses_total * self.energy_per_pulse_j
            ),
            "span_ns": self._last_interval_t1_ns - self._span_t0_ns,
            "intervals": self._intervals_seen,
            "windows_emitted": self.windows_emitted,
        }

    def sliding(self, width_ns: int) -> dict:
        """A sliding-window view: the merged deltas of the last
        ``width_ns / stride_ns`` closed windows (display-quality floats;
        the exactness contract lives in the cumulative sums).  Raises if
        the width is not a stride multiple or outruns retention."""
        if width_ns <= 0 or width_ns % self.stride_ns:
            raise WindowingError(
                f"sliding width {width_ns} is not a positive multiple "
                f"of the stride {self.stride_ns}"
            )
        count = width_ns // self.stride_ns
        if count > len(self.windows) and self.windows_emitted \
                > len(self.windows):
            raise WindowingError(
                f"sliding window of {count} strides outruns retention "
                f"({len(self.windows)} snapshots kept)"
            )
        recent = list(self.windows)[-count:]
        energy_j: dict[tuple[str, str], float] = {}
        time_ns: dict[tuple[str, str], int] = {}
        intervals = 0
        for snapshot in recent:
            intervals += snapshot.intervals
            for key, value in snapshot.energy_j.items():
                energy_j[key] = energy_j.get(key, 0.0) + value
            for key, value in snapshot.time_ns.items():
                time_ns[key] = time_ns.get(key, 0) + value
        return {
            "t0_ns": recent[0].t0_ns if recent else 0,
            "t1_ns": recent[-1].t1_ns if recent else 0,
            "windows": len(recent),
            "intervals": intervals,
            "energy_j": energy_j,
            "time_ns": time_ns,
        }


# -- columnar backend -------------------------------------------------------


class _ColumnarCharge:
    """One charged device's precomputed per-interval columns: for every
    interval whose state vector gives this device a power column (in
    interval order), the component name, the joules (vectorized
    draw × duration products), and — for tracked devices — the ragged
    cover rows produced by :func:`_ragged_cover`.  ``cursor`` walks the
    columns as the ordered fold sweeps the intervals."""

    __slots__ = ("kind", "components", "joules", "offsets",
                 "pair_names", "pair_sets", "pair_overlap", "cursor")

    KIND_SINGLE = 0
    KIND_MULTI = 1
    KIND_UNTRACKED = 2

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.components: list[str] = []
        self.joules: list[float] = []
        self.offsets: list[int] = [0]
        self.pair_names: list[str] = []
        self.pair_sets: list[frozenset] = []
        self.pair_overlap: list[int] = []
        self.cursor = 0


def _ragged_cover(window_t0, window_t1, seg_t0, seg_t1):
    """``searchsorted``-based interval cover: how a batch of windows
    divides among one device's sorted, non-overlapping segments.

    Returns ``(offsets, seg_rows, overlaps)``: window ``i`` is covered
    by segment rows ``seg_rows[offsets[i]:offsets[i+1]]`` with the
    matching per-row overlaps (all positive, in time order) — exactly
    the spans the cursor-based streaming cover yields, computed for
    every window at once.
    """
    # A segment overlaps [a, b) iff its t1 > a and its t0 < b; with both
    # boundaries arrays sorted, those are two vectorized bisections.
    lo = np.searchsorted(seg_t1, window_t0, side="right")
    hi = np.searchsorted(seg_t0, window_t1, side="left")
    counts = hi - lo
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    window_rows = np.repeat(np.arange(len(counts)), counts)
    seg_rows = (np.arange(total, dtype=np.int64)
                - np.repeat(offsets[:-1], counts)
                + np.repeat(lo, counts))
    overlaps = (np.minimum(seg_t1[seg_rows], window_t1[window_rows])
                - np.maximum(seg_t0[seg_rows], window_t0[window_rows]))
    return offsets, seg_rows, overlaps


def _fold_stream(emap, timeline, plan_raw, dt_ns, dt_s, const_arr,
                 label_name, name_of_value, fold_proxies, idle_name,
                 name_of):
    """The ordered fold, vectorized and fused: every charged device's
    per-interval work is flattened into ONE cover query and ONE
    grouping sort (charges separated by a per-charge time offset larger
    than any timestamp), producing a single
    ``(interval, plan-position, within-charge-rank)``-keyed contribution
    stream whose final scalar adds are replayed in reference order.

    Bit-identity with :func:`_fold_reference` (and hence the streaming
    accumulator) rests on these facts, each pinned by the
    backend-equivalence fuzz tests:

    * with every interval strictly positive (the guard the caller
      enforces), a single-device cover's share denominator is always
      exactly the interval duration — the named overlaps plus the idle
      remainder sum to ``dt_ns`` — so ``share/total`` is an
      ``int64/int64`` divide, which numpy evaluates to the same float64
      Python's ``int/int`` does for magnitudes below 2**53;
    * ``joules * fraction`` is the same elementwise IEEE-754 multiply
      either way;
    * per-key accumulation replays with ``np.cumsum`` — a strict
      left-to-right accumulation, unlike ``np.sum``'s pairwise tree —
      over each key's contributions gathered in stream order, and keys
      are inserted in first-occurrence stream order, preserving dict
      order.  The lone divergence from a fold that starts at literal
      ``0.0`` is an all-negative-zero stream, which the reference
      rounds to ``+0.0``; the ``== 0.0`` normalization below restores
      exactly that.

    Requires ``emap`` fresh (empty ``energy_j``, zero reconstructed
    total), which :func:`columnar_energy_map` guarantees.
    """
    vectors = timeline.vectors
    n_vec = len(vectors)
    interval_vec = timeline.interval_vec
    n_intervals = len(dt_ns)
    names: list = [None]          # id 0: the regression constant
    name_ids: dict[str, int] = {}

    def intern_name(name: str) -> int:
        nid = name_ids.get(name)
        if nid is None:
            nid = name_ids[name] = len(names)
            names.append(name)
        return nid

    comps: list = [None]
    comp_ids: dict[str, int] = {}

    def intern_comp(component: str) -> int:
        cid = comp_ids.get(component)
        if cid is None:
            cid = comp_ids[component] = len(comps)
            comps.append(component)
        return cid

    value_nid: dict[int, int] = {}

    def nid_of_value(value: int) -> int:
        nid = value_nid.get(value)
        if nid is None:
            nid = value_nid[value] = intern_name(name_of_value(value))
        return nid

    idle_id = intern_name(idle_name)
    untracked_id = intern_name(UNTRACKED_KEY)
    charged_ids = sorted({r for plan in plan_raw for r, _, _ in plan})
    charge_index = {rid: c for c, rid in enumerate(charged_ids)}
    n_charges = len(charged_ids)
    KIND_SINGLE, KIND_MULTI, KIND_UNTRACKED = 0, 1, 2
    kind_arr = np.empty(n_charges, dtype=np.int64)
    charge_cols: list = [None] * n_charges
    for c, rid in enumerate(charged_ids):
        single = timeline.single_columns(rid)
        if single is not None:
            kind_arr[c] = KIND_SINGLE
            charge_cols[c] = single
            continue
        multi = timeline.multi_columns(rid)
        if multi is not None:
            kind_arr[c] = KIND_MULTI
            charge_cols[c] = multi
        else:
            kind_arr[c] = KIND_UNTRACKED
    # Per-(charge, vector) tables off the plans: a charge's power draw,
    # display component, and position within each vector's plan.
    has_mat = np.zeros((n_charges, n_vec), dtype=bool)
    power_mat = np.zeros((n_charges, n_vec), dtype=np.float64)
    comp_mat = np.zeros((n_charges, n_vec), dtype=np.int64)
    pos_mat = np.zeros((n_charges, n_vec), dtype=np.int64)
    for vec_id, plan in enumerate(plan_raw):
        for pos, (rid, component, power_w) in enumerate(plan):
            c = charge_index[rid]
            has_mat[c, vec_id] = True
            power_mat[c, vec_id] = power_w
            comp_mat[c, vec_id] = intern_comp(component)
            pos_mat[c, vec_id] = pos
    # Flatten to one (charge, interval) row list, charge-major: every
    # interval in which each charge carries a power column.
    c_idx, i_idx = np.nonzero(has_mat[:, interval_vec])
    vecs_f = interval_vec[i_idx]
    joules_f = power_mat[c_idx, vecs_f] * dt_s[i_idx]
    comp_f = comp_mat[c_idx, vecs_f]
    pos_f = pos_mat[c_idx, vecs_f]
    dt_f = dt_ns[i_idx]
    kind_f = kind_arr[c_idx]
    # Stream columns: interval row, plan position (-1: const), rank
    # within the charge, component id, name id, joules.
    stream_i = [np.arange(n_intervals, dtype=np.int64)]
    stream_p = [np.full(n_intervals, -1, dtype=np.int64)]
    stream_q = [np.zeros(n_intervals, dtype=np.int64)]
    stream_c = [np.zeros(n_intervals, dtype=np.int64)]
    stream_n = [np.zeros(n_intervals, dtype=np.int64)]
    stream_v = [const_arr]
    # -- single-tracked charges: ONE fused cover + grouping ----------------
    single_rows = np.nonzero(kind_f == KIND_SINGLE)[0]
    if len(single_rows):
        # Shift each charge into its own disjoint time band so one
        # sorted segment array (and one bisection pair) covers them
        # all; overlaps are time differences, unaffected by the shift.
        span_ns = int(timeline.end_time_ns) + 1
        if n_intervals:
            span_ns = max(span_ns, int(timeline.interval_t1[-1]) + 1)
        seg_t0_parts = []
        seg_t1_parts = []
        seg_val_parts: list = []
        for c in range(n_charges):
            if kind_arr[c] != KIND_SINGLE:
                continue
            single = charge_cols[c]
            shift = c * span_ns
            seg_t0_parts.append(single.t0 + shift)
            seg_t1_parts.append(single.t1 + shift)
            if fold_proxies:
                seg_val_parts.extend(
                    b if b is not None else label
                    for label, b in zip(single.labels, single.bound))
            else:
                seg_val_parts.extend(single.labels)
        seg_t0_all = np.concatenate(seg_t0_parts)
        seg_t1_all = np.concatenate(seg_t1_parts)
        # A handful of distinct labels name hundreds of segments:
        # resolve the uniques, then translate by table lookup.
        uvals, uinv = np.unique(
            np.asarray(seg_val_parts, dtype=np.int64),
            return_inverse=True)
        nid_lut = np.fromiter(
            (nid_of_value(value) for value in uvals.tolist()),
            dtype=np.int64, count=len(uvals))
        seg_name_ids = nid_lut[uinv]
        shift_f = c_idx[single_rows] * span_ns
        offsets, seg_rows, overlaps = _ragged_cover(
            timeline.interval_t0[i_idx[single_rows]] + shift_f,
            timeline.interval_t1[i_idx[single_rows]] + shift_f,
            seg_t0_all, seg_t1_all)
        n_srows = len(single_rows)
        pair_row = np.repeat(
            np.arange(n_srows, dtype=np.int64), np.diff(offsets))
        if len(pair_row):
            # Group cover rows by (flat row, name): a stable sort on a
            # composite key; first-occurrence positions give the dict
            # insertion rank, int sums the per-name shares (exact).
            pair_name = seg_name_ids[seg_rows]
            group_key = pair_row * (len(names) + 1) + pair_name
            order = np.argsort(group_key, kind="stable")
            sorted_key = group_key[order]
            first = np.empty(len(sorted_key), dtype=bool)
            first[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=first[1:])
            group_starts = np.nonzero(first)[0]
            group_first = order[group_starts]
            group_share = np.add.reduceat(overlaps[order], group_starts)
            group_row = pair_row[group_first]
            group_name = pair_name[group_first]
            covered = np.bincount(
                pair_row, weights=overlaps,
                minlength=n_srows).astype(np.int64)
        else:
            group_first = np.empty(0, dtype=np.int64)
            group_share = np.empty(0, dtype=np.int64)
            group_row = np.empty(0, dtype=np.int64)
            group_name = np.empty(0, dtype=np.int64)
            covered = np.zeros(n_srows, dtype=np.int64)
        dt_s_rows = dt_f[single_rows]
        idle_ns = dt_s_rows - covered
        has_idle = idle_ns > 0
        if has_idle.any():
            # The remainder merges into an existing idle-named group
            # (keeping its rank) or appends last.
            idle_gidx = np.full(n_srows, -1, dtype=np.int64)
            idle_groups = np.nonzero(group_name == idle_id)[0]
            idle_gidx[group_row[idle_groups]] = idle_groups
            merge_rows = np.nonzero(has_idle & (idle_gidx >= 0))[0]
            if len(merge_rows):
                group_share[idle_gidx[merge_rows]] += idle_ns[merge_rows]
            new_rows = np.nonzero(has_idle & (idle_gidx < 0))[0]
            if len(new_rows):
                group_row = np.concatenate((group_row, new_rows))
                group_name = np.concatenate((
                    group_name,
                    np.full(len(new_rows), idle_id, dtype=np.int64)))
                group_share = np.concatenate((
                    group_share, idle_ns[new_rows]))
                # Rank the appended remainder after every named cover
                # group of its interval: group_first holds pair-array
                # indices, all strictly below len(pair_row).
                group_first = np.concatenate((
                    group_first,
                    np.full(len(new_rows), len(pair_row),
                            dtype=np.int64)))
        if len(group_row):
            flat = single_rows[group_row]
            stream_i.append(i_idx[flat])
            stream_p.append(pos_f[flat])
            stream_q.append(group_first)
            stream_c.append(comp_f[flat])
            stream_n.append(group_name)
            stream_v.append(
                joules_f[flat] * (group_share / dt_f[flat]))
    # -- untracked charges: one contribution per row -----------------------
    untracked_rows = np.nonzero(kind_f == KIND_UNTRACKED)[0]
    if len(untracked_rows):
        stream_i.append(i_idx[untracked_rows])
        stream_p.append(pos_f[untracked_rows])
        stream_q.append(np.zeros(len(untracked_rows), dtype=np.int64))
        stream_c.append(comp_f[untracked_rows])
        stream_n.append(np.full(len(untracked_rows), untracked_id,
                                dtype=np.int64))
        stream_v.append(joules_f[untracked_rows])
    # -- multi charges: the scalar share helper, per charge (rare) ---------
    if (kind_f == KIND_MULTI).any():
        sets = timeline.label_sets
        for c in range(n_charges):
            if kind_arr[c] != KIND_MULTI:
                continue
            rows = np.nonzero(c_idx == c)[0]
            if not len(rows):
                continue
            multi = charge_cols[c]
            offsets, seg_rows, overlaps = _ragged_cover(
                timeline.interval_t0[i_idx[rows]],
                timeline.interval_t1[i_idx[rows]],
                multi.t0, multi.t1)
            seg_sets = [sets[s] for s in multi.set_ids]
            offs = offsets.tolist()
            srows = seg_rows.tolist()
            over = overlaps.tolist()
            dt_list = dt_f[rows].tolist()
            joules_list = joules_f[rows].tolist()
            i_list = i_idx[rows].tolist()
            p_list = pos_f[rows].tolist()
            c_list = comp_f[rows].tolist()
            mi: list[int] = []
            mp: list[int] = []
            mq: list[int] = []
            mc: list[int] = []
            mn: list[int] = []
            mv: list[float] = []
            for r in range(len(rows)):
                start, stop = offs[r], offs[r + 1]
                shares = _multi_shares(
                    ((seg_sets[srows[k]], over[k])
                     for k in range(start, stop)),
                    dt_list[r], idle_name, name_of)
                for rank, (activity, fraction) in \
                        enumerate(shares.items()):
                    mi.append(i_list[r])
                    mp.append(p_list[r])
                    mq.append(rank)
                    mc.append(c_list[r])
                    mn.append(intern_name(activity))
                    mv.append(joules_list[r] * fraction)
            if mi:
                stream_i.append(np.array(mi, dtype=np.int64))
                stream_p.append(np.array(mp, dtype=np.int64))
                stream_q.append(np.array(mq, dtype=np.int64))
                stream_c.append(np.array(mc, dtype=np.int64))
                stream_n.append(np.array(mn, dtype=np.int64))
                stream_v.append(np.array(mv, dtype=np.float64))
    # -- assemble and replay ----------------------------------------------
    i_all = np.concatenate(stream_i)
    p_all = np.concatenate(stream_p)
    q_all = np.concatenate(stream_q)
    # One composite key replaces the three-key lexsort: i primary, then
    # p, then q, with bases one past each key's maximum; the stable
    # argsort keeps lexsort's tie order (both stable on the original
    # positions).  p is shifted by one so the const sentinel (-1) maps
    # into [0, p_base) — an affine encoding is order-preserving only
    # over non-negative digits.
    p_base = int(p_all.max()) + 2 if len(p_all) else 2
    q_base = int(q_all.max()) + 1 if len(q_all) else 1
    order = np.argsort(
        (i_all * p_base + (p_all + 1)) * q_base + q_all, kind="stable")
    span = len(names) + 1
    code = (np.concatenate(stream_c) * span
            + np.concatenate(stream_n))[order]
    values = np.concatenate(stream_v)[order]
    # Codes live in a small dense range (components x names), so the
    # per-key totals come straight from one weighted bincount over the
    # codes themselves (same in-order per-bin accumulation as the dict
    # fold) and first-occurrence order from a reversed fancy assignment
    # (last write wins == first occurrence) — no sort needed.
    n_rows = len(code)
    n_codes = len(comps) * span
    first_row = np.full(n_codes, -1, dtype=np.int64)
    first_row[code[::-1]] = np.arange(n_rows - 1, -1, -1, dtype=np.int64)
    totals = np.bincount(code, weights=values, minlength=n_codes)
    present = np.nonzero(first_row >= 0)[0]
    energy_j = emap.energy_j
    for c in present[np.argsort(first_row[present],
                                kind="stable")].tolist():
        cid, nid = divmod(c, span)
        key = _CONST_PAIR if cid == 0 else (comps[cid], names[nid])
        energy_j[key] = float(totals[c])
    emap.reconstructed_energy_j = float(np.bincount(
        np.zeros(n_rows, dtype=np.intp), weights=values,
        minlength=1)[0])


def _fold_reference(emap, timeline, plan_raw, dt_ns, dt_s, const_arr,
                    label_name, name_of_value, fold_proxies, idle_name,
                    name_of):
    """The scalar ordered fold — the executable spec for
    :func:`_fold_stream` and the path for degenerate inputs
    (zero-length intervals, where the share denominator diverges from
    the interval duration)."""
    vectors = timeline.vectors
    interval_vec = timeline.interval_vec
    n_intervals = len(dt_ns)
    const_list = const_arr.tolist()
    _name_of_value = name_of_value
    charged: dict[int, _ColumnarCharge] = {}
    for res_id in sorted({r for plan in plan_raw for r, _, _ in plan}):
        single = timeline.single_columns(res_id)
        multi = timeline.multi_columns(res_id) if single is None else None
        if single is not None:
            charge = _ColumnarCharge(_ColumnarCharge.KIND_SINGLE)
        elif multi is not None:
            charge = _ColumnarCharge(_ColumnarCharge.KIND_MULTI)
        else:
            charge = _ColumnarCharge(_ColumnarCharge.KIND_UNTRACKED)
        has_power = np.zeros(len(vectors), dtype=bool)
        power_by_vec = np.zeros(len(vectors), dtype=np.float64)
        comp_by_vec: list[Optional[str]] = [None] * len(vectors)
        for vec_id, plan in enumerate(plan_raw):
            for rid, component, power_w in plan:
                if rid == res_id:
                    has_power[vec_id] = True
                    power_by_vec[vec_id] = power_w
                    comp_by_vec[vec_id] = component
        rows = np.nonzero(has_power[interval_vec])[0]
        row_vecs = interval_vec[rows]
        charge.components = [comp_by_vec[v] for v in row_vecs.tolist()]
        charge.joules = (power_by_vec[row_vecs] * dt_s[rows]).tolist()
        if charge.kind == _ColumnarCharge.KIND_SINGLE:
            offsets, seg_rows, overlaps = _ragged_cover(
                timeline.interval_t0[rows], timeline.interval_t1[rows],
                single.t0, single.t1)
            # A handful of distinct labels name hundreds of segments:
            # resolve each once, then translate by dict hit (no per-item
            # function call).
            if fold_proxies:
                seg_names = []
                append_name = seg_names.append
                for label, b in zip(single.labels, single.bound):
                    value = b if b is not None else label
                    name = label_name.get(value)
                    append_name(name if name is not None
                                else _name_of_value(value))
            else:
                seg_names = []
                append_name = seg_names.append
                for value in single.labels:
                    name = label_name.get(value)
                    append_name(name if name is not None
                                else _name_of_value(value))
            charge.offsets = offsets.tolist()
            charge.pair_names = [seg_names[j] for j in seg_rows.tolist()]
            charge.pair_overlap = overlaps.tolist()
        elif charge.kind == _ColumnarCharge.KIND_MULTI:
            offsets, seg_rows, overlaps = _ragged_cover(
                timeline.interval_t0[rows], timeline.interval_t1[rows],
                multi.t0, multi.t1)
            sets = timeline.label_sets
            seg_sets = [sets[s] for s in multi.set_ids]
            charge.offsets = offsets.tolist()
            charge.pair_sets = [seg_sets[j] for j in seg_rows.tolist()]
            charge.pair_overlap = overlaps.tolist()
        charged[res_id] = charge
    plans: list[list[_ColumnarCharge]] = [
        [charged[rid] for rid, _, _ in plan] for plan in plan_raw
    ]
    # The ordered fold: the one remaining per-interval loop, walking
    # precomputed columns — no trackers, no deques, no span objects.
    # The single-device charge (the hot kind) is _charge_named inlined,
    # with the reconstructed-total accumulator held in a local: the
    # adds happen to the same running value in the same order, so the
    # bits match the streaming accumulator exactly (the helper remains
    # the streaming path's implementation and this loop's spec; the
    # shared golden digests pin the two against each other).
    energy_j = emap.energy_j
    energy_get = energy_j.get
    dt_ns_list = dt_ns.tolist()
    vec_list = interval_vec.tolist()
    recon = emap.reconstructed_energy_j
    for i in range(n_intervals):
        const_j = const_list[i]
        energy_j[_CONST_PAIR] = energy_get(_CONST_PAIR, 0.0) + const_j
        recon += const_j
        for charge in plans[vec_list[i]]:
            cursor = charge.cursor
            charge.cursor = cursor + 1
            joules = charge.joules[cursor]
            component = charge.components[cursor]
            kind = charge.kind
            if kind == _ColumnarCharge.KIND_SINGLE:
                start = charge.offsets[cursor]
                stop = charge.offsets[cursor + 1]
                named: dict[str, int] = {}
                covered = 0
                pair_names = charge.pair_names
                pair_overlap = charge.pair_overlap
                for k in range(start, stop):
                    name = pair_names[k]
                    overlap = pair_overlap[k]
                    named[name] = named.get(name, 0) + overlap
                    covered += overlap
                idle_ns = dt_ns_list[i] - covered
                if idle_ns > 0:
                    named[idle_name] = named.get(idle_name, 0) + idle_ns
                    covered += idle_ns
                if not covered:
                    covered = 1
                for activity, share_ns in named.items():
                    key = (component, activity)
                    joule_share = joules * (share_ns / covered)
                    energy_j[key] = energy_get(key, 0.0) + joule_share
                    recon += joule_share
            elif kind == _ColumnarCharge.KIND_MULTI:
                start = charge.offsets[cursor]
                stop = charge.offsets[cursor + 1]
                shares = _multi_shares(
                    zip(charge.pair_sets[start:stop],
                        charge.pair_overlap[start:stop]),
                    dt_ns_list[i], idle_name, name_of)
                for activity, fraction in shares.items():
                    key = (component, activity)
                    joule_share = joules * fraction
                    energy_j[key] = energy_get(key, 0.0) + joule_share
                    recon += joule_share
            else:
                key = (component, UNTRACKED_KEY)
                energy_j[key] = energy_get(key, 0.0) + joules
                recon += joules
    emap.reconstructed_energy_j = recon


ColumnarSource = Union[bytes, bytearray, memoryview, LogColumns,
                       ColumnarTimeline, Iterable]


def columnar_energy_map(
    source: ColumnarSource,
    regression: RegressionResult,
    registry: ActivityRegistry,
    component_names: dict[int, str],
    energy_per_pulse_j: float,
    *,
    fold_proxies: bool = False,
    idle_name: str = "Idle",
    end_time_ns: Optional[int] = None,
    single_res_ids: Optional[Iterable[int]] = None,
    multi_res_ids: Optional[Iterable[int]] = None,
) -> EnergyMap:
    """The columnar backend: the whole log → energy pipeline on column
    arrays.

    ``source`` may be packed log bytes (decoded in one
    ``np.frombuffer`` shot), :class:`~repro.core.logger.LogColumns`, a
    prebuilt :class:`~repro.core.timeline.ColumnarTimeline` (whose own
    ``end_time_ns``/device sets then apply), or an iterable of decoded
    entries (the compat path).

    The expensive per-entry and per-interval work is vectorized —
    decode, interval/segment reconstruction as columns, the
    ``searchsorted`` cover, and the duration × draw energy products —
    while the final fold into the :class:`EnergyMap` walks the
    precomputed columns in exactly the order the streaming accumulator
    charges them: interval order, then state-vector column order, then
    activity-name first-occurrence order.  Same operations on the same
    operands in the same order ⇒ the map is bit-identical to the
    streaming backend's (float bits *and* dict insertion order) — the
    contract the backend-parametrized golden tests enforce.
    """
    if isinstance(source, ColumnarTimeline):
        timeline = source
    else:
        if isinstance(source, (bytes, bytearray, memoryview)):
            columns = decode_columns(bytes(source))
        elif isinstance(source, LogColumns):
            columns = source
        else:
            columns = LogColumns.from_entries(source)
        timeline = ColumnarTimeline(
            columns, end_time_ns=end_time_ns,
            single_res_ids=single_res_ids, multi_res_ids=multi_res_ids,
        )
    emap = EnergyMap()
    n_intervals = len(timeline.interval_t0)
    if not n_intervals:
        raise RegressionError("no power intervals to account")
    if regression is None:
        raise RegressionError(
            "accounting needs a regression once power intervals exist"
        )
    column_power: dict[tuple[int, int], tuple[str, float]] = {}
    for column in regression.columns:
        column_power[(column.res_id, column.value)] = (
            column.name, regression.power_w[column.name])
    # Per-vector charge plans, exactly as the accumulator resolves them:
    # the sorted (res_id, value) pairs that carry a power column, with
    # the display component name.
    vectors = timeline.vectors
    plan_raw: list[list[tuple[int, str, float]]] = []
    for vector in vectors:
        resolved = []
        for res_id, value in vector:
            entry = column_power.get((res_id, value))
            if entry is None:
                continue  # baseline state of the sink: no marginal draw
            column_name, power_w = entry
            resolved.append((
                res_id,
                component_names.get(res_id, column_name),
                power_w,
            ))
        plan_raw.append(resolved)
    interval_vec = timeline.interval_vec
    dt_ns = timeline.interval_t1 - timeline.interval_t0
    # Vectorized energy products: duration and draw as elementwise
    # multiplies — the identical IEEE-754 operations the streaming path
    # performs one interval at a time.
    dt_s = dt_ns * 1e-9
    const_arr = regression.const_power_w * dt_s
    label_name: dict[int, str] = {}

    def _name_of_value(value: int) -> str:
        name = label_name.get(value)
        if name is None:
            name = label_name[value] = registry.name_of(
                ActivityLabel.decode(value))
        return name

    name_of = registry.name_of
    # The fold itself: vectorized when every interval is strictly
    # positive (always, on simulator logs — boundaries only emit at
    # strictly increasing times), scalar reference otherwise (the
    # degenerate share denominators the stream form cannot express).
    fold = _fold_stream if bool((dt_ns > 0).all()) else _fold_reference
    fold(emap, timeline, plan_raw, dt_ns, dt_s, const_arr, label_name,
         _name_of_value, fold_proxies, idle_name, name_of)
    # Time breakdown (Table 3a), in the accumulator's finish order:
    # sorted devices, then per-name totals in first-closed order — the
    # same per-device name→ns accumulation the streaming trackers keep,
    # computed here from the segment columns (int sums, exact).
    # Single devices, fused: one grouping sort over every device's
    # segments (device-major), int span sums (exact, order-free), and
    # a replay in global first-occurrence order — which is exactly
    # device order then per-device name first-occurrence order, the
    # accumulator's finish order.
    dev_comp: list[str] = []
    dev_vals: list[int] = []
    dev_spans: list[np.ndarray] = []
    dev_rows: list[np.ndarray] = []
    for res_id in timeline.single_device_ids():
        single = timeline.single_columns(res_id)
        if single is None or not len(single):
            continue
        d = len(dev_comp)
        dev_comp.append(component_names.get(res_id, f"res{res_id}"))
        if fold_proxies:
            dev_vals.extend(
                b if b is not None else label
                for label, b in zip(single.labels, single.bound))
        else:
            dev_vals.extend(single.labels)
        dev_spans.append(single.t1 - single.t0)
        dev_rows.append(np.full(len(single.labels), d, dtype=np.int64))
    if dev_comp:
        vals_arr = np.asarray(dev_vals, dtype=np.int64)
        spans_arr = np.concatenate(dev_spans)
        rows_arr = np.concatenate(dev_rows)
        uvals, uinv = np.unique(vals_arr, return_inverse=True)
        unames = [_name_of_value(value) for value in uvals.tolist()]
        group_key = rows_arr * len(uvals) + uinv
        order = np.argsort(group_key, kind="stable")
        sorted_key = group_key[order]
        first = np.empty(len(sorted_key), dtype=bool)
        first[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=first[1:])
        group_starts = np.nonzero(first)[0]
        group_first = order[group_starts]
        group_total = np.add.reduceat(spans_arr[order], group_starts)
        group_dev = rows_arr[group_first].tolist()
        group_val = uinv[group_first].tolist()
        totals = group_total.tolist()
        time_ns = emap.time_ns
        for g in np.argsort(group_first, kind="stable").tolist():
            key = (dev_comp[group_dev[g]], unames[group_val[g]])
            time_ns[key] = time_ns.get(key, 0) + totals[g]
    for res_id in timeline.multi_device_ids():
        multi = timeline.multi_columns(res_id)
        if multi is None or not len(multi):
            continue
        component = component_names.get(res_id, f"res{res_id}")
        sets = timeline.label_sets
        spans = (multi.t1 - multi.t0).tolist()
        per_name = {}
        for set_id, span in zip(multi.set_ids, spans):
            labels = sets[set_id]
            if not labels:
                per_name[idle_name] = per_name.get(idle_name, 0) + span
                continue
            split = span // len(labels)
            for label in labels:
                name = name_of(label)
                per_name[name] = per_name.get(name, 0) + split
        for name, total_ns in per_name.items():
            emap.add_time(component, name, total_ns)
    emap.span_ns = int(timeline.interval_t1[n_intervals - 1]) \
        - int(timeline.interval_t0[0])
    emap.metered_energy_j = (
        int(timeline.interval_pulses.sum()) * energy_per_pulse_j
    )
    return emap


def stream_energy_map(
    entries: Iterable,
    regression: RegressionResult,
    registry: ActivityRegistry,
    component_names: dict[int, str],
    energy_per_pulse_j: float,
    *,
    fold_proxies: bool = False,
    idle_name: str = "Idle",
    end_time_ns: Optional[int] = None,
    single_res_ids: Optional[Iterable[int]] = None,
    multi_res_ids: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
) -> EnergyMap:
    """One-pass log → timeline → accounting: feed decoded entries (any
    iterable, e.g. :func:`repro.core.logger.iter_entries`) straight into
    an :class:`EnergyAccumulator` and return the finished map.

    ``backend`` (or ``$REPRO_ANALYSIS_BACKEND``) selects the analysis
    implementation; ``"columnar"`` routes the same inputs through
    :func:`columnar_energy_map`, bit-identical by contract.
    """
    if resolve_analysis_backend(backend) == "columnar":
        return columnar_energy_map(
            entries, regression, registry, component_names,
            energy_per_pulse_j,
            fold_proxies=fold_proxies, idle_name=idle_name,
            end_time_ns=end_time_ns,
            single_res_ids=single_res_ids, multi_res_ids=multi_res_ids,
        )
    accumulator = EnergyAccumulator(
        regression, registry, component_names, energy_per_pulse_j,
        fold_proxies=fold_proxies, idle_name=idle_name,
        single_res_ids=single_res_ids, multi_res_ids=multi_res_ids,
        end_time_ns=end_time_ns,
    )
    return accumulator.feed_all(entries)


def build_energy_map(
    timeline: TimelineBuilder,
    regression: RegressionResult,
    registry: ActivityRegistry,
    component_names: dict[int, str],
    energy_per_pulse_j: float,
    fold_proxies: bool = False,
    idle_name: str = "Idle",
    backend: Optional[str] = None,
) -> EnergyMap:
    """Merge power intervals, regression, and activity segments — the
    batch wrapper: re-feeds the builder's (already sorted) entries
    through the selected backend with the builder's fully-inferred
    device sets, so batch and stream (and columnar) are one
    implementation.

    ``component_names`` maps res_id to the display name of each device.
    Devices present in the power layout but absent from the activity log
    are charged to ``(untracked)``.
    """
    return stream_energy_map(
        timeline.entries,
        regression,
        registry,
        component_names,
        energy_per_pulse_j,
        fold_proxies=fold_proxies,
        idle_name=idle_name,
        end_time_ns=timeline.end_time_ns,
        single_res_ids=timeline.single_device_ids(),
        multi_res_ids=timeline.multi_device_ids(),
        backend=backend,
    )
