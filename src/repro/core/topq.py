"""Quanto-top: always-on, real-time energy profiling (paper §5.3).

"An extension of the framework can include performing the regression
online, and replacing the logging with accumulators for time and energy
usage per activity ... could be used as an always on, network-wide energy
profiler analogous to top."

:class:`QuantoTop` samples the online counters on a periodic timer and
keeps a bounded history of per-interval deltas, so at any moment the node
can report "who spent what, lately" — power per activity over the last
refresh interval, plus cumulative totals — without any log or offline
pass.  The sampler's own CPU time runs under Quanto's activity, so the
profiler appears in its own output, exactly like Unix ``top``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.counters import CounterAccountant
from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.report import format_table
from repro.units import seconds, to_s


@dataclass
class TopSample:
    """One refresh interval's view."""

    t0_ns: int
    t1_ns: int
    #: per-activity (time_ns, energy_j) deltas over the interval
    deltas: dict[ActivityLabel, tuple[int, float]] = field(
        default_factory=dict)

    @property
    def dt_s(self) -> float:
        return (self.t1_ns - self.t0_ns) * 1e-9

    def power_of(self, label: ActivityLabel) -> float:
        """Mean power (W) the activity drew over this interval."""
        _, energy = self.deltas.get(label, (0, 0.0))
        return energy / self.dt_s if self.dt_s > 0 else 0.0


class QuantoTop:
    """Periodic sampler over a node's online counters."""

    def __init__(
        self,
        node,
        refresh_ns: int = seconds(2),
        history: int = 30,
    ) -> None:
        if node.counters is None:
            raise ValueError(
                "QuantoTop needs NodeConfig(enable_counters=True)")
        self.node = node
        self.counters: CounterAccountant = node.counters
        self.refresh_ns = refresh_ns
        self.samples: deque[TopSample] = deque(maxlen=history)
        self._last_totals: dict[ActivityLabel, tuple[int, float]] = {}
        self._last_t_ns = node.sim.now
        self._timer = None

    def start(self) -> None:
        """Begin sampling (call from a CPU context, e.g. the app start)."""
        self._timer = self.node.vtimers.start_periodic(
            self._refresh, self.refresh_ns, name="quanto-top",
            activity=self.node.quanto_label)

    def stop(self) -> None:
        if self._timer is not None:
            self.node.vtimers.stop(self._timer)
            self._timer = None

    def _refresh(self) -> None:
        """Timer callback (runs under Quanto's own activity)."""
        self.node.platform.mcu.consume(120)  # snapshot + delta bookkeeping
        now = self.node.sim.now
        snapshot = self.counters.snapshot()
        sample = TopSample(t0_ns=self._last_t_ns, t1_ns=now)
        for label, slot in snapshot.items():
            prev_time, prev_energy = self._last_totals.get(label, (0, 0.0))
            d_time = slot.time_ns - prev_time
            d_energy = slot.energy_j - prev_energy
            if d_time or d_energy:
                sample.deltas[label] = (d_time, d_energy)
            self._last_totals[label] = (slot.time_ns, slot.energy_j)
        self.samples.append(sample)
        self._last_t_ns = now

    # -- reporting -------------------------------------------------------

    def latest(self) -> Optional[TopSample]:
        return self.samples[-1] if self.samples else None

    def render(self, registry: Optional[ActivityRegistry] = None,
               top_n: int = 10) -> str:
        """The `top`-style screen: last interval's power per activity,
        sorted descending, with cumulative energy alongside."""
        registry = registry or self.node.registry
        sample = self.latest()
        if sample is None:
            return "(no samples yet)"
        rows = []
        ranked = sorted(sample.deltas.items(),
                        key=lambda kv: kv[1][1], reverse=True)
        for label, (d_time, d_energy) in ranked[:top_n]:
            total_time, total_energy = self._last_totals.get(label,
                                                             (0, 0.0))
            rows.append((
                registry.name_of(label),
                f"{d_energy / sample.dt_s * 1e3:.3f}",
                f"{d_time / 1e6:.2f}",
                f"{total_energy * 1e3:.2f}",
                f"{to_s(total_time):.3f}",
            ))
        return format_table(
            ("activity", "P now (mW)", "CPU now (ms)", "E total (mJ)",
             "CPU total (s)"),
            rows,
            title=f"quanto-top, interval {sample.dt_s:.1f} s "
                  f"(refresh #{len(self.samples)})")


class NetworkTop:
    """The network-wide energy `top` of paper §5.3.

    Aggregates the live counters of every node's :class:`QuantoTop` into
    one view: cumulative energy per activity per node, summed across the
    network.  Because activity ids are a network-wide namespace and
    labels travel in packets, a remote activity's spend on a relay shows
    up under the *originating* activity here — live, with no logs."""

    def __init__(self, tops: dict[int, QuantoTop],
                 registry: ActivityRegistry) -> None:
        if not tops:
            raise ValueError("NetworkTop needs at least one node")
        self.tops = dict(tops)
        self.registry = registry

    def totals(self) -> dict[str, dict[int, float]]:
        """activity name -> {node_id: cumulative joules}."""
        out: dict[str, dict[int, float]] = {}
        for node_id, top in self.tops.items():
            for label, slot in top.counters.snapshot().items():
                if slot.energy_j <= 0.0:
                    continue
                name = self.registry.name_of(label)
                out.setdefault(name, {})[node_id] = slot.energy_j
        return out

    def render(self, top_n: int = 12) -> str:
        totals = self.totals()
        ranked = sorted(totals.items(),
                        key=lambda kv: sum(kv[1].values()), reverse=True)
        rows = []
        for name, per_node in ranked[:top_n]:
            rows.append((
                name,
                f"{sum(per_node.values()) * 1e3:.2f}",
                ", ".join(f"n{n}:{e * 1e3:.2f}"
                          for n, e in sorted(per_node.items())),
            ))
        return format_table(
            ("activity", "network E (mJ)", "per node (mJ)"), rows,
            title=f"network quanto-top ({len(self.tops)} nodes)")
