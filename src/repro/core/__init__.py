"""Quanto core: the paper's contribution.

* :mod:`repro.core.labels` — activity labels ⟨origin node : id⟩ with the
  16-bit wire encoding and the name registry.
* :mod:`repro.core.activity` — Single/MultiActivityDevice (the "painting"
  abstraction), proxy activities, and binding.
* :mod:`repro.core.powerstate` — the PowerState / PowerStateTrack
  interfaces drivers use to expose hardware power states.
* :mod:`repro.core.logger` — 12-byte log entries, the fixed RAM buffer,
  and the 102-cycle cost model (paper Table 4).
* :mod:`repro.core.regression` — the weighted least-squares energy
  breakdown (paper Section 2.5).
* :mod:`repro.core.timeline` — offline reconstruction of power-state and
  activity intervals from logs.
* :mod:`repro.core.accounting` — the energy map: time and energy by
  hardware component and by activity (paper Table 3).
* :mod:`repro.core.counters` — the online counter alternative to logging
  (paper Section 5.1).
* :mod:`repro.core.netmerge` — network-wide merge of per-node logs.
* :mod:`repro.core.sched_ext` — energy-aware scheduling built on Quanto
  accounting (paper Section 5.3).
* :mod:`repro.core.report` — ASCII tables, timelines, and plots.
"""

from repro.core.labels import ActivityLabel, ActivityRegistry, IDLE_ID
from repro.core.activity import MultiActivityDevice, SingleActivityDevice
from repro.core.powerstate import PowerStateTracker, PowerStateVar
from repro.core.logger import LogEntry, QuantoLogger, decode_log, iter_entries
from repro.core.regression import RegressionResult, SinkColumn, solve_breakdown
from repro.core.timeline import (
    ActivitySegment,
    MultiActivitySegment,
    PowerInterval,
    TimelineBuilder,
    TimelineStream,
)
from repro.core.accounting import (
    EnergyAccumulator,
    EnergyMap,
    build_energy_map,
    stream_energy_map,
)
from repro.core.counters import CounterAccountant

__all__ = [
    "ActivityLabel",
    "ActivityRegistry",
    "IDLE_ID",
    "SingleActivityDevice",
    "MultiActivityDevice",
    "PowerStateVar",
    "PowerStateTracker",
    "LogEntry",
    "QuantoLogger",
    "decode_log",
    "iter_entries",
    "SinkColumn",
    "RegressionResult",
    "solve_breakdown",
    "TimelineBuilder",
    "TimelineStream",
    "PowerInterval",
    "ActivitySegment",
    "MultiActivitySegment",
    "EnergyMap",
    "EnergyAccumulator",
    "build_energy_map",
    "stream_energy_map",
    "CounterAccountant",
]
