"""Energy-aware scheduling (paper §5.3, "Energy-Aware Scheduling").

"Since Quanto already tracks energy usage by activity, an extension to
the operating system scheduler would enable energy-aware policies like
equal-energy scheduling for threads, rather than equal-time scheduling."

This module implements that extension on top of the online counters: an
:class:`EnergyBudgetScheduler` wraps task posting so that each activity
has an energy budget (absolute, or a fair share), and tasks posted on
behalf of over-budget activities are deferred until the activity's usage
falls back under its allowance (budgets refill per epoch).  The policy
object is pluggable; :class:`EqualEnergyPolicy` gives every registered
activity the same share of the epoch's energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.counters import CounterAccountant
from repro.core.labels import ActivityLabel
from repro.errors import ActivityError


class EqualEnergyPolicy:
    """Every registered activity gets epoch_budget / n_activities."""

    def __init__(self, epoch_budget_j: float):
        if epoch_budget_j <= 0:
            raise ActivityError("epoch budget must be positive")
        self.epoch_budget_j = epoch_budget_j

    def allowance(self, label: ActivityLabel,
                  registered: list[ActivityLabel]) -> float:
        if not registered:
            return self.epoch_budget_j
        return self.epoch_budget_j / len(registered)


class FixedBudgetPolicy:
    """Explicit per-activity budgets; unknown activities are unthrottled."""

    def __init__(self, budgets_j: dict[ActivityLabel, float]):
        self.budgets_j = dict(budgets_j)

    def allowance(self, label: ActivityLabel,
                  registered: list[ActivityLabel]) -> float:
        return self.budgets_j.get(label, float("inf"))


@dataclass
class _Deferred:
    fn: Callable[[], None]
    cycles: int
    label: str
    activity: ActivityLabel


class EnergyBudgetScheduler:
    """Budget-enforcing wrapper around the TinyOS scheduler.

    Post through :meth:`post`; if the posting activity has exhausted its
    allowance for the current epoch, the task is parked and released when
    :meth:`new_epoch` refills budgets.  Deferral statistics make the
    policy's effect measurable (the ablation bench uses them).
    """

    def __init__(
        self,
        scheduler,
        counters: CounterAccountant,
        policy,
    ) -> None:
        self.scheduler = scheduler
        self.counters = counters
        self.policy = policy
        self._registered: list[ActivityLabel] = []
        self._spent_at_epoch: dict[ActivityLabel, float] = {}
        self._deferred: list[_Deferred] = []
        self.deferrals = 0
        self.releases = 0

    def register_activity(self, label: ActivityLabel) -> None:
        """Declare an activity subject to budgeting."""
        if label not in self._registered:
            self._registered.append(label)
            self._spent_at_epoch[label] = self._energy_of(label)

    def _energy_of(self, label: ActivityLabel) -> float:
        snapshot = self.counters.snapshot()
        slot = snapshot.get(label)
        return slot.energy_j if slot is not None else 0.0

    def _over_budget(self, label: ActivityLabel) -> bool:
        if label not in self._registered:
            return False
        allowance = self.policy.allowance(label, self._registered)
        spent = self._energy_of(label) - self._spent_at_epoch[label]
        return spent >= allowance

    def post(
        self,
        fn: Callable[[], None],
        cycles: int = 0,
        label: str = "task",
        activity: Optional[ActivityLabel] = None,
    ) -> bool:
        """Post a task subject to its activity's budget.  Returns True if
        posted now, False if deferred to the next epoch."""
        acting = (
            activity if activity is not None
            else self.scheduler.cpu_activity.get()
        )
        if self._over_budget(acting):
            self._deferred.append(_Deferred(fn, cycles, label, acting))
            self.deferrals += 1
            return False
        self.scheduler.post_function(fn, cycles=cycles, label=label,
                                     activity=acting)
        return True

    def new_epoch(self) -> int:
        """Refill budgets and release deferred tasks (in order).  Returns
        how many tasks were released."""
        for label in self._registered:
            self._spent_at_epoch[label] = self._energy_of(label)
        released = 0
        still_deferred: list[_Deferred] = []
        for item in self._deferred:
            if self._over_budget(item.activity):
                still_deferred.append(item)
                continue
            self.scheduler.post_function(
                item.fn, cycles=item.cycles, label=item.label,
                activity=item.activity)
            released += 1
        self._deferred = still_deferred
        self.releases += released
        return released

    def pending_deferred(self) -> int:
        return len(self._deferred)
