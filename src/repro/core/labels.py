"""Activity labels: ⟨origin node : activity id⟩ pairs.

The paper encodes a label in 16 bits — 8 bits of origin node id and 8 bits
of statically defined activity id — "sufficient for networks of up to 256
nodes with 256 distinct activity ids" (Section 3.3).  We use the same
encoding, both in log entries and in the hidden packet field, so the wire
format constraints are honored.

Well-known ids: 0 is the idle activity; ids 0xC8 and up are reserved for
interrupt proxy activities (statically assigned per interrupt vector, as
the paper does for the non-reentrant MSP430 interrupt model) and for
Quanto's own bookkeeping activity (the continuous-logging drain task,
which accounts for itself like Unix ``top``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ActivityError

#: The idle activity id (activity of a device doing nothing).
IDLE_ID = 0

#: First id reserved for interrupt proxy activities.
PROXY_BASE = 0xC8

#: Statically assigned proxy ids, one per interrupt source (paper §3.3).
PROXY_IDS = {
    "int_TIMERB0": PROXY_BASE + 0,
    "int_TIMERB1": PROXY_BASE + 1,
    "int_TIMERA1": PROXY_BASE + 2,
    "int_UART0RX": PROXY_BASE + 3,
    "int_DACDMA": PROXY_BASE + 4,
    "pxy_RX": PROXY_BASE + 5,
    "int_SENSOR": PROXY_BASE + 6,
    "int_FLASH": PROXY_BASE + 7,
    "int_ADC": PROXY_BASE + 8,
    "int_RADIO": PROXY_BASE + 9,
}

#: Quanto's own activity (drain-mode logging accounts for itself).
QUANTO_ID = PROXY_BASE + 15


@dataclass(frozen=True, order=True)
class ActivityLabel:
    """An activity label: where it started and which activity it is."""

    origin: int
    aid: int

    def __post_init__(self) -> None:
        if not 0 <= self.origin <= 0xFF:
            raise ActivityError(f"origin {self.origin} does not fit in 8 bits")
        if not 0 <= self.aid <= 0xFF:
            raise ActivityError(f"activity id {self.aid} does not fit in 8 bits")
        # Labels live as dict keys and set members on every tracker hot
        # path; precompute the (immutable) hash and wire encoding once.
        object.__setattr__(self, "_hash", hash((self.origin, self.aid)))
        object.__setattr__(self, "_encoded", (self.origin << 8) | self.aid)

    def __hash__(self) -> int:  # same value the generated hash would give
        return self._hash

    def encode(self) -> int:
        """16-bit wire encoding: origin in the high byte."""
        return self._encoded

    @staticmethod
    def decode(value: int) -> "ActivityLabel":
        # Decoded labels are interned: a log replays the same handful of
        # 16-bit encodings thousands of times, and the label is frozen,
        # so one instance per encoding serves every decode.
        label = _DECODED.get(value)
        if label is None:
            if not 0 <= value <= 0xFFFF:
                raise ActivityError(
                    f"encoded label {value} does not fit in 16 bits")
            label = ActivityLabel(origin=value >> 8, aid=value & 0xFF)
            _DECODED[value] = label
        return label

    @property
    def is_idle(self) -> bool:
        return self.aid == IDLE_ID

    @property
    def is_proxy(self) -> bool:
        return PROXY_BASE <= self.aid < PROXY_BASE + 15

    def __str__(self) -> str:
        return f"{self.origin}:{self.aid}"


#: Interned decode results, keyed by the 16-bit wire encoding.
_DECODED: dict[int, "ActivityLabel"] = {}


def idle_label(origin: int = 0) -> ActivityLabel:
    """The idle activity (conventionally rendered as ``Idle``)."""
    return ActivityLabel(origin=origin, aid=IDLE_ID)


class ActivityRegistry:
    """Maps activity ids to programmer-facing names.

    Ids are statically defined (as in the paper); the registry exists so
    reports can render ``1:Red`` or ``4:BounceApp`` instead of raw pairs.
    One registry is shared across a network — activity ids are a global
    namespace in the paper's deployments.
    """

    def __init__(self) -> None:
        self._names: dict[int, str] = {IDLE_ID: "Idle", QUANTO_ID: "Quanto"}
        for name, aid in PROXY_IDS.items():
            self._names[aid] = name
        self._next_id = 1
        # Rendered-name cache: name_of() runs for every closed segment
        # during accounting; the format work is done once per label.
        # Invalidated on register() (a late registration can upgrade an
        # ``actN`` fallback to a real name).
        self._rendered: dict[ActivityLabel, str] = {}
        # Reverse index for register()'s idempotent path: tasks and
        # timers re-register their names constantly, and a linear scan
        # per post shows up in profiles.
        self._by_name: dict[str, int] = {
            name: aid for aid, name in self._names.items()
        }

    def register(self, name: str, aid: int | None = None) -> int:
        """Register a named activity; returns its id.  Re-registering the
        same name returns the existing id."""
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        if aid is None:
            aid = self._next_id
            while aid in self._names:
                aid += 1
        if aid in self._names:
            raise ActivityError(
                f"id {aid} already registered as {self._names[aid]!r}"
            )
        if not 0 < aid < PROXY_BASE:
            raise ActivityError(
                f"application activity id {aid} must be in 1..{PROXY_BASE - 1}"
            )
        self._names[aid] = name
        self._by_name[name] = aid
        self._next_id = max(self._next_id, aid + 1)
        self._rendered.clear()
        return aid

    def label(self, origin: int, name: str) -> ActivityLabel:
        """Look up (registering if needed) a label by name.

        Returns the *interned* instance for the encoding (the decode
        cache), so repeated lookups of one activity hand back one
        object — the device trackers' identity fast path then skips the
        field-compare on every idempotent repaint.
        """
        aid = self.register(name)
        if not 0 <= origin <= 0xFF:
            raise ActivityError(f"origin {origin} does not fit in 8 bits")
        return ActivityLabel.decode((origin << 8) | aid)

    def name_of(self, label: ActivityLabel) -> str:
        """Render a label like the paper's figures: ``origin:Name``."""
        rendered = self._rendered.get(label)
        if rendered is None:
            name = self._names.get(label.aid, f"act{label.aid}")
            rendered = f"{label.origin}:{name}"
            self._rendered[label] = rendered
        return rendered

    def known_ids(self) -> dict[int, str]:
        return dict(self._names)

    # -- warm-start snapshot/restore --------------------------------------

    def snapshot_state(self) -> tuple[dict[int, str], int]:
        """Capture the registration state (for the warm-start protocol:
        a node snapshots its registry right after construction)."""
        return dict(self._names), self._next_id

    def restore_state(self, state: tuple[dict[int, str], int]) -> None:
        """Drop registrations made since :meth:`snapshot_state`, so a
        reset run re-registers application activities from the same id
        space the cold run saw (same names → same ids)."""
        names, next_id = state
        self._names = dict(names)
        self._by_name = {name: aid for aid, name in self._names.items()}
        self._next_id = next_id
        self._rendered.clear()
