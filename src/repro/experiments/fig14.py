"""Figure 14: detail of a normal LPL wake-up and a false positive.

From the channel-17 run: a normal wake-up is a ~11 ms blip of radio power
under the VTimer activity; a false positive keeps the radio on for the
100 ms detect timeout under the (never-bound) ``pxy_RX`` proxy activity.
The paper also uses Quanto to *estimate* the radio's listen-mode draw
from this workload — 18.46 mA / 61.8 mW on its 3.35 V mote — which we
reproduce by running the regression on the LPL log itself.
"""

from __future__ import annotations

from repro.core.report import render_kv, render_lanes, render_xy
from repro.experiments.common import ExperimentResult, lanes_for
from repro.experiments.fig13 import LPL_VOLTAGE, run_channel
from repro.tos.node import RES_CPU, RES_RADIO
from repro.units import ms, to_ms, to_s

LANE_IDS = {"CPU": RES_CPU, "Radio": RES_RADIO}


def _wake_windows(node, intervals):
    """Classify radio-on spans from the power-state intervals: (start,
    end, was_false_positive)."""
    spans = []
    current_start = None
    for interval in intervals:
        radio_on = interval.state_of(RES_RADIO) not in (0, None)
        if radio_on and current_start is None:
            current_start = interval.t0_ns
        elif not radio_on and current_start is not None:
            spans.append((current_start, interval.t0_ns))
            current_start = None
    return [
        (t0, t1, (t1 - t0) > ms(50)) for t0, t1 in spans
    ]


def run(seed: int = 0) -> ExperimentResult:
    result = run_channel(17, seed)
    node = result["node"]
    timeline = node.timeline()
    intervals = timeline.power_intervals()
    quantum = node.platform.icount.nominal_energy_per_pulse_j

    spans = _wake_windows(node, intervals)
    normal = next((s for s in spans if not s[2]), None)
    false_positive = next((s for s in spans if s[2]), None)

    parts = []
    series = {}
    for name, span in (("normal wake-up", normal),
                       ("false positive", false_positive)):
        if span is None:
            continue
        t0 = span[0] - ms(5)
        t1 = span[1] + ms(10)
        parts.append(render_lanes(
            lanes_for(node, timeline, LANE_IDS, t0, t1), t0, t1,
            width=96, title=f"{name}: radio on "
                            f"{to_ms(span[1] - span[0]):.1f} ms"))
        xs, ys = [], []
        for interval in intervals:
            lo = max(interval.t0_ns, t0)
            hi = min(interval.t1_ns, t1)
            if hi <= lo:
                continue
            power_mw = (interval.energy_j(quantum)
                        / max(interval.dt_ns * 1e-9, 1e-12) * 1e3)
            xs.extend([to_ms(lo - t0), to_ms(hi - t0)])
            ys.extend([power_mw, power_mw])
        series[name] = (xs, ys)
    parts.append(render_xy(series, width=92, height=14,
                           x_label="time (ms)", y_label="P (mW)",
                           title="metered power around the two wake-ups"))

    # Estimate the listen draw from the log (the paper's 18.46 mA).
    regression = node.regression(timeline)
    rx_ma = (regression.current_ma("Radio.RX")
             if "Radio.RX" in regression.power_w else 0.0)
    rx_mw = rx_ma * LPL_VOLTAGE
    parts.append(render_kv("radio listen mode, estimated by Quanto", [
        ("current", f"{rx_ma:.2f} mA"),
        ("power", f"{rx_mw:.1f} mW (at {LPL_VOLTAGE} V)"),
    ]))

    fp_duration_ms = (
        to_ms(false_positive[1] - false_positive[0])
        if false_positive else 0.0
    )
    return ExperimentResult(
        exp_id="fig14",
        title="Normal wake-up vs false-positive detection (LPL, ch 17)",
        text="\n\n".join(parts),
        data={
            "wake_spans": len(spans),
            "normal_ms": to_ms(normal[1] - normal[0]) if normal else 0.0,
            "false_positive_ms": fp_duration_ms,
            "rx_current_ma": rx_ma,
            "rx_power_mw": rx_mw,
        },
        comparisons=[
            ("false positive keeps radio on (ms)", 100.0, fp_duration_ms),
            ("radio listen current (mA)", 18.46, rx_ma),
            ("radio listen power (mW)", 61.8, rx_mw),
        ],
    )
