"""Ablation: the regression weighting scheme.

Section 2.5 weights each grouped state by ``w = sqrt(E * t)`` — confidence
grows with both measured energy and time, and the square root accounts
for their linear dependence at constant power.  This ablation re-solves
the Blink breakdown under four schemes (sqrt(Et), unweighted, t, E) and
scores each against the hidden ground-truth draws, quantifying why the
paper's choice is the right one (unweighted regressions let the noisy,
short-lived states drag the estimates around).
"""

from __future__ import annotations

from repro.core.regression import WEIGHTINGS, solve_breakdown
from repro.core.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    run_blink,
    truth_baseline_ma,
    truth_current_ma,
)

#: (column name, (sink, state)) pairs scored against ground truth.
SCORED = [
    ("LED0", ("LED0", "ON")),
    ("LED1", ("LED1", "ON")),
    ("LED2", ("LED2", "ON")),
    ("CPU", ("CPU", "ACTIVE")),
]


def run(seed: int = 0) -> ExperimentResult:
    node, app, sim = run_blink(seed)
    timeline = node.timeline()
    intervals = timeline.power_intervals()
    layout = node.layout()
    quantum = node.platform.icount.nominal_energy_per_pulse_j
    voltage = node.platform.rail.voltage

    rows = []
    errors = {}
    for weighting in WEIGHTINGS:
        result = solve_breakdown(intervals, layout, quantum, voltage,
                                 weighting=weighting)
        per_column = []
        row = [weighting]
        for name, (sink, state) in SCORED:
            truth = truth_current_ma(node, sink, state)
            est = (result.current_ma(name)
                   if name in result.power_w else float("nan"))
            err = abs(est - truth) / truth * 100 if truth else 0.0
            per_column.append(err)
            row.append(f"{est:.3f}")
        truth_const = truth_baseline_ma(node)
        const_err = abs(result.const_current_ma - truth_const) / truth_const
        row.append(f"{result.const_current_ma:.3f}")
        mean_err = sum(per_column) / len(per_column)
        row.append(f"{mean_err:.2f} %")
        row.append(f"{result.relative_error * 100:.2f} %")
        errors[weighting] = mean_err
        rows.append(tuple(row))

    table = format_table(
        ("weighting", "LED0 mA", "LED1 mA", "LED2 mA", "CPU mA",
         "Const mA", "mean |err| vs truth", "fit rel err"),
        rows, title="Blink breakdown under different weightings "
                    f"(truth: LED0 {truth_current_ma(node, 'LED0', 'ON'):.2f}, "
                    f"LED1 {truth_current_ma(node, 'LED1', 'ON'):.2f}, "
                    f"LED2 {truth_current_ma(node, 'LED2', 'ON'):.2f}, "
                    f"CPU {truth_current_ma(node, 'CPU', 'ACTIVE'):.2f} mA)")

    best = min(errors, key=errors.get)
    return ExperimentResult(
        exp_id="ablation_weighting",
        title="Regression weighting ablation (paper uses sqrt(E*t))",
        text="\n\n".join([table, f"lowest mean error: {best}"]),
        data={"errors": errors, "best": best},
        comparisons=[],
    )
