"""Table 4: the costs of Quanto's logging.

The paper's cost model: 12-byte entries, an 800-sample RAM buffer, and
102 cycles per synchronous record at 1 MHz (41 call overhead + 19 timer
read + 24 iCount read + 18 other).  Section 4.4 then measures Blink:
597 log messages over 48 s, 60.71 ms of logging — 71.05 % of the active
CPU time but only 0.12 % of total CPU time — costing 0.41 mJ (0.08 % of
the total energy).

We print the cost model (it is the implemented model, so these equalities
are exact by construction) and then *measure* the same Blink-run numbers
in simulation, where the 102-cycle charges actually occupy the CPU.
"""

from __future__ import annotations

from repro.core.logger import (
    COST_CALL_OVERHEAD,
    COST_OTHER,
    COST_READ_ICOUNT,
    COST_READ_TIMER,
    COST_TOTAL,
    DEFAULT_BUFFER_ENTRIES,
    ENTRY_SIZE,
)
from repro.core.report import format_table, render_kv
from repro.experiments.common import ExperimentResult, run_blink
from repro.units import to_mj, to_s


def run(seed: int = 0) -> ExperimentResult:
    cost_table = format_table(
        ("item", "value"),
        [
            ("Buffer size", f"{DEFAULT_BUFFER_ENTRIES} samples"),
            ("Sample size", f"{ENTRY_SIZE} bytes"),
            ("Cost of logging", f"{COST_TOTAL} cycles @ 1 MHz"),
            ("  Call overhead", f"{COST_CALL_OVERHEAD} cycles"),
            ("  Read timer", f"{COST_READ_TIMER} cycles"),
            ("  Read iCount", f"{COST_READ_ICOUNT} cycles"),
            ("  Others", f"{COST_OTHER} cycles"),
        ],
        title="the cost model (as implemented)")

    node, app, sim = run_blink(seed)
    records = node.logger.records_written
    logging_ns = records * COST_TOTAL * node.platform.mcu.cycle_ns
    active_ns = node.platform.mcu.total_active_time_ns
    total_ns = sim.now

    regression = node.regression()
    cpu_power_w = regression.power_w.get("CPU", 0.0)
    logging_energy_j = (
        (cpu_power_w + regression.const_power_w) * logging_ns * 1e-9)
    total_energy_j = node.platform.rail.energy()

    measured = render_kv("measured on the 48 s Blink run", [
        ("log messages", records),
        ("time spent logging", f"{logging_ns / 1e6:.2f} ms"),
        ("share of active CPU time",
         f"{100 * logging_ns / active_ns:.2f} %"),
        ("share of total CPU time",
         f"{100 * logging_ns / total_ns:.3f} %"),
        ("energy spent logging (CPU + const)",
         f"{to_mj(logging_energy_j):.2f} mJ"),
        ("share of total energy",
         f"{100 * logging_energy_j / total_energy_j:.3f} %"),
        ("RAM for the log", f"{records * ENTRY_SIZE} bytes"
                            f" ({records} entries)"),
    ])

    return ExperimentResult(
        exp_id="table4",
        title="Costs of logging to RAM",
        text="\n\n".join([cost_table, measured]),
        data={
            "records": records,
            "logging_ms": logging_ns / 1e6,
            "active_share_pct": 100 * logging_ns / active_ns,
            "total_share_pct": 100 * logging_ns / total_ns,
            "logging_energy_mj": to_mj(logging_energy_j),
            "energy_share_pct": 100 * logging_energy_j / total_energy_j,
        },
        comparisons=[
            ("log cost (cycles)", 102, COST_TOTAL),
            ("entry size (bytes)", 12, ENTRY_SIZE),
            ("Blink log messages / 48 s", 597, records),
            ("time logging (ms)", 60.71, logging_ns / 1e6),
            ("share of active CPU (%)", 71.05,
             100 * logging_ns / active_ns),
            ("share of total CPU (%)", 0.12, 100 * logging_ns / total_ns),
            ("logging energy (mJ)", 0.41, to_mj(logging_energy_j)),
            ("share of total energy (%)", 0.08,
             100 * logging_energy_j / total_energy_j),
        ],
    )
