"""Extension: energy per packet across the radio's TX power settings.

Table 1 lists eight transmit-power states (0 dBm down to -25 dBm, 17.4
to 8.5 mA nominal).  This sweep transmits a burst of packets at each
setting and has Quanto recover the TX-path draw from the aggregate meter
— exercising the multi-level power-state machinery and showing the
energy/range trade-off a deployment would tune.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.experiments.common import ExperimentResult
from repro.hw.radio import TX_POWER_STATES
from repro.tos.network import Network
from repro.tos.node import NodeConfig, RES_RADIO
from repro.units import ms, seconds, to_mj

PACKETS_PER_LEVEL = 20


def _run_level(dbm: int, seed: int) -> dict:
    network = Network(seed=seed)
    node = network.add_node(NodeConfig(node_id=1, mac="csma"))
    sent = []

    def app(n) -> None:
        n.radio_driver.set_tx_power(dbm)
        n.set_cpu_activity("TxSweep")

        def send_next() -> None:
            if len(sent) >= PACKETS_PER_LEVEL:
                return
            n.set_cpu_activity("TxSweep")
            n.am.send(0xFFFF, 0x51, b"\x00" * 20,
                      on_send_done=lambda f: (sent.append(f), send_next()))

        n.mac.start(send_next)

    node.boot(app)
    network.run(seconds(10))

    timeline = node.timeline()
    regression = node.regression(timeline)
    tx_ma = (regression.current_ma("Radio.TX")
             if "Radio.TX" in regression.power_w else float("nan"))
    tx_time_ns = sum(
        iv.dt_ns for iv in timeline.power_intervals()
        if dict(iv.states).get(RES_RADIO) == 4)
    tx_energy = (regression.power_w.get("Radio.TX", 0.0) * tx_time_ns
                 * 1e-9)
    # The Radio.TX column prices the whole chip in TX mode: PA plus the
    # control path and regulator that are also on — compare like for like.
    profile = node.platform.profile
    actual_ma = (
        profile.current("RadioTxPath", TX_POWER_STATES[dbm])
        + profile.current("RadioControlPath", "IDLE")
        + profile.current("RadioRegulator", "ON")
    ) * 1e3
    return {
        "dbm": dbm,
        "packets": len(sent),
        "tx_ma": tx_ma,
        "actual_ma": actual_ma,
        "tx_energy_mj": to_mj(tx_energy),
        "energy_per_packet_uj": (tx_energy / len(sent) * 1e6
                                 if sent else 0.0),
    }


def run(seed: int = 0) -> ExperimentResult:
    levels = sorted(TX_POWER_STATES, reverse=True)  # 0 .. -25 dBm
    results = [_run_level(dbm, seed) for dbm in levels]
    rows = [
        (f"{r['dbm']:+d} dBm", str(r["packets"]),
         f"{r['actual_ma']:.2f}", f"{r['tx_ma']:.2f}",
         f"{r['energy_per_packet_uj']:.1f}")
        for r in results
    ]
    table = format_table(
        ("setting", "packets", "actual TX (mA)", "Quanto TX (mA)",
         "E/packet (uJ)"),
        rows, title=f"{PACKETS_PER_LEVEL}-packet burst per PA setting")

    # Monotonicity of the recovered draw across settings.
    recovered = [r["tx_ma"] for r in results]
    monotone_pairs = sum(
        1 for a, b in zip(recovered, recovered[1:]) if a > b)
    mean_err = sum(
        abs(r["tx_ma"] - r["actual_ma"]) / r["actual_ma"]
        for r in results) / len(results) * 100

    return ExperimentResult(
        exp_id="ext_txpower",
        title="TX power sweep: recovered draw per PA setting",
        text="\n\n".join([
            table,
            f"recovered draws decrease monotonically across "
            f"{monotone_pairs}/{len(recovered) - 1} adjacent settings; "
            f"mean |error| vs actual {mean_err:.1f} %",
        ]),
        data={
            "results": results,
            "monotone_pairs": monotone_pairs,
            "mean_err_pct": mean_err,
        },
        comparisons=[
            ("highest-setting chip draw (mA, actual)",
             results[0]["actual_ma"], results[0]["tx_ma"]),
            ("lowest-setting chip draw (mA, actual)",
             results[-1]["actual_ma"], results[-1]["tx_ma"]),
        ],
    )
