"""Ablation: logging to RAM vs continuous drain vs online counters.

Section 5.1's "logging vs counting" trade-off, measured: the same Blink
workload under

* **ram** — stop-and-dump logging (synchronous cost only);
* **drain** — continuous logging with a low-priority drain task shipping
  entries off-node, accounting its own CPU under Quanto's activity (the
  paper saw 4–15 % of CPU for this mode on its workloads);
* **counters** — no log at all: fixed-memory per-activity accumulators
  updated online.

Reported: record counts, CPU overhead, memory, and whether each mode's
per-activity energy answer agrees.
"""

from __future__ import annotations

from repro.core.logger import COST_TOTAL, ENTRY_SIZE
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, run_blink
from repro.units import to_mj


def run(seed: int = 0) -> ExperimentResult:
    # RAM mode (the default everywhere else).
    node_ram, _, sim_ram = run_blink(seed, logger_mode="ram")
    # Drain mode.
    node_drain, _, sim_drain = run_blink(seed, logger_mode="drain")
    # Counter mode (counters on top of RAM logging; we report the
    # counters' own costs, which are independent of the log).
    node_cnt, _, sim_cnt = run_blink(seed, enable_counters=True)

    rows = []
    ram_records = node_ram.logger.records_written
    rows.append((
        "ram", str(ram_records),
        f"{ram_records * COST_TOTAL / 1e3:.1f} ms",
        "0", f"{ram_records * ENTRY_SIZE} B (grows)",
    ))
    drain_records = node_drain.logger.records_written
    drain_runs = node_drain.logger.drain_task_runs
    rows.append((
        "drain", str(drain_records),
        f"{drain_records * COST_TOTAL / 1e3:.1f} ms",
        str(drain_runs),
        f"{node_drain.logger.ram_bytes_used()} B resident",
    ))
    counters = node_cnt.counters
    assert counters is not None
    snapshot = counters.snapshot()
    rows.append((
        "counters", "0 (no log)", "0 ms", "0",
        f"{counters.memory_bytes()} B fixed",
    ))
    modes = format_table(
        ("mode", "records", "sync CPU cost", "drain tasks", "memory"),
        rows, title="logging modes on the 48 s Blink run")

    # Do the answers agree?  Offline map vs online counters, top activity.
    emap = node_cnt.energy_map()
    offline = {
        name: to_mj(e) for name, e in emap.energy_by_activity().items()
    }
    online = {
        node_cnt.registry.name_of(label): to_mj(slot.energy_j)
        for label, slot in snapshot.items()
    }
    compare_rows = []
    for name in sorted(set(offline) | set(online)):
        compare_rows.append((
            name,
            f"{offline.get(name, 0.0):.2f}",
            f"{online.get(name, 0.0):.2f}",
        ))
    agreement = format_table(
        ("activity", "offline map (mJ)", "online counters (mJ)"),
        compare_rows,
        title="per-activity energy: offline vs online "
              "(counters charge ALL node energy to the CPU's activity, so "
              "LED draw lands on the activity holding the CPU — coarser, "
              "by design)")

    return ExperimentResult(
        exp_id="ablation_logging",
        title="Logging vs counting (Section 5.1)",
        text="\n\n".join([modes, agreement]),
        data={
            "ram_records": ram_records,
            "drain_records": drain_records,
            "drain_task_runs": drain_runs,
            "counter_memory_bytes": counters.memory_bytes(),
            "offline_mj": offline,
            "online_mj": online,
        },
        comparisons=[],
    )
