"""Table 3: where the joules have gone in Blink.

Four sub-tables from one 48-second run:

(a) time each hardware component spent on behalf of each activity;
(b) the regression result (per-component current and power);
(c) total energy per hardware component;
(d) total energy per activity.

The paper's numbers: LED0/1/2 on 24 s each; CPU active 0.178 % of the
time; LED0 180.71 mJ, LED1 161.06 mJ, LED2 59.84 mJ, CPU 0.37 mJ,
Const. 119.26 mJ, total 521.23 mJ; per-activity Red 180.78, Green 161.10,
Blue 59.86, VTimer 0.19, int_Timer 0.04 mJ.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, run_blink
from repro.units import seconds, to_mj, to_s

PAPER_ENERGY_BY_HW = {
    "LED0": 180.71, "LED1": 161.06, "LED2": 59.84, "CPU": 0.37,
    "Const.": 119.26,
}
PAPER_ENERGY_BY_ACT = {
    "1:Red": 180.78, "1:Green": 161.10, "1:Blue": 59.86,
    "1:VTimer": 0.19, "1:int_TIMERB0": 0.04, "Const.": 119.26,
}
PAPER_REGRESSION_MA = {
    "LED0": 2.51, "LED1": 2.24, "LED2": 0.83, "CPU": 1.43, "Const.": 0.83,
}


def run(
    seed: int = 0,
    duration_ns: int = seconds(48),
    device_variation: float = 0.0,
    icount_jitter_pulses: float = 0.0,
    icount_gain_error: float = 0.0,
) -> ExperimentResult:
    """Sweepable knobs: the run length plus the paper's noise sources
    (per-device draw variation, iCount read jitter, meter gain error).
    With the defaults the run is noise-free and seed-independent; turn
    any of them on and a multi-seed sweep measures how the regression's
    coefficients and the energy breakdown spread across a fleet."""
    node_kwargs = {}
    if device_variation or icount_jitter_pulses or icount_gain_error:
        from repro.hw.platform import PlatformConfig

        node_kwargs["platform"] = PlatformConfig(
            device_variation=device_variation,
            icount_jitter_pulses=icount_jitter_pulses,
            icount_gain_error=icount_gain_error,
        )
    node, app, sim = run_blink(seed, duration_ns=duration_ns, **node_kwargs)
    # One shared reconstruction for the regression and the map (on the
    # columnar default this is a single vectorized decode, no per-entry
    # objects) — the analysis half of a sweep point's cost.
    regression, emap = node.breakdown()
    span_s = to_s(sim.now)

    # (a) time breakdown: component x activity.
    components = ("LED0", "LED1", "LED2", "CPU")
    activities = sorted(emap.activities())
    rows_a = []
    for activity in activities:
        row = [activity]
        for component in components:
            dt = emap.time_ns.get((component, activity), 0)
            row.append(f"{to_s(dt):.4f}" if dt else "0")
        rows_a.append(tuple(row))
    totals = ["Total"]
    for component in components:
        total = sum(dt for (c, _), dt in emap.time_ns.items()
                    if c == component)
        totals.append(f"{to_s(total):.4f}")
    rows_a.append(tuple(totals))
    part_a = format_table(("Activity", *components), rows_a,
                          title="(a) time breakdown (s)")

    # (b) regression.
    rows_b = [
        (col.name, f"{regression.current_ma(col.name):.2f}",
         f"{regression.power_w[col.name] * 1e3:.2f}")
        for col in regression.columns
    ]
    rows_b.append(("Const.", f"{regression.const_current_ma:.2f}",
                   f"{regression.const_power_w * 1e3:.2f}"))
    part_b = format_table(("component", "Iavg (mA)", "Pavg (mW)"), rows_b,
                          title="(b) regression result")

    # (c) energy per hardware component.
    by_hw = emap.energy_by_component()
    rows_c = [(name, f"{to_mj(e):.2f}") for name, e in sorted(by_hw.items())]
    rows_c.append(("Total", f"{to_mj(emap.total_energy_j()):.2f}"))
    part_c = format_table(("component", "E (mJ)"), rows_c,
                          title="(c) energy per hardware component")

    # (d) energy per activity.
    by_act = emap.energy_by_activity()
    rows_d = [(name, f"{to_mj(e):.2f}") for name, e in sorted(by_act.items())]
    rows_d.append(("Total", f"{to_mj(emap.total_energy_j()):.2f}"))
    part_d = format_table(("activity", "E (mJ)"), rows_d,
                          title="(d) energy per activity")

    cpu_times = emap.time_by_activity("CPU")
    idle_name = node.registry.name_of(node.idle)
    cpu_active_ns = sum(dt for act, dt in cpu_times.items()
                        if act != idle_name)
    cpu_active_pct = 100.0 * cpu_active_ns / sim.now

    text = "\n\n".join([part_a, part_b, part_c, part_d,
                        f"CPU active: {cpu_active_pct:.3f} % of "
                        f"{span_s:.0f} s"])

    comparisons = [
        ("total energy (mJ)", 521.23, to_mj(emap.total_energy_j())),
        ("CPU active (%)", 0.178, cpu_active_pct),
    ]
    for name, paper in PAPER_REGRESSION_MA.items():
        if name == "Const.":
            comparisons.append((f"regression {name} (mA)", paper,
                                regression.const_current_ma))
        elif name in regression.power_w:
            comparisons.append((f"regression {name} (mA)", paper,
                                regression.current_ma(name)))
    for name, paper in PAPER_ENERGY_BY_HW.items():
        measured = to_mj(by_hw.get(name, 0.0))
        comparisons.append((f"E[{name}] (mJ)", paper, measured))
    for name, paper in PAPER_ENERGY_BY_ACT.items():
        measured = to_mj(by_act.get(name, 0.0))
        comparisons.append((f"E[{name}] (mJ)", paper, measured))

    return ExperimentResult(
        exp_id="table3",
        title="Where the joules have gone in Blink",
        text=text,
        data={
            "energy_by_hw_mj": {k: to_mj(v) for k, v in by_hw.items()},
            "energy_by_activity_mj": {k: to_mj(v) for k, v in by_act.items()},
            # The full (component, activity) matrix, keyed "comp/act" so
            # sweep aggregation can report mean/stddev per cell.
            "energy_by_pair_mj": {
                f"{component}/{activity}": to_mj(e)
                for (component, activity), e in sorted(emap.energy_j.items())
            },
            "regression_ma": {
                **{col.name: regression.current_ma(col.name)
                   for col in regression.columns},
                "Const.": regression.const_current_ma,
            },
            "cpu_active_pct": cpu_active_pct,
            "accounting_error": emap.accounting_error,
        },
        comparisons=comparisons,
    )
