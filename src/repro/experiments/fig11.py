"""Figure 11: activity and power profiles of a 48-second Blink run.

Three views from the same Quanto log:

(a) the full run — per-component activity lanes plus the aggregate power
    the meter saw;
(b) a ~4 ms zoom on the all-on -> all-off transition around t = 8 s,
    showing the interrupt proxy, VTimer, and the three LED activities in
    succession on the CPU;
(c) the stacked power reconstruction: per-component power from the
    regression replayed over the power-state intervals, checked against
    the metered envelope (the paper reports a 0.004 % gap).
"""

from __future__ import annotations

from repro.core.logger import TYPE_POWERSTATE
from repro.core.report import format_table, render_lanes, render_xy
from repro.experiments.common import ExperimentResult, lanes_for, run_blink
from repro.tos.node import RES_CPU, RES_LED0, RES_LED1, RES_LED2
from repro.units import ms, seconds, to_mj, to_ms, to_s

LANE_IDS = {"CPU": RES_CPU, "Led0": RES_LED0, "Led1": RES_LED1,
            "Led2": RES_LED2}


def run(seed: int = 0) -> ExperimentResult:
    node, app, sim = run_blink(seed)
    timeline = node.timeline()
    intervals = timeline.power_intervals()
    quantum = node.platform.icount.nominal_energy_per_pulse_j

    # (a) full-run lanes + metered power trace.
    lanes = lanes_for(node, timeline, LANE_IDS, 0, sim.now)
    part_a = render_lanes(lanes, 0, sim.now, width=96,
                          title="(a) activities per hardware component, "
                                "0..48 s")
    power_x = [to_s(iv.t0_ns) for iv in intervals if iv.dt_ns > ms(50)]
    power_y = [
        iv.energy_j(quantum) / (iv.dt_ns * 1e-9) * 1e3
        for iv in intervals if iv.dt_ns > ms(50)
    ]
    power_plot = render_xy({"P (mW)": (power_x, power_y)}, width=96,
                           height=10, x_label="time (s)", y_label="P (mW)",
                           title="aggregate power (metered)")

    # (b) zoom on the transition at ~8 s (all three LEDs toggle off).
    t_center = None
    toggles = 0
    for entry in node.entries():
        if entry.type == TYPE_POWERSTATE and RES_LED0 <= entry.res_id <= RES_LED2:
            if abs(entry.time_ns - seconds(8)) < ms(30):
                t_center = entry.time_ns
                break
    if t_center is None:
        t_center = seconds(8)
    window = (t_center - ms(1.5), t_center + ms(3))
    zoom_lanes = lanes_for(node, timeline, LANE_IDS, *window,
                           hide_idle=True)
    part_b = render_lanes(zoom_lanes, *window, width=96,
                          title=f"(b) transition detail, "
                                f"{to_ms(window[0]):.1f}.."
                                f"{to_ms(window[1]):.1f} ms")

    # (c) stacked reconstruction vs the meter.
    regression = node.regression(timeline)
    reconstructed = sum(
        regression.power_of_states(iv.states) * iv.dt_ns * 1e-9
        for iv in intervals
    )
    metered = sum(iv.pulses for iv in intervals) * quantum
    gap = abs(reconstructed - metered) / metered if metered else 0.0
    rows = [
        (col.name, f"{regression.power_w[col.name] * 1e3:.2f}")
        for col in regression.columns
    ]
    rows.append(("Const.", f"{regression.const_power_w * 1e3:.2f}"))
    part_c = "\n".join([
        format_table(("component", "P (mW)"), rows,
                     title="(c) per-component power from the regression"),
        f"metered energy {to_mj(metered):.2f} mJ, reconstructed "
        f"{to_mj(reconstructed):.2f} mJ, gap {gap * 100:.4f} %",
    ])

    text = "\n\n".join([part_a, power_plot, part_b, part_c])
    return ExperimentResult(
        exp_id="fig11",
        title="Blink activity and power profile (48 s)",
        text=text,
        data={
            "metered_mj": to_mj(metered),
            "reconstructed_mj": to_mj(reconstructed),
            "reconstruction_gap": gap,
            "log_entries": node.logger.records_written,
        },
        comparisons=[
            ("reconstruction gap (%)", 0.004, gap * 100),
            ("log entries in 48 s", 597, node.logger.records_written),
        ],
    )
