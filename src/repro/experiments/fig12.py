"""Figure 12: cross-node activity tracking in Bounce.

Two nodes (ids 1 and 4) ping-pong two packets.  The checks that matter:

* all of node 1's work on node 4's packet — reception, the indicator LED,
  the bounce-back transmission — is charged to ``4:BounceApp``;
* the reception detail shows the SFD interrupt, the per-pair SPI drain
  under the ``pxy_RX`` proxy with ``int_UART0RX`` interleaved, then the
  bind to the remote activity;
* the transmission detail shows the SPI load, backoff (VTimer), and TX
  under the packet's original activity.
"""

from __future__ import annotations

from repro.core.logger import TYPE_ACT_BIND
from repro.core.report import format_table, render_lanes
from repro.experiments.common import ExperimentResult, lanes_for
from repro.tos.mac import CsmaMac
from repro.tos.network import Network
from repro.tos.node import (
    NodeConfig,
    RES_CPU,
    RES_LED1,
    RES_LED2,
    RES_RADIO,
)
from repro.units import ms, seconds, to_mj, to_ms

LANE_IDS = {"cpu": RES_CPU, "cc2420": RES_RADIO, "led1": RES_LED1,
            "led2": RES_LED2}

#: Lower bounds validated before any sweep worker forks.
PARAM_MINIMUMS = {"nodes": 2}


def run(seed: int = 0, duration_ns: int = seconds(4),
        nodes: int = 2) -> ExperimentResult:
    from repro.apps.bounce import BounceApp
    from repro.core.netmerge import NetworkMerger
    from repro.experiments.common import network_sweep_data

    if nodes < 2:
        raise ValueError("Bounce needs at least 2 nodes")
    # The paper's pair is nodes 1 and 4; larger deployments extend to a
    # ring 1 -> 2 -> ... -> n -> 1, each node bouncing with its
    # successor, so the cross-node attribution scales with node count.
    node_ids = [1, 4] if nodes == 2 else list(range(1, nodes + 1))
    network = Network(seed=seed)
    for node_id in node_ids:
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
    # Staggered originations (as in the real app): simultaneous first
    # sends would collide inside the TX-calibration blind window.
    apps = {}
    for index, node_id in enumerate(node_ids):
        peer = node_ids[(index + 1) % len(node_ids)]
        apps[node_id] = BounceApp(
            peer_id=peer, originate_delay_ns=ms(250 + 400 * index))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(duration_ns)

    node1 = network.node(node_ids[0])
    # The remote activity observed on node 1 belongs to its ring
    # predecessor — the node that originates *to* node 1 (with two
    # nodes, predecessor and successor coincide: the paper's node 4).
    peer_id = node_ids[-1]
    app1 = apps[node_ids[0]]
    timeline = node1.timeline()
    emap = node1.energy_map(timeline, fold_proxies=True)
    by_act = emap.energy_by_activity()
    remote_mj = to_mj(by_act.get(f"{peer_id}:BounceApp", 0.0))
    local_mj = to_mj(by_act.get("1:BounceApp", 0.0))

    # Network-wide spread: fold every node's map (node 1's computed
    # above) so a node-count sweep reports how each origin's cost
    # distributes over the ring.
    merger = NetworkMerger()
    merger.add(node_ids[0], emap)
    for node_id in node_ids[1:]:
        merger.add(node_id,
                   network.node(node_id).energy_map(fold_proxies=True))
    report = merger.report()

    # (a) a 2-second window of node 1.
    window_a = (seconds(1.5), seconds(3.5))
    part_a = render_lanes(
        lanes_for(node1, timeline, LANE_IDS, *window_a), *window_a,
        width=96, title="(a) node 1, 2-second window")

    # (b) reception detail: center on a bind of the pxy_RX proxy to the
    # remote activity (the peer's label in the packet).
    remote_label = node1.registry.label(peer_id, "BounceApp")
    rx_bind_ns = None
    for entry in node1.entries():
        if (entry.type == TYPE_ACT_BIND and entry.res_id == RES_CPU
                and entry.value == remote_label.encode()):
            rx_bind_ns = entry.time_ns
            break
    parts = [part_a]
    if rx_bind_ns is not None:
        window_b = (rx_bind_ns - ms(10), rx_bind_ns + ms(4))
        parts.append(render_lanes(
            lanes_for(node1, timeline, LANE_IDS, *window_b), *window_b,
            width=96,
            title=f"(b) packet reception carrying {peer_id}:BounceApp, "
                  f"around "
                  f"{to_ms(rx_bind_ns):.1f} ms"))

    # (c) transmission detail: the radio painted with the remote activity
    # while node 1 bounces node 4's packet back.
    tx_start_ns = None
    for seg in timeline.activity_segments(RES_RADIO):
        if (node1.registry.name_of(seg.label) == f"{peer_id}:BounceApp"
                and (rx_bind_ns is None or seg.t0_ns > rx_bind_ns)):
            tx_start_ns = seg.t0_ns
            break
    if tx_start_ns is not None:
        window_c = (tx_start_ns - ms(2), tx_start_ns + ms(18))
        parts.append(render_lanes(
            lanes_for(node1, timeline, LANE_IDS, *window_c), *window_c,
            width=96,
            title=f"(c) node 1 transmitting as part of node {peer_id}'s "
                  f"activity"))

    summary = format_table(
        ("activity", "E on node 1 (mJ)"),
        [(f"{peer_id}:BounceApp (remote)", f"{remote_mj:.3f}"),
         ("1:BounceApp (local)", f"{local_mj:.3f}")],
        title="energy attribution on node 1 (proxies folded)")
    parts.append(summary)

    return ExperimentResult(
        exp_id="fig12",
        title="Activity tracking across nodes (Bounce)",
        text="\n\n".join(parts),
        data={
            "node1_bounces": app1.bounces,
            "peer_bounces": apps[peer_id].bounces,
            "node1_received": app1.received,
            "remote_activity_mj_on_node1": remote_mj,
            "local_activity_mj_on_node1": local_mj,
            "rx_bind_found": rx_bind_ns is not None,
            "remote_radio_segment_found": tx_start_ns is not None,
            **network_sweep_data(report),
        },
        comparisons=[
            # The paper gives no absolute numbers for Bounce; the
            # reproduction criterion is that remote attribution happens.
            ("remote activity observed on node 1 (bool)", 1.0,
             1.0 if remote_mj > 0 else 0.0),
        ],
    )
