"""Ablation: proxy folding in the accounting policy.

Quanto resolves interrupt proxy activities by *binding* them to their
real owners.  The accounting can then either fold a proxy's usage into
the activity it was bound to (the paper's accounting stance) or keep
proxies as separate rows (the paper's presentation stance — its figures
keep them visible "for clarity").  This ablation runs Bounce both ways
and shows what moves: with folding on, the reception proxies' energy
lands on the remote application activity; with folding off, it sits in
``pxy_RX`` / ``int_UART0RX`` rows and the remote activity is undercharged.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.experiments.common import ExperimentResult
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import ms, seconds, to_mj


def run(seed: int = 0) -> ExperimentResult:
    from repro.apps.bounce import BounceApp

    network = Network(seed=seed)
    node1 = network.add_node(NodeConfig(node_id=1, mac="csma"))
    network.add_node(NodeConfig(node_id=4, mac="csma"))
    app1 = BounceApp(peer_id=4, originate_delay_ns=ms(250))
    app4 = BounceApp(peer_id=1, originate_delay_ns=ms(650))
    network.boot_all({1: app1.start, 4: app4.start})
    network.run(seconds(6))

    timeline = node1.timeline()
    regression = node1.regression(timeline)
    unfolded = node1.energy_map(timeline, regression, fold_proxies=False)
    folded = node1.energy_map(timeline, regression, fold_proxies=True)

    u = {k: to_mj(v) for k, v in unfolded.energy_by_activity().items()}
    f = {k: to_mj(v) for k, v in folded.energy_by_activity().items()}
    rows = []
    for name in sorted(set(u) | set(f)):
        if max(abs(u.get(name, 0.0)), abs(f.get(name, 0.0))) < 1e-4:
            continue
        rows.append((name, f"{u.get(name, 0.0):.3f}",
                     f"{f.get(name, 0.0):.3f}"))
    table = format_table(
        ("activity", "proxies separate (mJ)", "proxies folded (mJ)"),
        rows, title="node 1's energy by activity, both accounting "
                    "policies (same log, same regression)")

    remote_unfolded = u.get("4:BounceApp", 0.0)
    remote_folded = f.get("4:BounceApp", 0.0)
    proxy_total = sum(v for k, v in u.items()
                      if "pxy_" in k or "int_" in k)
    note = (f"folding moves {remote_folded - remote_unfolded:.3f} mJ of "
            f"proxy usage onto 4:BounceApp (of {proxy_total:.3f} mJ total "
            f"proxy energy; the remainder belongs to 1:BounceApp and to "
            f"genuinely unbound proxies)")

    return ExperimentResult(
        exp_id="ablation_proxies",
        title="Proxy folding in the accounting (paper §3.4)",
        text="\n\n".join([table, note]),
        data={
            "remote_unfolded_mj": remote_unfolded,
            "remote_folded_mj": remote_folded,
            "proxy_total_mj": proxy_total,
            "totals_match": abs(unfolded.total_energy_j()
                                - folded.total_energy_j()) < 1e-9,
        },
        comparisons=[],
    )
