"""Ablation: model-based estimation (PowerTOSSIM-style) vs Quanto.

The paper's core motivation: "in practice, the energy consumption of
deployed systems differs greatly from expectations or what lab tests
suggest", and model-based tools "do not capture the variability common
in real hardware".  This ablation makes that quantitative on the Blink
workload:

* **ground truth** — the hidden per-sink integrators;
* **Quanto** — regression over the *metered* aggregate (recovers actual
  draws);
* **model-based** — the same power-state log priced with Table 1
  datasheet values (PowerTOSSIM's approach).

On our (paper-calibrated) hardware the LEDs actually draw 42–58 % of
their datasheet currents, so the model-based answer overshoots by ~2x
while Quanto lands within a couple percent.
"""

from __future__ import annotations

from repro.core.modelsim import model_based_estimate
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, run_blink
from repro.units import to_mj, ua


def run(seed: int = 0) -> ExperimentResult:
    node, app, sim = run_blink(seed)
    timeline = node.timeline()
    intervals = timeline.power_intervals()
    layout = node.layout()
    voltage = node.platform.rail.voltage

    regression = node.regression(timeline)
    # A model-based tool guesses the floor from the datasheet sleep draw.
    model = model_based_estimate(
        intervals, layout, voltage, baseline_amps=ua(2.6))

    rows = []
    errors_quanto = []
    errors_model = []
    for sink in ("LED0", "LED1", "LED2"):
        truth_j = node.platform.rail.sink_energy(sink)
        quanto_j = sum(
            regression.power_w[sink] * iv.dt_ns * 1e-9
            for iv in intervals
            if dict(iv.states).get(
                next(c.res_id for c in layout if c.name == sink)) == 1
        )
        model_j = model.energy_of(sink)
        err_q = (quanto_j - truth_j) / truth_j * 100
        err_m = (model_j - truth_j) / truth_j * 100
        errors_quanto.append(abs(err_q))
        errors_model.append(abs(err_m))
        rows.append((
            sink, f"{to_mj(truth_j):.2f}",
            f"{to_mj(quanto_j):.2f}", f"{err_q:+.1f} %",
            f"{to_mj(model_j):.2f}", f"{err_m:+.1f} %",
        ))
    table = format_table(
        ("sink", "truth (mJ)", "Quanto (mJ)", "err", "model (mJ)", "err"),
        rows,
        title="per-sink energy on Blink: metered regression vs "
              "datasheet model")

    truth_total = node.platform.rail.energy()
    note = (
        f"totals: truth {to_mj(truth_total):.1f} mJ, Quanto "
        f"{to_mj(sum(iv.pulses for iv in intervals) * node.platform.icount.nominal_energy_per_pulse_j):.1f} mJ "
        f"(metered), model {to_mj(model.total_j):.1f} mJ — the model also "
        f"misses the node's real constant floor (regulator quiescent draw), "
        f"pricing idle at the 2.6 uA datasheet sleep current."
    )

    mean_q = sum(errors_quanto) / len(errors_quanto)
    mean_m = sum(errors_model) / len(errors_model)
    return ExperimentResult(
        exp_id="ablation_model_vs_meter",
        title="Why meter? Model-based (PowerTOSSIM-style) vs Quanto",
        text="\n\n".join([table, note]),
        data={
            "mean_abs_err_quanto_pct": mean_q,
            "mean_abs_err_model_pct": mean_m,
            "model_total_mj": to_mj(model.total_j),
            "truth_total_mj": to_mj(truth_total),
        },
        comparisons=[
            ("Quanto mean |error| on LED energy (%)", 2.0, mean_q),
            ("model-based mean |error| (datasheet vs actual, %)", 70.0,
             mean_m),
        ],
    )
