"""Figure 15: the unexpected DCO-calibration timer.

A simple two-activity timer application, instrumented with Quanto, showed
``int_TIMERA1`` firing 16 times per second — the MSP430 clock subsystem
recalibrating its digitally-controlled oscillator against the crystal,
always on even though nothing used asynchronous serial.  We run the same
app on a node with the calibration leak enabled, show the trace, count
the interrupt rate, and quantify the leak by re-running with the
calibration disabled (the fix the TinyOS developers shipped).
"""

from __future__ import annotations

from repro.core.report import render_kv, render_lanes
from repro.experiments.common import ExperimentResult, lanes_for
from repro.hw.platform import PlatformConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode, RES_CPU, RES_LED0, RES_LED2
from repro.units import seconds, to_s

LANE_IDS = {"CPU": RES_CPU, "LED0": RES_LED0, "LED2": RES_LED2}

NODE_ID = 32
DURATION_NS = seconds(2)


def _run_leak(seed: int, dco: bool):
    from repro.apps.timer_leak import TimerLeakApp

    sim = Simulator()
    node = QuantoNode(
        sim,
        NodeConfig(node_id=NODE_ID,
                   platform=PlatformConfig(dco_calibration=dco)),
        rng_factory=RngFactory(seed),
    )
    app = TimerLeakApp()
    node.boot(app.start)
    sim.run(until=DURATION_NS)
    return node, app, sim


def run(seed: int = 0) -> ExperimentResult:
    node, app, sim = _run_leak(seed, dco=True)
    fixed_node, _, fixed_sim = _run_leak(seed, dco=False)

    timeline = node.timeline()
    window = (seconds(1), seconds(2))
    lanes = render_lanes(
        lanes_for(node, timeline, LANE_IDS, *window), *window, width=96,
        title="one second of the trace: TimerA1 firing for DCO calibration")

    fires = node.interrupts.count("int_TIMERA1")
    rate_hz = fires / to_s(sim.now)

    # Quantify the leak: CPU time under the int_TIMERA1 proxy, and the
    # metered energy difference against the fixed build.
    emap = node.energy_map(timeline)
    proxy_name = node.registry.name_of(node.proxies.label("int_TIMERA1"))
    proxy_cpu_ns = emap.time_by_activity("CPU").get(proxy_name, 0)
    leak_energy = (node.platform.rail.energy()
                   - fixed_node.platform.rail.energy())
    summary = render_kv("the leak, quantified", [
        ("int_TIMERA1 dispatches", fires),
        ("rate", f"{rate_hz:.1f} Hz"),
        ("CPU time under int_TIMERA1",
         f"{proxy_cpu_ns / 1e6:.2f} ms over {to_s(sim.now):.0f} s"),
        ("extra energy vs fixed build",
         f"{leak_energy * 1e6:.1f} uJ over {to_s(sim.now):.0f} s"),
        ("fixed-build int_TIMERA1 dispatches",
         fixed_node.interrupts.count("int_TIMERA1")),
    ])

    return ExperimentResult(
        exp_id="fig15",
        title="Unexpected oscillator-calibration timer (node 32)",
        text="\n\n".join([lanes, summary]),
        data={
            "fires": fires,
            "rate_hz": rate_hz,
            "proxy_cpu_ms": proxy_cpu_ns / 1e6,
            "leak_energy_uj": leak_energy * 1e6,
            "fixed_fires": fixed_node.interrupts.count("int_TIMERA1"),
        },
        comparisons=[
            ("TimerA1 rate (Hz)", 16.0, rate_hz),
            ("fixed-build TimerA1 rate (Hz)", 0.0,
             fixed_node.interrupts.count("int_TIMERA1") / to_s(fixed_sim.now)),
        ],
    )
