"""Figure 13: 802.11 b/g interference on low-power listening.

A mote duty-cycles its radio (500 ms channel checks) 10 cm from an 802.11b
access point on Wi-Fi channel 6.  On 802.15.4 channel 17 (closest to the
Wi-Fi carrier) energy from Wi-Fi bursts reads as channel activity and the
mote stays awake for its 100 ms timeout — a false positive; on channel 26
(43 MHz away) nothing is detected.  The paper measured, over five
14-second windows per channel:

* channel 17: 17.8 % false-positive rate, 5.58 +/- 0.005 % radio duty
  cycle, 1.43 +/- 0.08 mW average draw;
* channel 26: no false positives, 2.22 +/- 0.0027 % duty, 0.919 mW.

We reproduce the experiment end to end and plot the cumulative metered
energy for one window per channel (the false-positive "steps").  Note the
paper's own quoted average powers are low relative to its duty cycles and
61.8 mW listen power (5.58 % x 61.8 mW alone is 3.4 mW); our powers are
self-consistent with our duty cycles, so the *ratio* between channels is
the faithful comparison.
"""

from __future__ import annotations

import math

from repro.core.report import format_table, render_xy
from repro.experiments.common import ExperimentResult
from repro.hw.catalog import default_actual_profile
from repro.tos.mac import LplConfig
from repro.tos.network import Network
from repro.tos.node import NodeConfig, RES_RADIO
from repro.units import ma, seconds, to_s

#: The LPL mote in the paper runs from a 3.35 V switching regulator and
#: idles far lower than the Blink mote (its measured average power in the
#: clean channel is below 1 mW).
LPL_VOLTAGE = 3.35
LPL_BASELINE_A = ma(0.05)

WINDOWS = 5
WINDOW_NS = seconds(14)


def _lpl_profile():
    profile = default_actual_profile()
    profile.baseline_amps = LPL_BASELINE_A
    return profile


def run_channel(channel: int, seed: int = 0) -> dict:
    """Run one LPL node on an 802.15.4 channel next to the Wi-Fi AP."""
    from repro.apps.lpl_app import LplListenApp
    from repro.hw.platform import PlatformConfig

    network = Network(seed=seed)
    node = network.add_node(NodeConfig(
        node_id=1, mac="lpl", radio_channel_number=channel,
        lpl=LplConfig(),
        platform=PlatformConfig(voltage=LPL_VOLTAGE, profile=_lpl_profile()),
    ))
    network.add_wifi_interferer()
    app = LplListenApp()
    network.boot_all({1: app.start})
    total_ns = WINDOWS * WINDOW_NS + seconds(1)
    network.run(total_ns)

    timeline = node.timeline()
    intervals = timeline.power_intervals()
    quantum = node.platform.icount.nominal_energy_per_pulse_j

    # Radio duty cycle per window: fraction of time the radio sink is not
    # in its OFF state, computed from the power-state log alone.
    duty, power_mw = [], []
    for w in range(WINDOWS):
        t0 = seconds(1) + w * WINDOW_NS
        t1 = t0 + WINDOW_NS
        on_ns = 0
        energy_j = 0.0
        for interval in intervals:
            lo = max(interval.t0_ns, t0)
            hi = min(interval.t1_ns, t1)
            if hi <= lo:
                continue
            frac = (hi - lo) / interval.dt_ns if interval.dt_ns else 0.0
            energy_j += interval.energy_j(quantum) * frac
            if interval.state_of(RES_RADIO) not in (0, None):
                on_ns += hi - lo
        duty.append(100.0 * on_ns / WINDOW_NS)
        power_mw.append(energy_j / (WINDOW_NS * 1e-9) * 1e3)

    # Cumulative energy series for the first window (the figure's curves).
    entries = [e for e in node.entries()
               if seconds(1) <= e.time_ns <= seconds(15)]
    series_t = [to_s(e.time_ns - seconds(1)) for e in entries]
    base_ic = entries[0].icount if entries else 0
    series_e = [(e.icount - base_ic) * quantum * 1e3 for e in entries]

    mean_duty = sum(duty) / len(duty)
    std_duty = math.sqrt(
        sum((d - mean_duty) ** 2 for d in duty) / len(duty))
    mean_power = sum(power_mw) / len(power_mw)
    std_power = math.sqrt(
        sum((p - mean_power) ** 2 for p in power_mw) / len(power_mw))
    return {
        "channel": channel,
        "wakeups": app.wakeups,
        "detections": app.detections,
        "fp_rate": app.false_positive_rate(),
        "duty_pct": mean_duty,
        "duty_std": std_duty,
        "power_mw": mean_power,
        "power_std": std_power,
        "series": (series_t, series_e),
        "node": node,
    }


def run(seed: int = 0) -> ExperimentResult:
    ch17 = run_channel(17, seed)
    ch26 = run_channel(26, seed)

    rows = []
    for result in (ch17, ch26):
        rows.append((
            str(result["channel"]),
            f"{result['wakeups']}",
            f"{100 * result['fp_rate']:.1f} %",
            f"{result['duty_pct']:.2f} +/- {result['duty_std']:.3f} %",
            f"{result['power_mw']:.3f} +/- {result['power_std']:.3f} mW",
        ))
    table = format_table(
        ("802.15.4 ch", "wakeups", "false-pos rate", "radio duty",
         "avg power"), rows,
        title="five 14-second windows per channel, Wi-Fi AP on 802.11 ch 6")

    plot = render_xy(
        {
            "Channel 17": ch17["series"],
            "Channel 26": ch26["series"],
        },
        width=92, height=18, x_label="time (s)", y_label="E (mJ)",
        title="cumulative metered energy, one 14 s window "
              "(steps = false positives)")

    text = "\n\n".join([table, plot])
    duty_ratio = (ch17["duty_pct"] / ch26["duty_pct"]
                  if ch26["duty_pct"] else 0.0)
    power_ratio = (ch17["power_mw"] / ch26["power_mw"]
                   if ch26["power_mw"] else 0.0)
    return ExperimentResult(
        exp_id="fig13",
        title="802.11 interference on the 802.15.4 LPL radio",
        text=text,
        data={
            "ch17": {k: v for k, v in ch17.items()
                     if k not in ("series", "node")},
            "ch26": {k: v for k, v in ch26.items()
                     if k not in ("series", "node")},
            "duty_ratio": duty_ratio,
            "power_ratio": power_ratio,
        },
        comparisons=[
            ("ch17 false-positive rate (%)", 17.8, 100 * ch17["fp_rate"]),
            ("ch26 false-positive rate (%)", 0.0, 100 * ch26["fp_rate"]),
            ("ch17 radio duty cycle (%)", 5.58, ch17["duty_pct"]),
            ("ch26 radio duty cycle (%)", 2.22, ch26["duty_pct"]),
            ("duty-cycle ratio ch17/ch26", 5.58 / 2.22, duty_ratio),
            ("power ratio ch17/ch26", 1.43 / 0.919, power_ratio),
        ],
    )
