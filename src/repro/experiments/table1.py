"""Table 1: the platform's energy sinks, power states, and nominal draws."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.catalog import (
    NOMINAL_CATALOG,
    catalog_power_state_count,
    render_table1,
)


def run(seed: int = 0) -> ExperimentResult:
    mcu_states = sum(
        len(s.states) for s in NOMINAL_CATALOG if s.group == "Microcontroller"
    )
    radio_states = sum(
        len(s.states) for s in NOMINAL_CATALOG if s.group == "Radio"
    )
    mcu_sinks = sum(1 for s in NOMINAL_CATALOG if s.group == "Microcontroller")
    radio_sinks = sum(1 for s in NOMINAL_CATALOG if s.group == "Radio")
    text = render_table1()
    return ExperimentResult(
        exp_id="table1",
        title="Platform energy sinks, power states, nominal currents "
              "(3 V, 1 MHz)",
        text=text,
        data={
            "total_sinks": len(NOMINAL_CATALOG),
            "total_states": catalog_power_state_count(),
            "mcu_sinks": mcu_sinks,
            "mcu_states": mcu_states,
            "radio_sinks": radio_sinks,
            "radio_states": radio_states,
        },
        comparisons=[
            ("MCU energy sinks", 8, mcu_sinks),
            ("MCU power states", 16, mcu_states),
            ("radio energy sinks", 5, radio_sinks),
            ("radio power states", 14, radio_states),
        ],
    )
