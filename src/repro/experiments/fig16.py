"""Figure 16: interrupt-driven vs DMA radio SPI, timing of one TX.

The radio stack can move the packet between MCU and radio chip either
with an interrupt per two bytes (``int_UART0RX`` storm) or with one DMA
burst (``int_DACDMA``).  The paper's trace shows the DMA transfer at
least twice as fast — which matters for MAC fairness: a DMA node answers
a shared event sooner and wins the medium more often.

We transmit the same packet under both configurations (same seed, so the
same backoff draw), render both timelines, and compare the FIFO-load
phase and the total send time.
"""

from __future__ import annotations

from repro.core.labels import PROXY_IDS, ActivityLabel
from repro.core.logger import TYPE_ACT_CHANGE
from repro.core.report import format_table, render_lanes
from repro.experiments.common import ExperimentResult, lanes_for
from repro.hw.platform import PlatformConfig
from repro.tos.network import Network
from repro.tos.node import NodeConfig, RES_CPU, RES_RADIO
from repro.units import ms, seconds, to_ms

LANE_IDS = {"CPU": RES_CPU, "Radio": RES_RADIO}


def _run_mode(spi_mode: str, seed: int):
    from repro.apps.dma_compare import OneShotSenderApp

    network = Network(seed=seed)
    node = network.add_node(NodeConfig(
        node_id=1, mac="csma",
        platform=PlatformConfig(spi_mode=spi_mode),
    ))
    app = OneShotSenderApp()
    network.boot_all({1: app.start})
    network.run(seconds(1))
    return node, app


def _load_phase_ns(node, app, spi_mode: str) -> int:
    """FIFO-load duration: from the send call to the last transfer
    interrupt (UART pair in irq mode, DMA completion in dma mode)."""
    vector = "int_UART0RX" if spi_mode == "irq" else "int_DACDMA"
    proxy = ActivityLabel(node.node_id, PROXY_IDS[vector]).encode()
    last = None
    for entry in node.entries():
        if (entry.type == TYPE_ACT_CHANGE and entry.res_id == RES_CPU
                and entry.value == proxy
                and app.send_started_ns is not None
                and entry.time_ns >= app.send_started_ns):
            last = entry.time_ns
    if last is None or app.send_started_ns is None:
        return 0
    return last - app.send_started_ns


def run(seed: int = 0) -> ExperimentResult:
    node_irq, app_irq = _run_mode("irq", seed)
    node_dma, app_dma = _run_mode("dma", seed)

    parts = []
    rows = []
    loads = {}
    for name, node, app in (("Normal", node_irq, app_irq),
                            ("DMA", node_dma, app_dma)):
        timeline = node.timeline()
        t0 = app.send_started_ns - ms(0.5)
        t1 = (app.send_done_ns or (app.send_started_ns + ms(20))) + ms(1)
        parts.append(render_lanes(
            lanes_for(node, timeline, LANE_IDS, t0, t1), t0, t1, width=96,
            title=f"{name}: packet transmission"))
        mode = "irq" if name == "Normal" else "dma"
        load_ns = _load_phase_ns(node, app, mode)
        loads[name] = load_ns
        rows.append((
            name,
            f"{to_ms(load_ns):.2f}",
            f"{to_ms(app.duration_ns or 0):.2f}",
            str(node.platform.spi.pair_interrupts
                if mode == "irq" else node.platform.spi.dma_transfers),
        ))

    table = format_table(
        ("mode", "FIFO load (ms)", "send total (ms)", "SPI events"),
        rows, title="phase timings")
    parts.append(table)

    speedup = (loads["Normal"] / loads["DMA"]) if loads.get("DMA") else 0.0
    total_ratio = (
        (app_irq.duration_ns or 0) / (app_dma.duration_ns or 1)
    )
    parts.append(f"DMA load-phase speedup: {speedup:.2f}x "
                 f"(total send ratio {total_ratio:.2f}x)")

    return ExperimentResult(
        exp_id="fig16",
        title="Packet TX: interrupt-driven vs DMA SPI",
        text="\n\n".join(parts),
        data={
            "load_irq_ms": to_ms(loads.get("Normal", 0)),
            "load_dma_ms": to_ms(loads.get("DMA", 0)),
            "total_irq_ms": to_ms(app_irq.duration_ns or 0),
            "total_dma_ms": to_ms(app_dma.duration_ns or 0),
            "speedup": speedup,
        },
        comparisons=[
            # The paper's claim: the DMA transfer is at least 2x faster.
            ("DMA load speedup (x, paper: >=2)", 2.0, speedup),
        ],
    )
