"""One module per table and figure of the paper's evaluation.

Every module exposes ``run(seed=0, **params) -> ExperimentResult``; the
result carries the rendered text (the table/series the paper prints), the
raw data, and paper-vs-measured comparisons.  The benchmark harness under
``benchmarks/`` calls these and archives their output.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
