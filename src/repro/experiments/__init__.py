"""One module per table and figure of the paper's evaluation.

Every module exposes ``run(seed=0, **params) -> ExperimentResult``; the
result carries the rendered text (the table/series the paper prints), the
raw data, and paper-vs-measured comparisons.  The benchmark harness under
``benchmarks/`` calls these and archives their output; the sweep runner
(``repro.sim.sweep``) fans them out over many seeds and parameter points.

``EXPERIMENT_IDS`` is the canonical registry; :func:`run_experiment`
runs one by id with validated parameter overrides.
"""

from repro.experiments.common import (
    EXPERIMENT_IDS,
    ExperimentResult,
    SweepParam,
    experiment_params,
    load_experiment,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "SweepParam",
    "experiment_params",
    "load_experiment",
    "run_experiment",
]
