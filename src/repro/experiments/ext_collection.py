"""Extension: the network-wide price of multihop data collection.

The paper's introduction asks "network-wide, how much energy do network
services such as routing consume?"  This experiment answers it on a
three-hop line (12 -> 11 -> 10-root) running the collection protocol with
instrumented forwarding queues: every node's samples are priced across
the whole network, separating each origin's cost (including the
forwarding it causes on relays) from idle listening.
"""

from __future__ import annotations

from repro.core.netmerge import merge_energy_maps
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import seconds, to_mj

NODE_IDS = [10, 11, 12]
ROOT_ID = 10


def run(seed: int = 5, duration_ns: int = seconds(30)) -> ExperimentResult:
    from repro.apps.collection import build_line_topology

    network = Network(seed=seed)
    for node_id in NODE_IDS:
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
    apps = build_line_topology(network, NODE_IDS, root_id=ROOT_ID,
                               sample_period_ns=seconds(4))
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(duration_ns)

    maps = {nid: network.node(nid).energy_map(fold_proxies=True)
            for nid in NODE_IDS}
    report = merge_energy_maps(maps)

    rows = []
    for origin in NODE_IDS:
        name = f"{origin}:Collect"
        if name not in report.by_activity:
            continue
        spread = report.spread[name]
        rows.append((
            name,
            f"{to_mj(report.by_activity[name]):.3f}",
            f"{100 * report.remote_fraction(name, origin):.1f} %",
            ", ".join(f"n{n}:{to_mj(e):.2f}"
                      for n, e in sorted(spread.items())),
        ))
    table = format_table(
        ("origin activity", "network total (mJ)", "spent remotely",
         "per-node (mJ)"),
        rows, title="the network-wide price of each node's data "
                    "(12 -> 11 -> 10-root)")

    root = apps[ROOT_ID]
    leaf_name = "12:Collect"
    stats = [
        f"delivered at root: {len(root.delivered)} packets "
        f"({sorted({o for o, _ in root.delivered})} origins)",
        f"middle node forwarded {apps[11].packets_forwarded} packets, "
        f"queue drops: {apps[11].queue.dropped}",
    ]

    leaf_remote = report.remote_fraction(leaf_name, 12) \
        if leaf_name in report.by_activity else 0.0
    return ExperimentResult(
        exp_id="ext_collection",
        title="Multihop collection: per-origin network energy",
        text="\n\n".join([table, "\n".join(stats)]),
        data={
            "delivered": len(root.delivered),
            "origins_at_root": sorted({o for o, _ in root.delivered}),
            "leaf_remote_fraction": leaf_remote,
            "by_activity_mj": {k: to_mj(v)
                               for k, v in report.by_activity.items()},
        },
        comparisons=[
            ("leaf samples traverse two hops (bool)", 1.0,
             1.0 if 12 in {o for o, _ in root.delivered} else 0.0),
        ],
    )
