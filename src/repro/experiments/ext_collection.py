"""Extension: the network-wide price of multihop data collection.

The paper's introduction asks "network-wide, how much energy do network
services such as routing consume?"  This experiment answers it on a
collection tree running over instrumented forwarding queues: every
node's samples are priced across the whole network, separating each
origin's cost (including the forwarding it causes on relays) from idle
listening.

The deployment is sweepable: ``nodes`` sets the tree size and
``topology`` its shape (``line`` — a chain into the root, the default
three-hop 12 -> 11 -> 10-root; ``star`` — every node one hop from the
root), so ``python -m repro sweep ext_collection --seeds 8 --set
nodes=3,5 --set topology=line,star`` maps how each origin's network
cost and spread scale with depth and shape across seeds.
"""

from __future__ import annotations

from repro.core.netmerge import NetworkMerger
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, network_sweep_data
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import seconds, to_mj

ROOT_ID = 10

#: Closed value sets and lower bounds, validated before any sweep
#: worker forks.
PARAM_CHOICES = {"topology": ("line", "star")}
PARAM_MINIMUMS = {"nodes": 2}

_HOP_WORDS = {1: "one", 2: "two", 3: "three", 4: "four", 5: "five",
              6: "six", 7: "seven", 8: "eight", 9: "nine"}


def _topology_desc(node_ids: list[int], topology: str) -> str:
    if topology == "star":
        leaves = ", ".join(str(n) for n in node_ids[1:])
        return f"star: {leaves} -> {node_ids[0]}-root"
    hops = " -> ".join(str(n) for n in reversed(node_ids[1:]))
    return f"{hops} -> {node_ids[0]}-root"


def run(
    seed: int = 5,
    duration_ns: int = seconds(30),
    nodes: int = 3,
    topology: str = "line",
    sample_period_ns: int = seconds(4),
) -> ExperimentResult:
    from repro.apps.collection import (
        build_line_topology,
        build_star_topology,
    )

    if nodes < 2:
        raise ValueError("a collection tree needs at least 2 nodes")
    if topology not in PARAM_CHOICES["topology"]:
        raise ValueError(f"unknown topology {topology!r}; "
                         f"choose from {PARAM_CHOICES['topology']}")
    node_ids = [ROOT_ID + i for i in range(nodes)]
    network = Network(seed=seed)
    for node_id in node_ids:
        network.add_node(NodeConfig(node_id=node_id, mac="csma"))
    builder = build_line_topology if topology == "line" \
        else build_star_topology
    apps = builder(network, node_ids, root_id=ROOT_ID,
                   sample_period_ns=sample_period_ns)
    network.boot_all({nid: app.start for nid, app in apps.items()})
    network.run(duration_ns)

    # Incremental merge: each node's map folds into the running report
    # and is dropped — fleet-size analyses never hold every map at once.
    merger = NetworkMerger()
    for nid in node_ids:
        merger.add(nid, network.node(nid).energy_map(fold_proxies=True))
    report = merger.report()

    rows = []
    for origin in node_ids:
        name = f"{origin}:Collect"
        if name not in report.by_activity:
            continue
        spread = report.spread[name]
        rows.append((
            name,
            f"{to_mj(report.by_activity[name]):.3f}",
            f"{100 * report.remote_fraction(name, origin):.1f} %",
            ", ".join(f"n{n}:{to_mj(e):.2f}"
                      for n, e in sorted(spread.items())),
        ))
    table = format_table(
        ("origin activity", "network total (mJ)", "spent remotely",
         "per-node (mJ)"),
        rows, title="the network-wide price of each node's data "
                    f"({_topology_desc(node_ids, topology)})")

    root = apps[ROOT_ID]
    leaf_id = node_ids[-1]
    leaf_name = f"{leaf_id}:Collect"
    stats = [
        f"delivered at root: {len(root.delivered)} packets "
        f"({sorted({o for o, _ in root.delivered})} origins)",
    ]
    if topology == "line" and nodes >= 3:
        relay = apps[node_ids[1]]
        stats.append(
            f"middle node forwarded {relay.packets_forwarded} packets, "
            f"queue drops: {relay.queue.dropped}")
    else:
        forwarded = sum(apps[nid].packets_forwarded
                        for nid in node_ids if nid != ROOT_ID)
        stats.append(f"non-root nodes sent {forwarded} packets upward")

    leaf_remote = report.remote_fraction(leaf_name, leaf_id) \
        if leaf_name in report.by_activity else 0.0
    leaf_hops = nodes - 1 if topology == "line" else 1
    hops_word = _HOP_WORDS.get(leaf_hops, str(leaf_hops))
    hops_word += " hop" if leaf_hops == 1 else " hops"
    return ExperimentResult(
        exp_id="ext_collection",
        title="Multihop collection: per-origin network energy",
        text="\n\n".join([table, "\n".join(stats)]),
        data={
            "delivered": len(root.delivered),
            "origins_at_root": sorted({o for o, _ in root.delivered}),
            "leaf_remote_fraction": leaf_remote,
            "by_activity_mj": {k: to_mj(v)
                               for k, v in report.by_activity.items()},
            **network_sweep_data(report),
        },
        comparisons=[
            (f"leaf samples traverse {hops_word} (bool)", 1.0,
             1.0 if leaf_id in {o for o, _ in root.delivered} else 0.0),
        ],
    )
