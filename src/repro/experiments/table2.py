"""Table 2: oscilloscope calibration of Blink's eight LED states.

The paper measures the mean current in each steady state of Blink with a
scope across a 10-ohm shunt, regresses current on the LED indicator
vector plus a constant, and reports per-LED draws (2.50 / 2.23 / 0.83 mA,
constant 0.79 mA) with a 0.83 % relative error.  We attach the virtual
oscilloscope (with realistic measurement noise), locate the same eight
steady windows from the Blink schedule, and run the same regression.
Also verified here: the iCount pulse-to-energy calibration (one pulse ~
8.33 uJ at 3 V) by correlating pulse deltas against scope energy.
"""

from __future__ import annotations

from repro.core.regression import solve_from_currents
from repro.core.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    run_blink,
    truth_baseline_ma,
    truth_current_ma,
)
from repro.meter.oscilloscope import Oscilloscope
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import ms, seconds, to_s

#: Scope measurement noise (gain/reading error), tuned to land residuals
#: in the regime of the paper's Table 2 (~0.8 % relative error).
SCOPE_NOISE = 0.018


def led_state_at_second(second: int) -> tuple[int, int, int]:
    """Blink's LED indicator vector during integer second ``second``
    (toggles at 1/2/4 s: red every odd second, green on [2,4) mod 4,
    blue on [4,8) mod 8)."""
    red = second % 2
    green = 1 if second % 4 in (2, 3) else 0
    blue = 1 if second % 8 >= 4 else 0
    return red, green, blue


def run(seed: int = 0) -> ExperimentResult:
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    rng = RngFactory(seed)
    node = QuantoNode(sim, NodeConfig(node_id=1), rng_factory=rng)
    scope = Oscilloscope(node.platform.rail, noise_fraction=SCOPE_NOISE,
                         rng=rng.stream("scope"))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(17))

    # Measure the 8 steady states in the second 8-second cycle (8..16 s),
    # sampling the middle of each second to avoid the transition edges.
    rows = []
    measurements = []
    for second in range(8, 16):
        t0 = seconds(second) + ms(300)
        t1 = seconds(second) + ms(700)
        mean_ma = scope.measure_mean_current(t0, t1) * 1e3
        indicators = led_state_at_second(second)
        measurements.append((indicators, mean_ma))
        rows.append((*indicators, 1, f"{mean_ma:.2f}"))

    estimates, const_ma, rel_error = solve_from_currents(
        measurements, ("LED0", "LED1", "LED2"))

    # iCount calibration: pulses vs scope energy over the same cycle.
    pulses = node.platform.icount.read()
    true_energy = node.platform.rail.energy()
    uj_per_pulse = (true_energy / pulses) * 1e6 if pulses else 0.0

    observed = format_table(
        ("L0", "L1", "L2", "C", "I(mA)"), rows,
        title="(X | Y): measured steady-state currents")
    fit_rows = [
        (name, f"{value:.2f}",
         f"{truth_current_ma(node, name, 'ON'):.2f}")
        for name, value in estimates.items()
    ]
    fit_rows.append(("Const.", f"{const_ma:.2f}",
                     f"{truth_baseline_ma(node):.2f}"))
    fit = format_table(("component", "I(mA) est", "I(mA) truth"), fit_rows,
                       title="(Pi): regression result")
    text = "\n\n".join([
        observed, fit,
        f"relative error ||Y-XPi||/||Y|| = {rel_error * 100:.2f} %",
        f"iCount calibration: {uj_per_pulse:.2f} uJ/pulse "
        f"({pulses} pulses over {to_s(sim.now):.0f} s)",
    ])
    return ExperimentResult(
        exp_id="table2",
        title="Oscilloscope calibration of Blink's steady states",
        text=text,
        data={
            "estimates_ma": estimates,
            "const_ma": const_ma,
            "relative_error": rel_error,
            "uj_per_pulse": uj_per_pulse,
            "measurements": measurements,
        },
        comparisons=[
            ("LED0 (mA)", 2.50, estimates["LED0"]),
            ("LED1 (mA)", 2.23, estimates["LED1"]),
            ("LED2 (mA)", 0.83, estimates["LED2"]),
            ("Const. (mA)", 0.79, const_ma),
            ("relative error (%)", 0.83, rel_error * 100),
            ("uJ per iCount pulse", 8.33, uj_per_pulse),
        ],
    )
