"""Shared experiment plumbing: results, standard runs, parameter hooks.

Besides the result type and the standard Blink run, this module is the
single place where experiments become *sweepable*: :func:`run_experiment`
loads an experiment by id, validates and coerces parameter overrides
against the experiment's own ``run()`` signature, and stamps the applied
parameters into the result header.  Experiments never need forking to
accept overrides — any keyword argument of ``run()`` with an int, float,
str, or bool default is automatically a sweepable parameter.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.core.report import format_table
from repro.errors import ExperimentParameterError
from repro.hw.platform import PlatformConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import seconds

#: Every table/figure/extension module under ``repro.experiments``.
EXPERIMENT_IDS = (
    "table1", "table2", "table3", "table4", "table5",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "ablation_weighting", "ablation_logging", "ablation_noise",
    "ablation_proxies", "ablation_model_vs_meter",
    "ext_collection", "ext_txpower", "ext_deployment",
)

_TRUE_STRINGS = frozenset(("1", "true", "yes", "on"))
_FALSE_STRINGS = frozenset(("0", "false", "no", "off"))


@dataclass
class ExperimentResult:
    """What an experiment produces: rendered text plus raw data."""

    exp_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)
    comparisons: list[tuple[str, float, float]] = field(default_factory=list)
    # each comparison: (metric name, paper value, measured value)
    params: dict[str, Any] = field(default_factory=dict)
    # the (seed, overrides) the run was invoked with, when it went
    # through run_experiment(); rendered in the header for provenance.

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.params:
            joined = " ".join(f"{k}={v}" for k, v in self.params.items())
            parts.append(f"-- params: {joined}")
        parts.append(self.text)
        if self.comparisons:
            rows = []
            for name, paper, measured in self.comparisons:
                if paper:
                    ratio = f"{measured / paper:.3f}"
                else:
                    ratio = "-"
                rows.append((name, f"{paper:g}", f"{measured:.4g}", ratio))
            parts.append("")
            parts.append(format_table(
                ("metric", "paper", "measured", "ratio"), rows,
                title="paper vs measured"))
        return "\n".join(parts)


@dataclass(frozen=True)
class SweepParam:
    """One sweepable parameter of an experiment's ``run()`` signature.

    ``choices`` (from the experiment module's ``PARAM_CHOICES``) closes
    the value set and ``minimum`` (from ``PARAM_MINIMUMS``) bounds it
    below: a grid with an unknown topology name or a one-node network
    fails at expansion time, before any worker is forked.
    """

    name: str
    kind: type
    default: Any
    choices: Optional[tuple[Any, ...]] = None
    minimum: Optional[Any] = None

    def parse(self, raw: Any) -> Any:
        """Coerce a raw (usually CLI string) value to the parameter type.

        Non-string values are type-checked rather than passed through, so
        programmatic overrides get the same fail-fast guarantee as CLI
        ones (``int`` is accepted where a ``float`` is expected; ``bool``
        is never accepted as an ``int``).
        """
        value = self._coerce(raw)
        if self.choices is not None and value not in self.choices:
            allowed = ", ".join(repr(choice) for choice in self.choices)
            raise ExperimentParameterError(
                f"parameter {self.name!r} must be one of {allowed}; "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ExperimentParameterError(
                f"parameter {self.name!r} must be at least "
                f"{self.minimum}; got {value!r}"
            )
        return value

    def _coerce(self, raw: Any) -> Any:
        if not isinstance(raw, str):
            if self.kind is float and isinstance(raw, int) \
                    and not isinstance(raw, bool):
                return float(raw)
            if isinstance(raw, self.kind) and not (
                self.kind is int and isinstance(raw, bool)
            ):
                return raw
            raise ExperimentParameterError(
                f"parameter {self.name!r} expects {self.kind.__name__}, "
                f"got {type(raw).__name__} {raw!r}"
            )
        try:
            if self.kind is bool:
                lowered = raw.strip().lower()
                if lowered in _TRUE_STRINGS:
                    return True
                if lowered in _FALSE_STRINGS:
                    return False
                raise ValueError(f"not a boolean: {raw!r}")
            if self.kind is int:
                return int(raw, 0)  # accepts 0x… for masks and channels
            return self.kind(raw)
        except ValueError as exc:
            raise ExperimentParameterError(
                f"parameter {self.name!r} expects {self.kind.__name__}, "
                f"got {raw!r}"
            ) from exc


def load_experiment(exp_id: str):
    """Import an experiment module by id, validating the id."""
    if exp_id not in EXPERIMENT_IDS:
        raise ExperimentParameterError(
            f"unknown experiment {exp_id!r}; available: "
            + ", ".join(EXPERIMENT_IDS)
        )
    return importlib.import_module(f"repro.experiments.{exp_id}")


_PARAMS_CACHE: dict[str, dict[str, SweepParam]] = {}


def experiment_params(exp_id: str) -> dict[str, SweepParam]:
    """The sweepable parameters of one experiment.

    Derived from the experiment's ``run()`` signature: every keyword
    argument except ``seed`` whose default is an int, float, str, or bool
    is sweepable, typed by its default.  Experiments therefore opt in by
    declaring defaults — no registration step, no forked modules.  A
    module-level ``PARAM_CHOICES = {"topology": ("line", "star")}``
    closes a parameter's value set, and ``PARAM_MINIMUMS = {"nodes": 2}``
    bounds it below, both for pre-fork validation.

    Memoized per experiment: signatures are static, and a sweep calls
    this once per grid point (``inspect.signature`` is milliseconds —
    real money against a few-ms simulation).  The cached dict is shared;
    callers treat it as read-only (the values are frozen dataclasses).
    """
    cached = _PARAMS_CACHE.get(exp_id)
    if cached is not None:
        return cached
    module = load_experiment(exp_id)
    choices_map = getattr(module, "PARAM_CHOICES", {})
    minimums_map = getattr(module, "PARAM_MINIMUMS", {})
    params: dict[str, SweepParam] = {}
    for name, parameter in inspect.signature(module.run).parameters.items():
        if name == "seed" or parameter.default is inspect.Parameter.empty:
            continue
        default = parameter.default
        if isinstance(default, bool):
            kind: type = bool
        elif isinstance(default, (int, float, str)):
            kind = type(default)
        else:
            continue  # structured defaults are not sweepable from a grid
        choices = choices_map.get(name)
        params[name] = SweepParam(
            name=name, kind=kind, default=default,
            choices=tuple(choices) if choices is not None else None,
            minimum=minimums_map.get(name),
        )
    _PARAMS_CACHE[exp_id] = params
    return params


#: Parsed-override memo: a sweep resolves the same handful of override
#: combos once per point, and the validation + coercion walk is pure in
#: (exp_id, overrides).  Keys are the raw override items, so any change
#: of value re-parses; unhashable values just skip the memo.
_PARSED_OVERRIDES: OrderedDict[tuple, dict[str, Any]] = OrderedDict()
_PARSED_OVERRIDES_MAX = 256


def _resolve_overrides(exp_id: str,
                       overrides: Optional[dict[str, Any]]) -> dict[str, Any]:
    if not overrides:
        return {}
    try:
        memo_key = (exp_id, tuple(sorted(overrides.items())))
    except TypeError:
        memo_key = None  # unhashable value: parse fresh
    if memo_key is not None:
        cached = _PARSED_OVERRIDES.get(memo_key)
        if cached is not None:
            _PARSED_OVERRIDES.move_to_end(memo_key)
            # Rebuilt in the *caller's* key order: the memo key sorts
            # items so equivalent override dicts share one entry, but
            # result.params (and the rendered header) must follow each
            # call's own ordering, exactly as an unmemoized parse would.
            return {key: cached[key] for key in overrides}
    params = experiment_params(exp_id)
    kwargs: dict[str, Any] = {}
    for key, raw in overrides.items():
        param = params.get(key)
        if param is None:
            known = ", ".join(sorted(params)) or "(none)"
            raise ExperimentParameterError(
                f"experiment {exp_id!r} has no parameter {key!r}; "
                f"sweepable parameters: {known}"
            )
        kwargs[key] = param.parse(raw)
    if memo_key is not None:
        _PARSED_OVERRIDES[memo_key] = dict(kwargs)
        while len(_PARSED_OVERRIDES) > _PARSED_OVERRIDES_MAX:
            _PARSED_OVERRIDES.popitem(last=False)
    return kwargs


def run_experiment(
    exp_id: str,
    seed: int = 0,
    overrides: Optional[dict[str, Any]] = None,
) -> ExperimentResult:
    """Run one experiment with validated parameter overrides.

    ``overrides`` maps parameter names to values; string values are
    coerced to the parameter's type (so CLI ``--set key=value`` pairs can
    be passed through verbatim).  Unknown keys raise
    :class:`~repro.errors.ExperimentParameterError` naming the valid ones.
    The applied parameters are stamped into ``result.params`` and show up
    in the rendered header.  Validation and coercion are memoized per
    (experiment, override values) — a sweep pays them once per combo,
    not once per point.
    """
    module = load_experiment(exp_id)
    kwargs = _resolve_overrides(exp_id, overrides)
    result = module.run(seed=seed, **kwargs)
    result.params = {"seed": seed, **kwargs}
    return result


# -- warm-start world cache -------------------------------------------------

#: Env switch for the warm-start protocol (default on; set to 0/off/no to
#: force a cold construction per run, the reference behaviour).
WARM_START_ENV_VAR = "REPRO_WARM_START"

_WARM_DISABLED = frozenset(("0", "off", "no", "false"))

#: Constructed blink worlds, keyed by configuration signature.  A sweep
#: worker revisits the same handful of configurations (one per override
#: combo), so a small LRU holds the working set; each world's log buffer
#: is cleared on reset, so an idle cached world costs one run's log.
_BLINK_WORLDS: OrderedDict[tuple, tuple[Simulator, QuantoNode]] = \
    OrderedDict()
_BLINK_WORLDS_MAX = 8


def warm_start_enabled() -> bool:
    """Whether run_blink may reuse (reset) a cached world."""
    value = os.environ.get(WARM_START_ENV_VAR, "1").strip().lower()
    return value not in _WARM_DISABLED


def clear_warm_worlds() -> None:
    """Drop every cached world (tests use this to force cold paths)."""
    _BLINK_WORLDS.clear()


def _blink_world_key(node_id: int, node_kwargs: dict) -> Optional[tuple]:
    """A hashable signature of one blink-world configuration, or ``None``
    when the configuration is not warm-cacheable (a custom draw profile
    or any structured argument means we cannot prove value equality, so
    those runs always construct cold)."""
    items = []
    for key in sorted(node_kwargs):
        value = node_kwargs[key]
        if key == "platform":
            if type(value) is not PlatformConfig or value.profile is not None:
                return None
            fields = tuple(
                (f.name, getattr(value, f.name))
                for f in dataclasses.fields(PlatformConfig)
                if f.name != "profile"
            )
            items.append((key, fields))
        elif isinstance(value, (int, float, str)) or value is None:
            # bool is an int subclass; type name disambiguates 0 vs False.
            items.append((key, (type(value).__name__, value)))
        else:
            return None
    return (node_id, tuple(items))


# -- batched execution ------------------------------------------------------

#: The announced batch plan: the seeds of the points about to run, in
#: order.  Set by :func:`blink_batch_plan` (the sweep's batched executor
#: and :func:`run_batch` use it); consulted by :func:`run_blink`.
_BATCH_PLAN: Optional[tuple[int, ...]] = None

#: Configs already batch-simulated under the current plan (so a second
#: same-config ``run_blink`` call inside one experiment run falls back
#: to the serial path instead of re-simulating the whole chunk).
_BATCH_DONE: set = set()

#: Simulated-but-not-yet-consumed batch worlds: ``(key, duration, seed)
#: -> (node, app, sim)``.  Entries are popped when their point runs.
_BATCH_POOL: "OrderedDict[tuple, tuple]" = OrderedDict()
_BATCH_POOL_MAX = 64

#: World objects constructed for batching, per config key — the batch
#: path's analogue of ``_BLINK_WORLDS``: reset and re-run chunk after
#: chunk (warm start), never shared with the serial cache.
_BATCH_WORLDS_BY_KEY: "OrderedDict[tuple, list]" = OrderedDict()
_BATCH_WORLDS_MAX_KEYS = 2


@contextmanager
def blink_batch_plan(seeds: Iterable[int]):
    """Announce the seeds of the points about to run.

    Inside the context, the first ``run_blink`` call whose seed heads
    the plan simulates *all* planned seeds for its configuration as one
    interleaved batch (:class:`~repro.sim.batch.BatchSimulator`) and
    pools the results; each later same-config call pops its own world
    from the pool.  Configurations that never match the plan — or
    experiments that never call ``run_blink`` — run serially, so the
    plan is always safe to announce.
    """
    global _BATCH_PLAN
    previous, previous_done = _BATCH_PLAN, set(_BATCH_DONE)
    _BATCH_PLAN = tuple(int(seed) for seed in seeds)
    _BATCH_DONE.clear()
    try:
        yield
    finally:
        _BATCH_PLAN = previous
        _BATCH_DONE.clear()
        _BATCH_DONE.update(previous_done)


def clear_batch_worlds() -> None:
    """Drop pooled batch results and cached batch worlds (tests)."""
    _BATCH_POOL.clear()
    _BATCH_WORLDS_BY_KEY.clear()
    _BATCH_DONE.clear()


def _run_blink_batch(
    seeds: tuple[int, ...],
    duration_ns: int,
    node_id: int,
    node_kwargs: dict,
    key: tuple,
) -> None:
    """Simulate every planned seed for one configuration as a batch and
    pool the finished worlds.

    The K worlds run interleaved on one shared calendar queue; each
    world's schedule, rng streams, and log are bit-identical to its
    serial run (``tests/test_batched.py`` gates this per experiment).
    Afterwards the K logs are decoded in one fused pass
    (:func:`repro.core.logger.decode_batch`), so each point's analysis
    starts from already-decoded columns without materializing
    ``raw_bytes``.
    """
    from repro.apps.blink import BlinkApp
    from repro.core.logger import decode_batch
    from repro.sim.batch import BatchSimulator

    # Reclaim this config's worlds: pooled siblings from an abandoned
    # earlier plan are dropped (a late request falls back serial).
    for pool_key in [k for k in _BATCH_POOL if k[0] == key]:
        del _BATCH_POOL[pool_key]
    reuse = warm_start_enabled()
    stock = _BATCH_WORLDS_BY_KEY.get(key, []) if reuse else []
    worlds = []
    for seed in seeds:
        if stock:
            sim, node = stock.pop()
            node.reset(seed)
        else:
            sim = Simulator()
            node = QuantoNode(
                sim, NodeConfig(node_id=node_id, **node_kwargs),
                rng_factory=RngFactory(seed),
            )
        worlds.append((sim, node))
    batch = BatchSimulator([sim for sim, _ in worlds])
    batch.attach()
    apps = []
    for _, node in worlds:
        app = BlinkApp()
        node.boot(app.start)
        apps.append(app)
    batch.run(until=duration_ns)
    batch.detach()
    for _, node in worlds:
        node.mark_log_end()
    decode_batch([node.logger for _, node in worlds])
    for (sim, node), app, seed in zip(worlds, apps, seeds):
        _BATCH_POOL[(key, duration_ns, seed)] = (node, app, sim)
        while len(_BATCH_POOL) > _BATCH_POOL_MAX:
            _BATCH_POOL.popitem(last=False)
    if reuse:
        _BATCH_WORLDS_BY_KEY[key] = [
            (sim, node) for sim, node in worlds]
        _BATCH_WORLDS_BY_KEY.move_to_end(key)
        while len(_BATCH_WORLDS_BY_KEY) > _BATCH_WORLDS_MAX_KEYS:
            _BATCH_WORLDS_BY_KEY.popitem(last=False)


def run_blink(
    seed: int = 0,
    duration_ns: int = seconds(48),
    node_id: int = 1,
    **node_kwargs,
) -> tuple[QuantoNode, "BlinkApp", Simulator]:
    """The standard 48-second Blink run used by several experiments.

    Warm start: with ``$REPRO_WARM_START`` unset (or truthy), the
    simulator + node world for a given configuration is constructed once
    per process and *reset* per ``(seed)`` instead of rebuilt — module
    setup, hardware models, and registries are reused; all run state is
    rewound.  Reset and rebuild are digest-for-digest equivalent
    (``tests/test_warm_start.py``), so results are bit-identical either
    way; a sweep worker just skips the per-point construction cost.

    Aliasing contract: a warm hit returns the *same* node/sim objects a
    previous same-configuration call returned, reset.  Capture whatever
    you need from a run (bytes, maps, numbers) before calling run_blink
    again with the same configuration — or disable warm start to hold
    several live worlds side by side.
    """
    from repro.apps.blink import BlinkApp

    batch_key = _blink_world_key(node_id, node_kwargs)
    if batch_key is not None:
        pooled = _BATCH_POOL.pop((batch_key, duration_ns, seed), None)
        if pooled is not None:
            return pooled
        plan = _BATCH_PLAN
        if plan is not None and len(plan) > 1 and plan[0] == seed:
            done_key = (batch_key, duration_ns)
            if done_key not in _BATCH_DONE:
                _BATCH_DONE.add(done_key)
                _run_blink_batch(plan, duration_ns, node_id,
                                 node_kwargs, batch_key)
                pooled = _BATCH_POOL.pop(
                    (batch_key, duration_ns, seed), None)
                if pooled is not None:
                    return pooled

    node = None
    key = batch_key if warm_start_enabled() else None
    if key is not None:
        world = _BLINK_WORLDS.get(key)
        if world is not None:
            sim, node = world
            _BLINK_WORLDS.move_to_end(key)
            node.reset(seed)
    if node is None:
        sim = Simulator()
        node = QuantoNode(
            sim, NodeConfig(node_id=node_id, **node_kwargs),
            rng_factory=RngFactory(seed),
        )
        if key is not None:
            _BLINK_WORLDS[key] = (sim, node)
            while len(_BLINK_WORLDS) > _BLINK_WORLDS_MAX:
                _BLINK_WORLDS.popitem(last=False)
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=duration_ns)
    return node, app, sim


def run_batch(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[dict[str, Any]] = None,
    k: int = 8,
) -> list[ExperimentResult]:
    """Run one experiment over many seeds, K worlds per batch.

    Seeds are chunked into groups of ``k``; within a chunk, experiments
    that route through :func:`run_blink` simulate all their worlds
    interleaved on one shared calendar queue and analyze their logs off
    one fused decode.  Results are bit-identical to per-seed
    :func:`run_experiment` calls (``tests/test_batched.py`` gates every
    experiment's digests at several K) — batching only changes wall
    time.  Experiments that never enter the blink path just run
    serially, so ``run_batch`` is safe for any experiment id.
    """
    seeds = [int(seed) for seed in seeds]
    k = max(1, int(k))
    results = []
    for start in range(0, len(seeds), k):
        chunk = seeds[start:start + k]
        with blink_batch_plan(chunk):
            for seed in chunk:
                results.append(
                    run_experiment(exp_id, seed=seed, overrides=overrides))
    return results


def lanes_for(
    node: QuantoNode,
    timeline,
    res_ids: dict[str, int],
    t0_ns: int,
    t1_ns: int,
    hide_idle: bool = True,
):
    """Build Figure-11/12-style lane segments (component -> painted spans)
    from a node's timeline, for :func:`repro.core.report.render_lanes`."""
    from repro.core.report import LaneSegment

    lanes: dict[str, list] = {}
    idle_name = node.registry.name_of(node.idle)
    for lane_name, res_id in res_ids.items():
        segments = []
        for seg in timeline.activity_segments(res_id):
            if seg.t1_ns < t0_ns or seg.t0_ns > t1_ns:
                continue
            name = node.registry.name_of(seg.label)
            if hide_idle and name == idle_name:
                continue
            segments.append(LaneSegment(seg.t0_ns, seg.t1_ns, name))
        lanes[lane_name] = segments
    return lanes


def network_sweep_data(report) -> dict:
    """Fleet-aggregable statistics from a network-wide energy report.

    Every leaf is numeric, so a sweep over a node-count or topology grid
    turns each of these into a mean/stddev/CI row: the network total,
    each activity's per-node spread (``spread_mj.<activity>.n<node>``),
    how many nodes each activity's cost touched, and the remote
    fraction (the butterfly effect) for every origin-labelled activity.
    """
    from repro.units import to_mj

    return {
        "network_total_mj": to_mj(report.total_j),
        "spread_mj": {
            activity: {
                f"n{node_id}": to_mj(joules)
                for node_id, joules in sorted(nodes.items())
            }
            for activity, nodes in sorted(report.spread.items())
        },
        "nodes_touched": {
            activity: len(nodes)
            for activity, nodes in sorted(report.spread.items())
        },
        "remote_fraction": dict(sorted(report.remote_fractions().items())),
    }


def truth_current_ma(node: QuantoNode, sink: str, state: str) -> float:
    """Ground-truth draw of one sink state, in mA — used only to *score*
    estimates, never by the estimation pipeline."""
    return node.platform.profile.current(sink, state) * 1e3


def truth_baseline_ma(node: QuantoNode) -> float:
    """Ground-truth always-on floor in mA (plus MCU sleep leakage)."""
    profile = node.platform.profile
    sleep = profile.current("CPU", node.config.platform.sleep_state)
    return (profile.baseline_amps + sleep) * 1e3
