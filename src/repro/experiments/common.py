"""Shared experiment plumbing: results, standard runs, comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.report import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import seconds


@dataclass
class ExperimentResult:
    """What an experiment produces: rendered text plus raw data."""

    exp_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)
    comparisons: list[tuple[str, float, float]] = field(default_factory=list)
    # each comparison: (metric name, paper value, measured value)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.text]
        if self.comparisons:
            rows = []
            for name, paper, measured in self.comparisons:
                if paper:
                    ratio = f"{measured / paper:.3f}"
                else:
                    ratio = "-"
                rows.append((name, f"{paper:g}", f"{measured:.4g}", ratio))
            parts.append("")
            parts.append(format_table(
                ("metric", "paper", "measured", "ratio"), rows,
                title="paper vs measured"))
        return "\n".join(parts)


def run_blink(
    seed: int = 0,
    duration_ns: int = seconds(48),
    node_id: int = 1,
    **node_kwargs,
) -> tuple[QuantoNode, "BlinkApp", Simulator]:
    """The standard 48-second Blink run used by several experiments."""
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(
        sim, NodeConfig(node_id=node_id, **node_kwargs),
        rng_factory=RngFactory(seed),
    )
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=duration_ns)
    return node, app, sim


def lanes_for(
    node: QuantoNode,
    timeline,
    res_ids: dict[str, int],
    t0_ns: int,
    t1_ns: int,
    hide_idle: bool = True,
):
    """Build Figure-11/12-style lane segments (component -> painted spans)
    from a node's timeline, for :func:`repro.core.report.render_lanes`."""
    from repro.core.report import LaneSegment

    lanes: dict[str, list] = {}
    idle_name = node.registry.name_of(node.idle)
    for lane_name, res_id in res_ids.items():
        segments = []
        for seg in timeline.activity_segments(res_id):
            if seg.t1_ns < t0_ns or seg.t0_ns > t1_ns:
                continue
            name = node.registry.name_of(seg.label)
            if hide_idle and name == idle_name:
                continue
            segments.append(LaneSegment(seg.t0_ns, seg.t1_ns, name))
        lanes[lane_name] = segments
    return lanes


def truth_current_ma(node: QuantoNode, sink: str, state: str) -> float:
    """Ground-truth draw of one sink state, in mA — used only to *score*
    estimates, never by the estimation pipeline."""
    return node.platform.profile.current(sink, state) * 1e3


def truth_baseline_ma(node: QuantoNode) -> float:
    """Ground-truth always-on floor in mA (plus MCU sleep leakage)."""
    profile = node.platform.profile
    sleep = profile.current("CPU", node.config.platform.sleep_state)
    return (profile.baseline_amps + sleep) * 1e3
