"""Figure 10: scope traces of two Blink states with the iCount ripple.

The paper shows current-vs-time for "LED1 (green) on" (mean 3.05 mA) and
"all LEDs on" (mean 6.30 mA): a sawtooth at the switching frequency of
the regulator, whose mean is the load current.  The linear fit the paper
derives — ``I_avg(mA) = 2.77 f_iC(kHz) - 0.05`` with one pulse = 8.33 uJ
— is what makes pulse counting an energy meter.  We render both windows
(ripple synthesized at the model's switching frequency) and verify the
linearity across all eight states.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table, render_xy
from repro.experiments.common import ExperimentResult
from repro.experiments.table2 import led_state_at_second
from repro.meter.oscilloscope import Oscilloscope
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import ms, seconds, to_ms, us


def run(seed: int = 0) -> ExperimentResult:
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    rng = RngFactory(seed)
    node = QuantoNode(sim, NodeConfig(node_id=1), rng_factory=rng)
    scope = Oscilloscope(node.platform.rail, noise_fraction=0.004,
                         rng=rng.stream("scope"))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(17))

    # Window A: LED1 (green) only -> seconds where (0,1,0): s % 8 == 2.
    # Window B: all three on -> s % 8 == 7.
    windows = {"LED1(G) On": seconds(10), "All LEDs On": seconds(15)}
    plots = []
    means = {}
    for name, start in windows.items():
        t0, t1 = start + ms(200), start + ms(200) + ms(1.5)
        times, amps = scope.sample(t0, t1, us(10), ripple=True)
        mean = scope.trace.mean_current(t0, t1)
        means[name] = mean * 1e3
        plots.append(render_xy(
            {name: ([to_ms(t - t0) for t in times],
                    [a * 1e3 for a in amps])},
            width=80, height=12, x_label="time (ms)", y_label="I (mA)",
            title=f"{name}: mean {mean * 1e3:.2f} mA",
        ))

    # Linearity of switching frequency vs current across the 8 states.
    rows = []
    freqs, currents = [], []
    for second in range(8, 16):
        t0 = seconds(second) + ms(300)
        t1 = seconds(second) + ms(700)
        mean = scope.trace.mean_current(t0, t1)
        freq = node.platform.icount.frequency_for_current(mean)
        freqs.append(freq / 1e3)
        currents.append(mean * 1e3)
        rows.append((str(led_state_at_second(second)),
                     f"{mean * 1e3:.2f}", f"{freq / 1e3:.3f}"))
    slope, intercept = np.polyfit(freqs, currents, 1)
    r2 = float(np.corrcoef(freqs, currents)[0, 1] ** 2)
    table = format_table(("LED state", "I (mA)", "f_iC (kHz)"), rows,
                         title="switching frequency vs load current")
    fit_line = (f"fit: I(mA) = {slope:.2f} f(kHz) + {intercept:.3f}, "
                f"R^2 = {r2:.5f}")

    text = "\n\n".join(plots + [table, fit_line])
    return ExperimentResult(
        exp_id="fig10",
        title="Current over time for two Blink states (iCount ripple)",
        text=text,
        data={"means_ma": means, "slope": slope, "intercept": intercept,
              "r2": r2},
        comparisons=[
            ("mean LED1-on current (mA)", 3.05, means["LED1(G) On"]),
            ("mean all-on current (mA)", 6.30, means["All LEDs On"]),
            ("I/f slope (mA per kHz)", 2.77, slope),
            ("fit R^2", 0.99995, r2),
        ],
    )
