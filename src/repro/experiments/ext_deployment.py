"""Extension: diagnosing a dying node in a deployment.

The paper opens with the redwood-microclimate deployment where 15 % of
the nodes died within a week while the rest lasted months, and "a lack
of data makes the exact cause unknown" — the problem Quanto exists to
solve.  This case study recreates the situation in miniature: three
identical duty-cycled sensing nodes report to an always-on root, but one
of them happens to sit near an 802.11 access point whose traffic its
channel checks read as activity.  Its radio stays up for the 100 ms
detect-hold again and again, and its battery projection collapses.

With Quanto the diagnosis is direct: the sick node's energy map shows
the waste sitting on the unbound ``pxy_RX`` proxy — false wake-ups — not
on its application activities, which look identical to its siblings'.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.experiments.common import ExperimentResult
from repro.hw.catalog import default_actual_profile
from repro.hw.platform import PlatformConfig
from repro.tos.network import Network
from repro.tos.node import NodeConfig, RES_RADIO
from repro.units import ma, seconds, to_mj, to_s

ROOT_ID = 10
HEALTHY_IDS = (11, 12)
SICK_ID = 13

#: Two AA cells at 3 V: ~2000 mAh ~= 21.6 kJ.
BATTERY_J = 21_600.0

DURATION_NS = seconds(60)


def _sensing_profile():
    profile = default_actual_profile()
    profile.baseline_amps = ma(0.05)  # a well-built low-power node
    return profile


def run(seed: int = 0) -> ExperimentResult:
    from repro.apps.sense_send import SenseAndSendApp

    network = Network(seed=seed)
    network.add_node(NodeConfig(node_id=ROOT_ID, mac="csma",
                                radio_channel_number=17))
    apps = {}
    for node_id in (*HEALTHY_IDS, SICK_ID):
        network.add_node(NodeConfig(
            node_id=node_id, mac="lpl", radio_channel_number=17,
            platform=PlatformConfig(profile=_sensing_profile()),
        ))
        apps[node_id] = SenseAndSendApp(sink_id=ROOT_ID,
                                        period_ns=seconds(15))
    # The office AP is audible only to the sick node.
    network.add_wifi_interferer(audible_to={SICK_ID})

    received = []

    def root_app(node) -> None:
        node.am.register_receiver(0x53, received.append)
        node.mac.start()

    boot = {ROOT_ID: root_app}
    boot.update({nid: app.start for nid, app in apps.items()})
    network.boot_all(boot)
    network.run(DURATION_NS)

    rows = []
    stats = {}
    for node_id in (*HEALTHY_IDS, SICK_ID):
        node = network.node(node_id)
        timeline = node.timeline()
        intervals = timeline.power_intervals()
        quantum = node.platform.icount.nominal_energy_per_pulse_j
        energy = sum(iv.pulses for iv in intervals) * quantum
        span_s = to_s(intervals[-1].t1_ns - intervals[0].t0_ns)
        power_w = energy / span_s if span_s else 0.0
        lifetime_days = (BATTERY_J / power_w / 86_400.0
                         if power_w else float("inf"))
        radio_on_ns = sum(iv.dt_ns for iv in intervals
                          if iv.state_of(RES_RADIO) not in (0, None))
        emap = node.energy_map(timeline)
        proxy_name = node.registry.name_of(node.proxies.label("pxy_RX"))
        waste = emap.energy_by_activity().get(proxy_name, 0.0)
        stats[node_id] = {
            "power_mw": power_w * 1e3,
            "lifetime_days": lifetime_days,
            "radio_duty_pct": 100.0 * radio_on_ns / span_s / 1e9,
            "pxy_waste_mj": to_mj(waste),
            "detections": node.mac.detections,
        }
        rows.append((
            f"node {node_id}" + (" (near AP)" if node_id == SICK_ID else ""),
            f"{power_w * 1e3:.2f}",
            f"{stats[node_id]['radio_duty_pct']:.2f} %",
            str(node.mac.detections),
            f"{to_mj(waste):.2f}",
            f"{lifetime_days:.0f}",
        ))
    table = format_table(
        ("node", "avg power (mW)", "radio duty", "false wakes",
         "pxy_RX waste (mJ)", "battery (days)"),
        rows,
        title="three identical sensing nodes, 60 s window, 2xAA budget")

    healthy_power = sum(stats[n]["power_mw"] for n in HEALTHY_IDS) / 2
    sick_power = stats[SICK_ID]["power_mw"]
    ratio = sick_power / healthy_power if healthy_power else 0.0
    healthy_life = sum(stats[n]["lifetime_days"] for n in HEALTHY_IDS) / 2
    diagnosis = (
        f"node {SICK_ID} draws {ratio:.2f}x its siblings' power; its "
        f"projected lifetime is {stats[SICK_ID]['lifetime_days']:.0f} days "
        f"vs their {healthy_life:.0f} — and the energy map pins the "
        f"difference on the never-bound receive proxy (false wake-ups), "
        f"not on the application."
    )

    return ExperimentResult(
        exp_id="ext_deployment",
        title="Deployment case study: why is one node dying early?",
        text="\n\n".join([table, diagnosis,
                          f"samples delivered to root: {len(received)}"]),
        data={
            "stats": stats,
            "power_ratio": ratio,
            "delivered": len(received),
        },
        comparisons=[
            ("sick/healthy power ratio (>1.3)", 1.3, ratio),
            ("healthy-node false wakes", 0.0,
             float(sum(stats[n]["detections"] for n in HEALTHY_IDS))),
        ],
    )
