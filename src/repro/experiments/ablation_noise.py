"""Ablation: sensitivity of the breakdown to meter error.

iCount's spec is +/-15 % maximum error over five decades of current.
This ablation sweeps (a) the meter's gain error and (b) pulse-level
jitter, re-running the Blink breakdown at each setting and scoring the
estimates against ground truth.  The headline: a pure gain error scales
every estimate by the same factor (the *breakdown* stays right even when
the absolute joules are off), while jitter degrades short-lived states
first — exactly the robustness argument implicit in the paper's design.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    run_blink,
    truth_current_ma,
)
from repro.hw.platform import PlatformConfig

GAIN_ERRORS = (0.0, 0.05, 0.15, -0.15)
JITTERS = (0.0, 0.5, 2.0)


def _score(node) -> dict[str, float]:
    regression = node.regression()
    out = {}
    for name, sink in (("LED0", "LED0"), ("LED1", "LED1"), ("LED2", "LED2")):
        if name in regression.power_w:
            out[name] = regression.current_ma(name)
    out["CPU"] = (regression.current_ma("CPU")
                  if "CPU" in regression.power_w else float("nan"))
    out["rel_err"] = regression.relative_error
    return out


def run(seed: int = 0) -> ExperimentResult:
    rows = []
    results = {}
    for gain in GAIN_ERRORS:
        for jitter in JITTERS:
            node, _, _ = run_blink(
                seed,
                platform=PlatformConfig(
                    icount_gain_error=gain, icount_jitter_pulses=jitter),
            )
            score = _score(node)
            results[(gain, jitter)] = score
            led0_truth = truth_current_ma(node, "LED0", "ON")
            # With a gain error g the meter under/over-reports energy by
            # 1/(1+g); ratio-to-truth shows the scale-invariance.
            ratio = score.get("LED0", 0.0) / led0_truth
            rows.append((
                f"{gain:+.2f}", f"{jitter:.1f}",
                f"{score.get('LED0', 0):.3f}",
                f"{score.get('LED1', 0):.3f}",
                f"{score.get('LED2', 0):.3f}",
                f"{ratio:.3f}",
                f"{score['rel_err'] * 100:.2f} %",
            ))

    table = format_table(
        ("gain err", "jitter (pulses)", "LED0 mA", "LED1 mA", "LED2 mA",
         "LED0/truth", "fit rel err"),
        rows,
        title="Blink breakdown vs meter error "
              "(gain error rescales uniformly; jitter adds noise)")

    # Scale-invariance check: at +15 % gain error the estimates should be
    # ~1/1.15 of truth, uniformly.
    clean = results[(0.0, 0.0)]
    gained = results[(0.15, 0.0)]
    ratios = [
        gained[name] / clean[name]
        for name in ("LED0", "LED1", "LED2")
        if clean.get(name)
    ]
    spread = max(ratios) - min(ratios) if ratios else 0.0

    return ExperimentResult(
        exp_id="ablation_noise",
        title="Meter-error sensitivity of the energy breakdown",
        text="\n\n".join([
            table,
            f"uniformity of the +15% gain-error rescale: ratios "
            f"{[f'{r:.4f}' for r in ratios]} (spread {spread:.4f})",
        ]),
        data={"spread": spread,
              "results": {f"{g}/{j}": v for (g, j), v in results.items()}},
        comparisons=[
            ("gain-error rescale factor (1/1.15)", 1 / 1.15,
             sum(ratios) / len(ratios) if ratios else 0.0),
        ],
    )
