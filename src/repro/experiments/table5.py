"""Table 5: the cost of instrumenting the OS, in lines of code.

The paper reports the diff size of instrumenting each TinyOS abstraction
(tasks 25, timers 16, arbiter 34, interrupts 88, active messages 8, LEDs
33, CC2420 radio 105, SHT11 10) plus 1275 lines of new infrastructure.

Our analogue: for each abstraction we count (a) the total source lines of
the corresponding module and (b) the *instrumentation call sites* — lines
that touch the Quanto surface (activity get/set/bind/add/remove, power-
state set, proxy labels, logger records).  (b) is the closest measurable
analogue of the paper's "diff LOC": it is the part of each module that
exists only because of Quanto.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.report import format_table
from repro.experiments.common import ExperimentResult

#: Paper rows -> (paper diff LOC, our module paths).
MAPPING = [
    ("Tasks", 25, ["tos/scheduler.py"]),
    ("Timers", 16, ["tos/vtimer.py"]),
    ("Arbiter", 34, ["tos/arbiter.py"]),
    ("Interrupts", 88, ["tos/interrupts.py", "tos/context.py"]),
    ("Active Msg.", 8, ["tos/am.py"]),
    ("LEDs", 33, ["tos/drivers/leds.py"]),
    ("CC2420 Radio", 105, ["tos/drivers/radio.py"]),
    ("SHT11", 10, ["tos/drivers/sensor.py"]),
]

NEW_CODE = [
    "core/labels.py", "core/activity.py", "core/powerstate.py",
    "core/logger.py",
]

#: A line is an instrumentation call site if it touches the Quanto API.
_INSTRUMENTATION = re.compile(
    r"(cpu_activity|_activity\.|activity\.set|activity\.bind"
    r"|activity\.add|activity\.remove|powerstate\.set|powerstate\.set_bits"
    r"|\.record\(|proxies\.label|proxy|saved_activity|bind\()"
)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def _count_lines(path: Path) -> tuple[int, int]:
    """(code lines, instrumentation call-site lines) for one module."""
    code = 0
    instrumented = 0
    in_docstring = False
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            one_liner = len(line) > 3 and (
                line.endswith('"""') or line.endswith("'''"))
            if not one_liner:
                in_docstring = True
            continue
        if line.startswith("#"):
            continue
        code += 1
        if _INSTRUMENTATION.search(line):
            instrumented += 1
    return code, instrumented


def run(seed: int = 0) -> ExperimentResult:
    root = _package_root()
    rows = []
    total_sites = 0
    for name, paper_loc, modules in MAPPING:
        code = 0
        sites = 0
        for module in modules:
            c, s = _count_lines(root / module)
            code += c
            sites += s
        total_sites += sites
        rows.append((name, str(paper_loc), str(sites), str(code)))
    new_code = sum(_count_lines(root / module)[0] for module in NEW_CODE)
    rows.append(("New code (infrastructure)", "1275", "-", str(new_code)))

    table = format_table(
        ("abstraction", "paper diff LOC", "our call sites", "our module LOC"),
        rows, title="instrumentation burden")
    note = ("call sites = lines touching the Quanto surface (activity "
            "set/bind/add/remove, power-state set, proxy labels); the "
            "closest analogue of the paper's diff size.")

    return ExperimentResult(
        exp_id="table5",
        title="Cost of instrumenting the OS",
        text="\n\n".join([table, note]),
        data={
            "total_call_sites": total_sites,
            "new_code_loc": new_code,
        },
        comparisons=[
            ("new infrastructure LOC", 1275, new_code),
            ("instrumented abstractions", 8, len(MAPPING)),
        ],
    )
