"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the available experiments;
* ``experiment <id> [--seed N] [--set k=v ...]`` — run one experiment
  (e.g. ``table3``, ``fig13``, ``ext_deployment``) and print its rendered
  result;
* ``sweep <id> [--seeds N] [--jobs J] [--batch K] [--set k=v1,v2 ...]
  [--cache-dir D] [--shard i/N]`` — run an experiment campaign over many
  seeds (and
  optionally a parameter grid) on a worker pool, folding results into
  streaming aggregates; with a cache directory, already-simulated points
  are reused and only new grid points run; with ``--shard i/N``, run
  only the i-th deterministic slice of the grid (one machine of an
  N-machine campaign);
* ``merge-sweeps <id> --cache-dir A [--cache-dir B ...]`` — fold shard
  runs' cached stores back into the full campaign result, byte-identical
  to an unsharded run over the same grid; with ``--manifest M`` the
  spec comes from a campaign manifest instead of re-typed flags and
  ``--strict`` additionally verifies the manifest's pinned digests;
* ``campaign plan|run|resume|status <manifest>`` — the fault-tolerant
  campaign orchestrator (:mod:`repro.sim.campaign`): ``plan`` writes a
  schema-versioned manifest, ``run`` dispatches shard workers with
  retries/straggler backups and folds results incrementally, ``resume``
  (the same operation by a friendlier name) verifies stored points and
  schedules only the remainder, ``status`` reports coverage without
  simulating (``campaign worker`` is the internal per-shard entry the
  runner spawns);
* ``blink [--seconds N] [--seed N] [--dump]`` — run Blink and print the
  full energy map (optionally the raw log dump);
* ``validate [--seed N]`` — run Blink and lint its log;
* ``serve [--listen ADDR ...] [--state-dir DIR]`` — run the live ingest
  server: nodes stream their packed logs in, the server accounts them
  into windowed breakdowns online and answers live queries (see
  :mod:`repro.serve`); with ``--state-dir`` every stream is journaled
  and checkpointed so a restarted server resumes mid-stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ExperimentParameterError, ServeError, SweepError
from repro.experiments import EXPERIMENT_IDS, load_experiment, run_experiment


def _apply_backend(backend):
    """Export the selected analysis backend for everything the command
    runs (experiments resolve ``$REPRO_ANALYSIS_BACKEND`` internally)."""
    if backend is not None:
        import os

        os.environ["REPRO_ANALYSIS_BACKEND"] = backend


def _parse_set_args(pairs, multi_valued: bool):
    """Turn repeated ``--set key=value[,value...]`` flags into a dict."""
    overrides = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key or not raw:
            raise ExperimentParameterError(
                f"bad --set {pair!r}; expected key=value"
                + ("[,value...]" if multi_valued else "")
            )
        if key in overrides:
            raise ExperimentParameterError(f"duplicate --set key {key!r}")
        overrides[key] = raw.split(",") if multi_valued else raw
    return overrides


def _cmd_list(args: argparse.Namespace) -> int:
    for exp_id in EXPERIMENT_IDS:
        module = load_experiment(exp_id)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{exp_id:<24} {summary}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id not in EXPERIMENT_IDS:
        print(f"unknown experiment {args.id!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    overrides = _parse_set_args(args.set, multi_valued=False)
    _apply_backend(args.backend)
    result = run_experiment(args.id, seed=args.seed, overrides=overrides)
    print(result.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.sim.sweep import parse_shard, run_sweep

    if args.id not in EXPERIMENT_IDS:
        print(f"unknown experiment {args.id!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print("--jobs must be 0 (auto) or a worker count", file=sys.stderr)
        return 2
    if args.batch is not None and args.batch < 1:
        print("--batch must be at least 1", file=sys.stderr)
        return 2
    shard = parse_shard(args.shard) if args.shard else None
    overrides = _parse_set_args(args.set, multi_valued=True)
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    cache_dir = args.cache_dir
    if cache_dir is None and not args.no_cache:
        cache_dir = os.environ.get("REPRO_SWEEP_CACHE") or None
    if args.no_cache:
        cache_dir = None
    result = run_sweep(args.id, seeds, overrides, jobs=args.jobs,
                       cache_dir=cache_dir, backend=args.backend,
                       shard=shard, batch=args.batch)
    print(result.render())
    return 0


def _cmd_merge_sweeps(args: argparse.Namespace) -> int:
    from repro.sim.sweep import merge_sweeps

    if args.manifest is not None:
        from repro.sim.campaign import merge_campaign

        result = merge_campaign(
            args.manifest, extra_cache_dirs=args.cache_dir or (),
            jobs=args.jobs, strict=args.strict, backend=args.backend)
        print(result.render())
        return 0
    if args.id is None or not args.cache_dir:
        print("merge-sweeps needs either --manifest M or "
              "<id> --cache-dir DIR", file=sys.stderr)
        return 2
    if args.id not in EXPERIMENT_IDS:
        print(f"unknown experiment {args.id!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2
    overrides = _parse_set_args(args.set, multi_valued=True)
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    result = merge_sweeps(args.id, seeds, overrides,
                          cache_dirs=args.cache_dir, jobs=args.jobs,
                          strict=args.strict, backend=args.backend)
    print(result.render())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.sim import campaign

    if args.campaign_cmd == "plan":
        if args.id not in EXPERIMENT_IDS:
            print(f"unknown experiment {args.id!r}; "
                  f"try: python -m repro list", file=sys.stderr)
            return 2
        if args.seeds < 1:
            print("--seeds must be at least 1", file=sys.stderr)
            return 2
        overrides = _parse_set_args(args.set, multi_valued=True)
        seeds = range(args.seed_base, args.seed_base + args.seeds)
        manifest = campaign.plan_campaign(
            args.id, seeds, overrides, out_path=args.manifest,
            shards=args.shards, workers=args.jobs, batch=args.batch,
            backend=args.backend, deadline_s=args.deadline,
            max_retries=args.max_retries, cache_dir=args.cache_dir)
        print(f"wrote manifest {manifest.path}: "
              f"{len(manifest.grid())} grid points, "
              f"{manifest.shards} shards, cache {manifest.cache_dir!r}")
        return 0
    if args.campaign_cmd in ("run", "resume"):
        def event(line: str) -> None:
            print(line, file=sys.stderr, flush=True)

        result = campaign.run_campaign(args.manifest, on_event=event)
        print(result.render())
        return 0
    if args.campaign_cmd == "status":
        print(campaign.campaign_status(args.manifest).render())
        return 0
    if args.campaign_cmd == "worker":
        from repro.sim.sweep import parse_shard

        index, count = parse_shard(args.shard)
        return campaign.run_worker(args.manifest, index, count)
    raise AssertionError(args.campaign_cmd)  # pragma: no cover


def _cmd_blink(args: argparse.Namespace) -> int:
    from repro.apps.blink import BlinkApp
    from repro.core.report import format_table
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngFactory
    from repro.toolkit.logdump import dump_log
    from repro.tos.node import COMPONENT_NAMES, NodeConfig, QuantoNode
    from repro.units import seconds, to_mj

    _apply_backend(args.backend)
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1),
                      rng_factory=RngFactory(args.seed))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(args.seconds))
    if args.dump:
        from repro.core.logger import iter_entries

        # Streaming dump: entries decode and render one at a time, so a
        # large log never exists as a list of LogEntry objects.
        print(dump_log(iter_entries(node.logger.raw_bytes()),
                       node.registry, COMPONENT_NAMES,
                       limit=args.dump_limit))
        return 0
    emap = node.energy_map()
    rows = [(name, f"{to_mj(e):.2f}")
            for name, e in sorted(emap.energy_by_activity().items())]
    print(format_table(("activity", "E (mJ)"), rows,
                       title=f"Blink, {args.seconds} s, seed {args.seed}"))
    print(f"\n{node.logger.records_written} log entries; accounting "
          f"error {emap.accounting_error * 100:.4f} %")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.apps.blink import BlinkApp
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngFactory
    from repro.toolkit.validate import validate_log
    from repro.tos.node import NodeConfig, QuantoNode
    from repro.units import seconds

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1),
                      rng_factory=RngFactory(args.seed))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(16))
    node.mark_log_end()
    issues = validate_log(node.entries())
    if not issues:
        print("log is clean")
        return 0
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity == "error"]
    return 1 if errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import IngestServer
    from repro.serve.protocol import parse_address

    async def run() -> int:
        server = IngestServer(retain=args.retain,
                              queue_depth=args.queue_depth,
                              state_dir=args.state_dir,
                              checkpoint_bytes=args.checkpoint_bytes,
                              max_streams=args.max_streams)
        if args.state_dir and server.restored:
            print(f"restored {server.restored} node sessions from "
                  f"{args.state_dir}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        for spec in args.listen or ["127.0.0.1:7117"]:
            address = parse_address(spec)
            if isinstance(address, str):
                await server.start_unix(address)
                print(f"listening on unix:{address}", flush=True)
            else:
                host, port = await server.start_tcp(*address)
                # Echo the bound port: --listen :0 picks an ephemeral
                # one, and scripts need to learn it.
                print(f"listening on {host}:{port}", flush=True)
        try:
            await server.serve_forever(stop_after=args.expect_nodes)
        finally:
            await server.close()
        if server.shutdown_requested:
            # Graceful SIGINT/SIGTERM: queues were drained, open
            # decoders finished; leave the final per-node accounting.
            print("shutdown: draining complete", flush=True)
            for line in server.final_stats_lines():
                print(line, flush=True)
        elif args.expect_nodes:
            print(f"served {server.completed} node streams")
        if args.expect_nodes:
            # Scripted runs must not report success when an expected
            # node concluded broken (or never concluded at all).
            bad = [s for s in server.sessions.values()
                   if s.state in ("error", "quarantined")]
            for session in bad:
                print(f"node {session.node_id} ended {session.state}: "
                      f"{session.error}", flush=True)
            if bad or server.completed < args.expect_nodes:
                return 1
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quanto (OSDI 2008) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    backend_kwargs = dict(
        choices=("streaming", "columnar"), default=None,
        help="analysis backend for the log->energy reconstruction "
             "(default: $REPRO_ANALYSIS_BACKEND if set, else streaming; "
             "backends are bit-identical, columnar is faster)")

    p_exp = sub.add_parser("experiment", help="run one experiment")
    p_exp.add_argument("id")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a sweepable parameter (repeatable)")
    p_exp.add_argument("--backend", **backend_kwargs)

    p_sweep = sub.add_parser(
        "sweep", help="run an experiment over many seeds on a worker pool")
    p_sweep.add_argument("id")
    p_sweep.add_argument("--seeds", type=int, default=8,
                         help="number of seeds (default 8)")
    p_sweep.add_argument("--seed-base", type=int, default=0,
                         help="first seed (default 0)")
    p_sweep.add_argument("--batch", type=int, default=None, metavar="K",
                         help="simulate K same-config worlds per process on "
                              "one shared event queue (default 8, or "
                              "REPRO_SWEEP_BATCH; 1 disables batching — "
                              "results are bit-identical either way)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (default 1 = serial; "
                              "0 = auto-detect the CPU count)")
    p_sweep.add_argument("--set", action="append", metavar="KEY=V1[,V2...]",
                         help="sweep a parameter over values (repeatable; "
                              "multiple values form a grid)")
    p_sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache per-point results on disk, keyed by "
                              "(source fingerprint, experiment, seed, "
                              "overrides); re-running an overlapping sweep "
                              "simulates only the new points (default: "
                              "$REPRO_SWEEP_CACHE if set, else no cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the result cache even if "
                              "REPRO_SWEEP_CACHE is set")
    p_sweep.add_argument("--shard", metavar="i/N", default=None,
                         help="run only shard i of an N-way deterministic "
                              "grid partition (0-based; machine i of an "
                              "N-machine campaign — merge the cache dirs "
                              "afterwards with merge-sweeps)")
    p_sweep.add_argument("--backend", **backend_kwargs)

    p_merge = sub.add_parser(
        "merge-sweeps",
        help="fold sharded sweep caches into the full campaign result")
    p_merge.add_argument("id", nargs="?", default=None,
                         help="experiment id (omit with --manifest)")
    p_merge.add_argument("--manifest", metavar="FILE", default=None,
                         help="take the campaign spec (experiment, seeds, "
                              "grid, primary cache dir) from a campaign "
                              "manifest; --strict then also verifies the "
                              "manifest's pinned per-point digests")
    p_merge.add_argument("--seeds", type=int, default=8,
                         help="number of seeds of the campaign grid")
    p_merge.add_argument("--seed-base", type=int, default=0)
    p_merge.add_argument("--set", action="append", metavar="KEY=V1[,V2...]",
                         help="the campaign's parameter grid (must match "
                              "what the shard runs used)")
    p_merge.add_argument("--cache-dir", metavar="DIR", action="append",
                         help="a shard run's cache directory (repeatable; "
                              "points load from the first dir that has "
                              "them; with --manifest these are extras "
                              "after the manifest's own cache dir)")
    p_merge.add_argument("--jobs", type=int, default=1,
                         help="workers for simulating uncovered points "
                              "(non-strict mode only)")
    p_merge.add_argument("--strict", action="store_true",
                         help="fail if any grid point is missing from the "
                              "shard stores instead of simulating it")
    p_merge.add_argument("--backend", **backend_kwargs)

    p_campaign = sub.add_parser(
        "campaign",
        help="fault-tolerant campaign orchestrator (manifest-driven)")
    campaign_sub = p_campaign.add_subparsers(dest="campaign_cmd",
                                             required=True)

    p_cplan = campaign_sub.add_parser(
        "plan", help="validate a campaign spec and write its manifest")
    p_cplan.add_argument("manifest", help="manifest file to write")
    p_cplan.add_argument("id", help="experiment id")
    p_cplan.add_argument("--seeds", type=int, default=8,
                         help="number of seeds (default 8)")
    p_cplan.add_argument("--seed-base", type=int, default=0)
    p_cplan.add_argument("--set", action="append", metavar="KEY=V1[,V2...]",
                         help="sweep a parameter over values (repeatable)")
    p_cplan.add_argument("--shards", type=int, default=1,
                         help="shard count (one worker subprocess per "
                              "shard dispatch; default 1)")
    p_cplan.add_argument("--jobs", type=int, default=0,
                         help="concurrent worker subprocesses (default 0 "
                              "= min(shards, detected CPUs))")
    p_cplan.add_argument("--batch", type=int, default=None, metavar="K",
                         help="worlds per in-process batch inside each "
                              "worker (default: REPRO_SWEEP_BATCH or 8)")
    p_cplan.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-shard straggler deadline: a worker "
                              "running longer gets a speculative backup "
                              "dispatched against it (default: none)")
    p_cplan.add_argument("--max-retries", type=int, default=3,
                         help="re-dispatches per shard beyond the first "
                              "attempt (default 3)")
    p_cplan.add_argument("--cache-dir", metavar="DIR", default="cache",
                         help="shard store directory, relative to the "
                              "manifest's directory (default 'cache')")
    p_cplan.add_argument("--backend", **backend_kwargs)

    for name, help_text in (
        ("run", "run a campaign manifest to completion"),
        ("resume", "resume an interrupted campaign (same as run: stored "
                   "valid points are never re-simulated)"),
        ("status", "report a campaign's stored/verified coverage"),
    ):
        p = campaign_sub.add_parser(name, help=help_text)
        p.add_argument("manifest", help="campaign manifest file")

    p_cworker = campaign_sub.add_parser(
        "worker", help="run one shard of a campaign (spawned by the "
                       "runner; usable manually for debugging)")
    p_cworker.add_argument("manifest", help="campaign manifest file")
    p_cworker.add_argument("--shard", metavar="i/N", required=True,
                           help="shard index / shard count (must match "
                                "the manifest)")

    p_blink = sub.add_parser("blink", help="run Blink and print the map")
    p_blink.add_argument("--seconds", type=int, default=48)
    p_blink.add_argument("--seed", type=int, default=0)
    p_blink.add_argument("--dump", action="store_true",
                         help="print the raw log instead of the map")
    p_blink.add_argument("--dump-limit", type=int, default=60)
    p_blink.add_argument("--backend", **backend_kwargs)

    p_val = sub.add_parser("validate", help="lint a Blink run's log")
    p_val.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve", help="run the live windowed-accounting ingest server")
    p_serve.add_argument("--listen", action="append", metavar="ADDR",
                         help="listen address: host:port, :port, or "
                              "unix:/path (repeatable; default "
                              "127.0.0.1:7117; port 0 picks one and "
                              "prints it)")
    p_serve.add_argument("--retain", type=int, default=64,
                         help="window snapshots kept per node for the "
                              "windows query (default 64)")
    p_serve.add_argument("--queue-depth", type=int, default=32,
                         help="chunks buffered per node stream before "
                              "backpressure (default 32)")
    p_serve.add_argument("--expect-nodes", type=int, default=None,
                         metavar="N",
                         help="exit once N node streams have concluded; "
                              "nonzero exit if any ended failed or "
                              "quarantined (default: serve until "
                              "interrupted)")
    p_serve.add_argument("--state-dir", default=None, metavar="DIR",
                         help="durable ingest: write-ahead journal + "
                              "checkpoints per node under DIR; a "
                              "restarted server resumes every stream "
                              "mid-flight (default: in-memory only)")
    p_serve.add_argument("--checkpoint-bytes", type=int, default=65536,
                         metavar="N",
                         help="checkpoint decoder+accumulator state "
                              "every N journaled stream bytes "
                              "(default 65536)")
    p_serve.add_argument("--max-streams", type=int, default=None,
                         metavar="N",
                         help="shed new node streams past N concurrent "
                              "ones with a retryable NACK (default: "
                              "unlimited)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "merge-sweeps": _cmd_merge_sweeps,
        "campaign": _cmd_campaign,
        "blink": _cmd_blink,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except (ExperimentParameterError, SweepError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
