"""Quanto (OSDI 2008) reproduction: network-wide time and energy profiling
for embedded nodes, on a discrete-event TinyOS-like substrate.

Layers, bottom up:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.hw` — ground-truth hardware models of the HydroWatch
  platform (MCU, radio, flash, sensor, LEDs, timers, SPI).
* :mod:`repro.meter` — the iCount energy meter and a virtual oscilloscope.
* :mod:`repro.net` — the shared 2.4 GHz channel and 802.11 interference.
* :mod:`repro.tos` — the TinyOS-like OS (tasks, timers, arbiters,
  interrupts, Active Messages, MACs, instrumented drivers, node/network
  assembly).
* :mod:`repro.core` — Quanto itself: activity labels and devices, power
  state tracking, the 12-byte logger, the energy-breakdown regression,
  the energy map, windowed (online) accounting, online counters, and
  network-wide merging.
* :mod:`repro.serve` — the live ingest server: framed node streams
  decoded incrementally into windowed accumulators, queryable mid-run.
* :mod:`repro.apps` — the paper's workloads (Blink, Bounce, sense-and-
  send, LPL, the timer leak, the DMA comparison, a flood).
* :mod:`repro.experiments` — one module per table/figure of the paper's
  evaluation, each regenerating its numbers.

Quickstart::

    from repro import Simulator, NodeConfig, QuantoNode
    from repro.apps.blink import BlinkApp
    from repro.units import seconds

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1))
    app = BlinkApp()
    node.boot(app.start)
    sim.run(until=seconds(48))
    print(node.energy_map().energy_by_activity())
"""

from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.activity import MultiActivityDevice, SingleActivityDevice
from repro.core.powerstate import PowerStateTracker, PowerStateVar
from repro.core.logger import (
    LogEntry,
    QuantoLogger,
    WireDecoder,
    decode_log,
    iter_entries,
)
from repro.core.regression import (
    RegressionResult,
    SinkColumn,
    solve_breakdown,
)
from repro.core.timeline import TimelineBuilder, TimelineStream
from repro.core.accounting import (
    EnergyAccumulator,
    EnergyMap,
    WindowSnapshot,
    WindowedAccumulator,
    build_energy_map,
    fold_windows,
    stream_energy_map,
)
from repro.core.counters import CounterAccountant
from repro.core.netmerge import NetworkEnergyReport, merge_energy_maps
from repro.hw.platform import HydrowatchPlatform, PlatformConfig
from repro.tos.node import NodeConfig, QuantoNode
from repro.tos.network import Network

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RngFactory",
    "ActivityLabel",
    "ActivityRegistry",
    "SingleActivityDevice",
    "MultiActivityDevice",
    "PowerStateVar",
    "PowerStateTracker",
    "QuantoLogger",
    "LogEntry",
    "decode_log",
    "iter_entries",
    "WireDecoder",
    "SinkColumn",
    "RegressionResult",
    "solve_breakdown",
    "TimelineBuilder",
    "TimelineStream",
    "EnergyMap",
    "build_energy_map",
    "stream_energy_map",
    "EnergyAccumulator",
    "WindowedAccumulator",
    "WindowSnapshot",
    "fold_windows",
    "CounterAccountant",
    "NetworkEnergyReport",
    "merge_energy_maps",
    "HydrowatchPlatform",
    "PlatformConfig",
    "QuantoNode",
    "NodeConfig",
    "Network",
    "__version__",
]
