"""Offline log tooling — the paper's "set of tools we wrote to parse and
visualize the logs" (§4): human-readable dumps, CSV export, and a log
linter that flags structural problems before analysis."""

from repro.toolkit.logdump import dump_log, export_intervals_csv, export_log_csv
from repro.toolkit.validate import LogIssue, validate_log

__all__ = [
    "dump_log",
    "export_log_csv",
    "export_intervals_csv",
    "validate_log",
    "LogIssue",
]
