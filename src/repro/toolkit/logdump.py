"""Human-readable and CSV views of a Quanto log.

``dump_log`` renders decoded entries one per line with resolved resource
and activity names — the first thing you reach for when a trace looks
wrong.  The CSV exporters feed external tooling (spreadsheets, gnuplot,
pandas) with both the raw event stream and the reconstructed
constant-power intervals.

The entry views consume any *iterable* of decoded entries and render
incrementally: feed them :func:`repro.core.logger.iter_entries` and a
large log dumps without every entry object (or every rendered line's
source) being live at once — only the rendered text accumulates.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional

from repro.core.labels import ActivityLabel, ActivityRegistry
from repro.core.logger import (
    LogEntry,
    TYPE_ACT_ADD,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_ACT_REMOVE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
)
from repro.core.timeline import PowerInterval

_ACTIVITY_TYPES = (TYPE_ACT_CHANGE, TYPE_ACT_BIND, TYPE_ACT_ADD,
                   TYPE_ACT_REMOVE)


def dump_log(
    entries: Iterable[LogEntry],
    registry: Optional[ActivityRegistry] = None,
    component_names: Optional[dict[int, str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Render entries like::

        [   12]     8000123 us  ic=  962301  powerstate  LED0 -> 1
        [   13]     8000225 us  ic=  962301  act_change  CPU  -> 1:Red

    ``entries`` may be a list or a generator (e.g. ``iter_entries``);
    past ``limit`` the remaining entries are counted, not materialized.
    """
    names = component_names or {}
    lines = []
    beyond = 0
    for entry in entries:
        if limit and len(lines) >= limit:
            beyond += 1
            continue
        resource = names.get(entry.res_id, f"res{entry.res_id}")
        if entry.type in _ACTIVITY_TYPES:
            label = ActivityLabel.decode(entry.value)
            value = registry.name_of(label) if registry else str(label)
        else:
            value = str(entry.value)
        lines.append(
            f"[{entry.seq:>6}] {entry.time_us:>12} us  "
            f"ic={entry.icount:>10}  {entry.type_name:<11} "
            f"{resource:<8} -> {value}"
        )
    if beyond:
        lines.append(f"... {beyond} more entries")
    return "\n".join(lines)


def export_log_csv(
    entries: Iterable[LogEntry],
    registry: Optional[ActivityRegistry] = None,
    component_names: Optional[dict[int, str]] = None,
) -> str:
    """The raw event stream as CSV (one row per entry)."""
    names = component_names or {}
    out = io.StringIO()
    out.write("seq,time_us,icount,type,resource,value,value_name\n")
    for entry in entries:
        resource = names.get(entry.res_id, f"res{entry.res_id}")
        if entry.type in _ACTIVITY_TYPES and registry is not None:
            value_name = registry.name_of(ActivityLabel.decode(entry.value))
        else:
            value_name = ""
        out.write(
            f"{entry.seq},{entry.time_us},{entry.icount},"
            f"{entry.type_name},{resource},{entry.value},{value_name}\n"
        )
    return out.getvalue()


def export_intervals_csv(
    intervals: list[PowerInterval],
    energy_per_pulse_j: float,
    component_names: Optional[dict[int, str]] = None,
) -> str:
    """The reconstructed constant-power intervals as CSV: one row per
    interval with dt, energy, mean power, and the full state vector."""
    names = component_names or {}
    res_ids = sorted({rid for iv in intervals for rid, _ in iv.states})
    header_states = ",".join(
        names.get(rid, f"res{rid}") for rid in res_ids)
    out = io.StringIO()
    out.write(f"t0_us,t1_us,dt_us,pulses,energy_uj,power_mw,{header_states}\n")
    for interval in intervals:
        energy = interval.energy_j(energy_per_pulse_j)
        power_mw = (energy / (interval.dt_ns * 1e-9) * 1e3
                    if interval.dt_ns else 0.0)
        states = dict(interval.states)
        row_states = ",".join(str(states.get(rid, "")) for rid in res_ids)
        out.write(
            f"{interval.t0_ns // 1000},{interval.t1_ns // 1000},"
            f"{interval.dt_ns // 1000},{interval.pulses},"
            f"{energy * 1e6:.2f},{power_mw:.4f},{row_states}\n"
        )
    return out.getvalue()
