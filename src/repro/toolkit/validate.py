"""A lint pass over decoded Quanto logs.

Catches the structural problems that silently poison offline analysis:
non-monotone timestamps or meter readings (decoder wrap bugs, clock
resets), missing boot snapshots (unknown initial power-state vector),
redundant records (idempotence violations in a driver), and proxy
activity usage that never got bound to a real activity (either a genuine
false positive — interesting! — or missing instrumentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.labels import ActivityLabel
from repro.core.logger import (
    LogEntry,
    TYPE_ACT_BIND,
    TYPE_ACT_CHANGE,
    TYPE_BOOT,
    TYPE_POWERSTATE,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"


@dataclass(frozen=True)
class LogIssue:
    """One finding."""

    severity: str
    code: str
    message: str
    seq: Optional[int] = None

    def __str__(self) -> str:
        where = f" @seq {self.seq}" if self.seq is not None else ""
        return f"[{self.severity}] {self.code}{where}: {self.message}"


def validate_log(entries: list[LogEntry]) -> list[LogIssue]:
    """Run all checks; returns findings (empty = clean)."""
    issues: list[LogIssue] = []
    if not entries:
        issues.append(LogIssue(SEVERITY_ERROR, "empty-log",
                               "no entries to analyze"))
        return issues
    issues.extend(_check_monotonicity(entries))
    issues.extend(_check_boot_snapshot(entries))
    issues.extend(_check_redundant_powerstates(entries))
    issues.extend(_check_unbound_proxies(entries))
    return issues


def _check_monotonicity(entries: list[LogEntry]) -> list[LogIssue]:
    issues = []
    for prev, entry in zip(entries, entries[1:]):
        if entry.time_us < prev.time_us:
            issues.append(LogIssue(
                SEVERITY_ERROR, "time-regression",
                f"timestamp went backwards: {prev.time_us} -> "
                f"{entry.time_us}", entry.seq))
        if entry.icount < prev.icount:
            issues.append(LogIssue(
                SEVERITY_ERROR, "meter-regression",
                f"iCount went backwards: {prev.icount} -> {entry.icount}",
                entry.seq))
    return issues


def _check_boot_snapshot(entries: list[LogEntry]) -> list[LogIssue]:
    """Power-state sinks should announce an initial value before their
    first transition, or intervals start from guessed state."""
    issues = []
    booted: set[int] = set()
    for entry in entries:
        if entry.type == TYPE_BOOT:
            booted.add(entry.res_id)
        elif entry.type == TYPE_POWERSTATE and entry.res_id not in booted:
            issues.append(LogIssue(
                SEVERITY_WARNING, "no-boot-snapshot",
                f"res {entry.res_id} changes power state without a boot "
                f"record; its initial state is unknown", entry.seq))
            booted.add(entry.res_id)  # report once per resource
    return issues


def _check_redundant_powerstates(entries: list[LogEntry]) -> list[LogIssue]:
    """The PowerState interface is idempotent; a repeated value in the
    log means a driver bypassed it."""
    issues = []
    last: dict[int, int] = {}
    for entry in entries:
        if entry.type != TYPE_POWERSTATE:
            continue
        if last.get(entry.res_id) == entry.value:
            issues.append(LogIssue(
                SEVERITY_WARNING, "redundant-powerstate",
                f"res {entry.res_id} re-recorded state {entry.value}",
                entry.seq))
        last[entry.res_id] = entry.value
    return issues


def _check_unbound_proxies(entries: list[LogEntry]) -> list[LogIssue]:
    """Proxy activity spans that never resolve: either real false
    positives (LPL energy detects with no packet) or instrumentation
    that forgot to bind."""
    issues = []
    # Track, per device, proxy labels that appeared and whether any bind
    # ever resolved them.
    appeared: dict[tuple[int, int], int] = {}  # (res, label) -> count
    bound: set[tuple[int, int]] = set()
    current: dict[int, Optional[ActivityLabel]] = {}
    for entry in entries:
        if entry.type not in (TYPE_ACT_CHANGE, TYPE_ACT_BIND):
            continue
        label = ActivityLabel.decode(entry.value)
        previous = current.get(entry.res_id)
        if entry.type == TYPE_ACT_BIND and previous is not None \
                and previous.is_proxy:
            bound.add((entry.res_id, previous.encode()))
        if label.is_proxy:
            key = (entry.res_id, label.encode())
            appeared[key] = appeared.get(key, 0) + 1
        current[entry.res_id] = label
    for (res_id, encoded), count in sorted(appeared.items()):
        if (res_id, encoded) not in bound:
            label = ActivityLabel.decode(encoded)
            issues.append(LogIssue(
                SEVERITY_INFO, "unbound-proxy",
                f"proxy {label} on res {res_id} appeared {count}x and was "
                f"never bound to a real activity"))
    return issues
