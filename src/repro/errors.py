"""Exception hierarchy for the Quanto reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type.  The names mirror the subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised on misuse of the discrete-event engine (e.g. scheduling in
    the past, running a finished simulator)."""


class HardwareError(ReproError):
    """Raised when a hardware model is driven into an illegal transition
    (e.g. transmitting while the radio regulator is off)."""


class PowerModelError(ReproError):
    """Raised for inconsistent ground-truth power bookkeeping."""


class LoggerError(ReproError):
    """Raised by the Quanto logger (e.g. decoding a corrupt entry)."""


class LogOverflowError(LoggerError):
    """Raised when the fixed RAM log buffer overflows in ``strict`` mode."""


class RegressionError(ReproError):
    """Raised when the energy-breakdown regression cannot be solved
    (e.g. no intervals, or a rank-deficient design matrix in strict mode)."""


class ActivityError(ReproError):
    """Raised on activity-label misuse (bad encoding, unknown ids)."""


class NetworkError(ReproError):
    """Raised by the radio channel / network substrate."""


class AnalysisBackendError(ReproError):
    """Raised when an unknown analysis backend is requested (via the
    ``backend=`` argument, ``--backend``, or ``REPRO_ANALYSIS_BACKEND``)."""


class ExperimentParameterError(ReproError):
    """Raised when an experiment override names an unknown parameter or
    carries a value that cannot be coerced to the parameter's type."""


class SweepError(ReproError):
    """Raised by the sweep runner (bad grid, worker failure, empty sweep)."""


class CampaignError(SweepError):
    """Raised by the campaign orchestrator (bad manifest, exhausted shard
    retries, expected-digest mismatch).  A :class:`SweepError` subclass
    so sweep-layer callers and the CLI need no new catch sites."""


class WindowingError(ReproError):
    """Raised on windowed-accounting misuse (non-positive stride, folding
    an empty window sequence, sliding width not a stride multiple)."""


class ServeError(ReproError):
    """Raised by the live ingest server / client (bad handshake, unknown
    query, protocol violations on a node stream)."""
