"""Fault-injection harness for the campaign/sweep/store stack.

Every recovery path in the fault-tolerant campaign orchestrator
(:mod:`repro.sim.campaign`) and the sweep runner's worker-retry logic
(:mod:`repro.sim.sweep`) is provable only if the faults themselves are
reproducible.  This module is the single injection point: production
code calls :func:`fire` at named **sites**, and an environment-driven
**fault plan** decides whether anything happens there.  With the
environment clean, :func:`fire` is a dictionary miss — the harness costs
nothing in real campaigns.

The plan lives in ``$REPRO_FAULT`` as a comma-separated list of
``action@site[:arg]`` clauses::

    REPRO_FAULT="crash@mid-shard"            # SIGKILL the worker after
                                             # its first stored point
    REPRO_FAULT="crash-runner@mid-shard"     # SIGKILL the campaign
                                             # runner AND the worker
    REPRO_FAULT="raise@pre-store"            # injected OSError before a
                                             # shard-store append
    REPRO_FAULT="sleep@pre-run:2.5"          # straggle 2.5 s before the
                                             # first point
    REPRO_FAULT="exit@point:3"               # plain nonzero exit

Actions: ``crash`` (SIGKILL self — the un-catchable death), ``crash-runner``
(SIGKILL the parent process, then self — how tests and the CI chaos job
take down a campaign runner *and* one of its workers in a single
deterministic stroke), ``exit`` (``os._exit``), ``raise`` (``OSError
EIO``), ``sleep`` (straggler).

Sites are just strings agreed between injector and code; the ones wired
up today:

====================  =====================================================
``pre-run``             campaign worker, before simulating any point
``mid-shard``           campaign worker, right after its first point is
                        stored
``pre-store``           campaign worker, before each shard-store append
``point``               :func:`repro.sim.sweep.run_point`, before the
                        simulation
``serve-journal``       ingest server consumer, before each write-ahead
                        journal append (selector: node id) — ``crash``
                        here is the SIGKILL-mid-stream the serve chaos
                        job recovers from
``serve-checkpoint``    ingest server, before each checkpoint write
                        (selector: node id)
``serve-restore``       ingest server restart, before each journaled
                        node's restore (selector: node id)
====================  =====================================================

Two refinements make chaos deterministic instead of merely chaotic:

* ``$REPRO_FAULT_FUSE=<path>`` — a **fire-once fuse**: the first process
  to fire claims the path with ``O_CREAT|O_EXCL`` and no one ever fires
  again.  A crash that must happen exactly once (so the retry or the
  resumed campaign succeeds) is one env var away, race-free across any
  number of workers.
* ``$REPRO_FAULT_SELECT=<value>`` — fire only where the code passes a
  matching selector (the shard index in campaign workers, the seed in
  ``run_point``), so a fault targets one shard or one grid point.

Also here: the reusable I/O-fault and torn-tail tools the shard-store
tests and the campaign fuzz tests share — :func:`io_faults` wraps
``builtins.open`` so reads/writes of one path fail with ``EIO`` after a
budget, and :func:`tear_tail` truncates a file mid-record the way a
crashed writer does.
"""

from __future__ import annotations

import builtins
import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import CampaignError

#: The fault plan (see module docstring).  Parsed lazily, memoized on the
#: raw string, so `fire` in a clean environment is two dict lookups.
ENV_VAR = "REPRO_FAULT"

#: Fire-once fuse file path; claimed atomically with O_CREAT|O_EXCL.
FUSE_ENV_VAR = "REPRO_FAULT_FUSE"

#: Only fire at sites whose selector stringifies to this value.
SELECT_ENV_VAR = "REPRO_FAULT_SELECT"

ACTIONS = ("crash", "crash-runner", "exit", "raise", "sleep")


@dataclass(frozen=True)
class FaultSpec:
    """One ``action@site[:arg]`` clause of the fault plan."""

    action: str
    site: str
    arg: Optional[str] = None


def parse_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``$REPRO_FAULT`` value; raises :class:`CampaignError` on a
    malformed clause (a typo'd chaos job should fail loudly, not run a
    clean campaign and report vacuous success)."""
    specs = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        action, sep, rest = clause.partition("@")
        if not sep or not rest:
            raise CampaignError(
                f"bad ${ENV_VAR} clause {clause!r}; expected action@site[:arg]")
        site, _, arg = rest.partition(":")
        if action not in ACTIONS:
            raise CampaignError(
                f"bad ${ENV_VAR} action {action!r}; "
                f"known: {', '.join(ACTIONS)}")
        specs.append(FaultSpec(action=action, site=site, arg=arg or None))
    return tuple(specs)


_plan_cache: tuple[str, tuple[FaultSpec, ...]] = ("", ())


def _active_plan() -> tuple[FaultSpec, ...]:
    global _plan_cache
    text = os.environ.get(ENV_VAR, "")
    if text != _plan_cache[0]:
        _plan_cache = (text, parse_plan(text))
    return _plan_cache[1]


def _claim_fuse() -> bool:
    """True if this process may fire: either no fuse is configured, or
    this call atomically claimed it.  A claimed fuse is permanent — the
    crash it guards happens exactly once across every process of a
    campaign, which is what makes chaos runs resumable."""
    fuse = os.environ.get(FUSE_ENV_VAR)
    if not fuse:
        return True
    try:
        fd = os.open(fuse, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unwritable fuse dir: fail safe, never fire
    os.write(fd, f"{os.getpid()}\n".encode("ascii"))
    os.close(fd)
    return True


def fire(site: str, selector: object = None) -> None:
    """Run the fault plan's clauses for ``site`` (usually: do nothing).

    ``selector`` is the call site's identity (shard index, seed); with
    ``$REPRO_FAULT_SELECT`` set, only matching sites fire.  Depending on
    the action this call may not return (crash/exit), may raise
    ``OSError``, or may just sleep.
    """
    plan = _active_plan()
    if not plan:
        return
    select = os.environ.get(SELECT_ENV_VAR)
    for spec in plan:
        if spec.site != site:
            continue
        if select is not None and selector is not None \
                and str(selector) != select:
            continue
        if not _claim_fuse():
            continue
        _execute(spec, site)


def _execute(spec: FaultSpec, site: str) -> None:
    if spec.action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.action == "crash-runner":
        # The chaos-job primitive: take down the campaign runner *and*
        # this worker with one deterministic stroke (parent first, so
        # the runner cannot observe our death and react).
        os.kill(os.getppid(), signal.SIGKILL)
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.action == "exit":
        os._exit(int(spec.arg or 3))
    elif spec.action == "raise":
        raise OSError(errno.EIO, f"injected fault at {site}")
    elif spec.action == "sleep":
        time.sleep(float(spec.arg or 1.0))


# -- reusable I/O fault tools ------------------------------------------------


def tear_tail(path, drop: int = 7) -> None:
    """Truncate the last ``drop`` bytes of ``path`` — the on-disk shape
    of a writer crashing mid-append (a torn record tail)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fileobj:
        fileobj.truncate(max(0, size - drop))


class _BudgetedFile:
    """A real file object whose reads/writes draw from shared budgets and
    then fail with ``EIO`` — the shape of a transient NFS hiccup."""

    def __init__(self, fileobj, state):
        self._file = fileobj
        self._state = state

    def read(self, *args):
        state = self._state
        if state["armed"]:
            if state["reads"] is not None:
                if state["reads"] <= 0:
                    raise OSError(errno.EIO, "injected read fault")
                state["reads"] -= 1
        return self._file.read(*args)

    def write(self, *args):
        state = self._state
        if state["armed"]:
            if state["writes"] is not None:
                if state["writes"] <= 0:
                    raise OSError(errno.EIO, "injected write fault")
                state["writes"] -= 1
        return self._file.write(*args)

    def __getattr__(self, name):
        return getattr(self._file, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return self._file.__exit__(*exc)


@contextmanager
def io_faults(path, reads: Optional[int] = None,
              writes: Optional[int] = None) -> Iterator[dict]:
    """Within the context, binary opens of ``path`` return files whose
    reads (after ``reads`` successes) and/or writes (after ``writes``)
    raise ``EIO``.  Budgets are shared across every open of the path —
    one injector models one flaky device, however many descriptors touch
    it.  Yields the mutable budget state; set ``state["armed"] = False``
    to heal the device mid-test.
    """
    real_open = builtins.open
    state = {"path": str(path), "reads": reads, "writes": writes,
             "armed": True}

    def faulty_open(file, mode="r", *args, **kwargs):
        fileobj = real_open(file, mode, *args, **kwargs)
        if state["armed"] and str(file) == state["path"] and "b" in mode:
            return _BudgetedFile(fileobj, state)
        return fileobj

    builtins.open = faulty_open
    try:
        yield state
    finally:
        builtins.open = real_open
