"""Fleet-scale sweep runner: many seeds, many parameter points, one report.

A *sweep* executes one experiment over a grid of (seed, parameter-override)
points — serially or on a ``multiprocessing`` worker pool — and reduces the
per-point results into a single :class:`SweepResult`:

* mean / stddev / 95 % CI for every numeric quantity the experiment
  reports (energy per (component, activity), regression coefficients,
  model-vs-meter errors, …— anything in ``ExperimentResult.data``);
* paper-vs-measured comparisons averaged over the fleet;
* a per-point digest table plus one combined sweep digest.

Aggregation is *streaming*: worker results are folded into running
Welford mean/variance state (plus min/max) in grid order as they arrive,
and each point's payload is dropped as soon as it is folded — the runner
retains one :class:`PointSummary` (describe + digest + wall time) per
point, so a campaign's memory footprint is independent of how much data
each experiment reports or how large the grid is.

Re-running overlapping campaigns is cheap: pass ``cache_dir`` and every
finished point is written to a **digest-keyed on-disk cache**.  A point's
key is the sha256 of (cache format, a fingerprint of the ``repro``
source tree, experiment id, seed, overrides) — so a second identical
sweep simulates nothing, a grid extension simulates only the new points,
and *any* source change invalidates every prior entry automatically.
Physically the cache is one packed append-only **shard store** per
experiment (:mod:`repro.sim.shardstore`): struct-framed, optionally
zlib-compressed JSON payloads behind an index file, so a warm rerun
folds points with one seek+read each instead of an open/parse/close per
file, and a whole campaign's cache travels as two files.  A point folded
from cache is byte-identical to the freshly simulated one (the per-point
digests in the report let anyone re-verify).

Campaigns shard across machines with zero coordination:
``run_sweep(..., shard=(i, N))`` (CLI ``--shard i/N``) runs the i-th
deterministic slice of the canonical grid into its own cache dir, and
:func:`merge_sweeps` (CLI ``merge-sweeps``) folds any collection of
shard stores back in canonical grid order — byte-identical, digest for
digest, to the unsharded run.

Determinism is the design center, not an afterthought:

* a point is *fully* described by ``(exp_id, seed, overrides)`` — workers
  share no state, inherit no RNG, and each run derives every random
  stream from its own seed (see :mod:`repro.sim.rng`);
* results are folded in grid order regardless of which worker finished
  first (``imap`` preserves dispatch order), so serial and parallel
  execution are verifiably byte-identical — same per-point digests, same
  aggregates (``tests/test_determinism.py`` proves it; the CI smoke
  sweep re-checks on every push).

Grid points run via :func:`repro.experiments.run_experiment`, so override
validation and type coercion happen once, up front, before any worker is
forked — a bad ``--set`` key fails in milliseconds, not after a fleet ran.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

import traceback

from repro.core.accounting import BACKEND_ENV_VAR, resolve_analysis_backend
from repro.core.report import format_table
from repro.errors import SweepError
from repro.experiments.common import (
    blink_batch_plan, experiment_params, run_experiment,
)
from repro.sim import faultinject
from repro.sim.shardstore import ShardStore

#: Start method for worker processes.  ``fork`` is preferred: workers
#: inherit the warm interpreter (no re-import cost) and since every
#: experiment seeds itself from its point, inherited state cannot leak
#: into results.  Platforms without ``fork`` fall back to ``spawn``.
DEFAULT_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: Bump when the cached payload layout changes; old entries then miss.
CACHE_FORMAT = 1


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the campaign grid.

    ``overrides`` is a sorted tuple of raw ``(key, value-string)`` pairs —
    hashable, picklable, and parsed identically wherever the point runs.
    """

    exp_id: str
    seed: int
    overrides: tuple[tuple[str, str], ...] = ()

    def describe(self) -> str:
        if not self.overrides:
            return f"seed={self.seed}"
        joined = " ".join(f"{k}={v}" for k, v in self.overrides)
        return f"seed={self.seed} {joined}"


@dataclass
class PointResult:
    """What one grid point produced (the picklable reduction payload).

    Folded into the running aggregates and then dropped; only a
    :class:`PointSummary` survives in the sweep report.
    """

    point: SweepPoint
    data: dict[str, Any]
    comparisons: list[tuple[str, float, float]]
    digest: str  # sha256 of the rendered experiment output
    wall_s: float
    from_cache: bool = False

    @property
    def seed(self) -> int:
        return self.point.seed


@dataclass(frozen=True)
class PointSummary:
    """The per-point residue kept after folding: identity + provenance."""

    point: SweepPoint
    digest: str
    wall_s: float
    from_cache: bool = False

    @property
    def seed(self) -> int:
        return self.point.seed


@dataclass(frozen=True)
class MetricStats:
    """Mean/spread of one numeric quantity across the fleet."""

    name: str
    n: int
    mean: float
    stddev: float  # sample stddev (ddof=1); 0 for a single point
    ci95: float  # normal-approximation 95 % half-width of the mean
    min: float
    max: float


@dataclass(frozen=True)
class ComparisonStats:
    """A paper-vs-measured comparison averaged over the fleet."""

    name: str
    paper: float
    mean: float
    stddev: float


# -- streaming aggregation --------------------------------------------------


class RunningStat:
    """Welford's online mean/variance plus min/max — O(1) state per
    metric, numerically stable, and deterministic for a fixed fold
    order (the runner always folds in grid order)."""

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def stddev(self) -> float:
        if self.n <= 1:
            return 0.0
        return math.sqrt(self._m2 / (self.n - 1))

    @property
    def ci95(self) -> float:
        if self.n <= 1:
            return 0.0
        return 1.96 * self.stddev / math.sqrt(self.n)

    def stats(self, name: str) -> MetricStats:
        return MetricStats(
            name=name, n=self.n, mean=self.mean, stddev=self.stddev,
            ci95=self.ci95, min=self.min, max=self.max,
        )


class SweepAggregator:
    """Folds :class:`PointResult` payloads into running fleet statistics.

    One instance per campaign; :meth:`fold` is called once per point in
    grid order, after which the point's payload can be dropped.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, RunningStat] = {}
        self._comparison_order: list[str] = []
        self._comparison_paper: dict[str, float] = {}
        self._comparisons: dict[str, RunningStat] = {}

    def fold(self, result: PointResult) -> None:
        for name, value in numeric_leaves(result.data).items():
            stat = self._metrics.get(name)
            if stat is None:
                stat = self._metrics[name] = RunningStat()
            stat.add(value)
        for name, paper, value in result.comparisons:
            stat = self._comparisons.get(name)
            if stat is None:
                stat = self._comparisons[name] = RunningStat()
                self._comparison_order.append(name)
                self._comparison_paper[name] = paper
            stat.add(value)

    def metrics(self) -> list[MetricStats]:
        return [self._metrics[name].stats(name)
                for name in sorted(self._metrics)]

    def comparisons(self) -> list[ComparisonStats]:
        stats = []
        for name in self._comparison_order:
            stat = self._comparisons[name]
            stats.append(ComparisonStats(
                name=name, paper=self._comparison_paper[name],
                mean=stat.mean, stddev=stat.stddev,
            ))
        return stats


@dataclass
class SweepResult:
    """The aggregated outcome of a whole campaign."""

    exp_id: str
    points: list[PointSummary]
    jobs: int
    wall_s: float
    metrics: list[MetricStats] = field(default_factory=list)
    comparisons: list[ComparisonStats] = field(default_factory=list)
    cache_dir: Optional[str] = None
    cache_hits: int = 0
    backend: Optional[str] = None  # analysis backend, when explicitly set
    shard: Optional[tuple[int, int]] = None  # (index, count) when sharded
    grid_points: Optional[int] = None  # full grid size (for shard headers)
    batch: int = 1  # worlds per in-process batch (1 = unbatched)

    @property
    def seeds(self) -> list[int]:
        return [point.seed for point in self.points]

    @property
    def simulated(self) -> int:
        """Points actually run this campaign (not served from cache)."""
        return len(self.points) - self.cache_hits

    @property
    def serial_wall_s(self) -> float:
        """Sum of per-point wall times (the serial-execution estimate;
        cached points contribute their originally recorded time)."""
        return math.fsum(point.wall_s for point in self.points)

    def digest(self) -> str:
        """One hash over all per-point digests, in grid order."""
        hasher = hashlib.sha256()
        for point in self.points:
            hasher.update(point.point.describe().encode("utf-8"))
            hasher.update(point.digest.encode("ascii"))
        return hasher.hexdigest()

    def metric(self, name: str) -> MetricStats:
        for stats in self.metrics:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def render(self) -> str:
        mode = f"parallel x{self.jobs}" if self.jobs > 1 else "serial"
        header = [
            f"== sweep: {self.exp_id} over {len(self.points)} points ==",
            f"-- mode: {mode}; wall {self.wall_s:.2f} s "
            f"(serial estimate {self.serial_wall_s:.2f} s)",
        ]
        if self.shard is not None:
            index, count = self.shard
            total = self.grid_points if self.grid_points is not None else "?"
            header.append(
                f"-- shard: {index}/{count} "
                f"({len(self.points)} of {total} grid points)")
        if self.backend is not None:
            header.append(f"-- analysis backend: {self.backend}")
        if self.cache_dir is not None:
            header.append(
                f"-- cache: {self.cache_hits} reused, "
                f"{self.simulated} simulated ({self.cache_dir})"
            )
        header.append(f"-- sweep digest: {self.digest()}")
        parts = ["\n".join(header)]
        if self.metrics:
            rows = [
                (stats.name, str(stats.n), f"{stats.mean:.6g}",
                 f"{stats.stddev:.3g}", f"{stats.ci95:.3g}",
                 f"{stats.min:.6g}", f"{stats.max:.6g}")
                for stats in self.metrics
            ]
            parts.append(format_table(
                ("metric", "n", "mean", "stddev", "ci95", "min", "max"),
                rows, title="aggregate metrics"))
        if self.comparisons:
            rows = []
            for comp in self.comparisons:
                ratio = f"{comp.mean / comp.paper:.3f}" if comp.paper else "-"
                rows.append((comp.name, f"{comp.paper:g}",
                             f"{comp.mean:.4g}", f"{comp.stddev:.3g}", ratio))
            parts.append(format_table(
                ("metric", "paper", "mean", "stddev", "ratio"), rows,
                title="paper vs measured (fleet mean)"))
        rows = [
            (point.point.describe(), point.digest[:16],
             f"{point.wall_s:.3f}",
             "cache" if point.from_cache else "run")
            for point in self.points
        ]
        parts.append(format_table(
            ("point", "digest", "wall (s)", "source"), rows,
            title="per-point digests"))
        return "\n\n".join(parts)


# -- on-disk result cache ---------------------------------------------------


_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file (path + contents).

    The cache-invalidation rule: a cached point is valid only for the
    exact source tree that produced it.  Editing *any* module — an
    experiment, a driver, the simulator — changes the fingerprint and
    every prior cache entry silently misses.  Computed once per process.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
        _code_fingerprint_cache = hasher.hexdigest()
    return _code_fingerprint_cache


#: With this env var truthy, every store (not just the first per run)
#: re-parses its JSON payload to prove the round-trip is lossless — the
#: debug mode of the identity check below.
CACHE_VERIFY_ENV_VAR = "REPRO_CACHE_VERIFY"


class SweepCache:
    """Digest-keyed per-point result store under one directory.

    Layout: one packed :class:`~repro.sim.shardstore.ShardStore` per
    experiment — ``<root>/<exp_id>.shard`` plus its ``.idx`` accelerator
    — holding JSON point payloads under the same 32-byte keys as ever
    (format version, code fingerprint, exp_id, seed, overrides all
    hashed in, so any source edit still auto-invalidates).  The cache is
    strictly best-effort: loads tolerate missing or torn records and
    stores tolerate unwritable targets (both just miss — a broken cache
    slows a campaign down, never kills or corrupts it).

    Round-trip identity: a cache hit must fold the same bytes a fresh
    run would have.  ``json.dumps``/``loads`` is lossless for the JSON
    types experiments report, so the expensive proof (re-parsing every
    payload on store — O(payload) per point) runs **once per process**
    as a canary; set ``$REPRO_CACHE_VERIFY=1`` to check every store
    while debugging an experiment that emits exotic payloads.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._stores: dict[str, ShardStore] = {}

    def point_key(self, point: SweepPoint) -> str:
        # JSON-encode the identity so delimiter characters inside
        # override values can never collide two distinct points.
        identity = json.dumps(
            [CACHE_FORMAT, code_fingerprint(), point.exp_id, point.seed,
             [[key, value] for key, value in point.overrides]],
            separators=(",", ":"),
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def _store_for(self, exp_id: str) -> ShardStore:
        store = self._stores.get(exp_id)
        if store is None:
            store = ShardStore(self.root / f"{exp_id}.shard")
            self._stores[exp_id] = store
        return store

    def _raw_key(self, point: SweepPoint) -> bytes:
        return bytes.fromhex(self.point_key(point))

    def refresh(self) -> None:
        """Drop cached index state so the next probe re-reads disk —
        how the campaign runner observes points its worker processes
        appended after this object last looked."""
        for store in self._stores.values():
            store.refresh()

    def has(self, point: SweepPoint) -> bool:
        """Index probe (no payload read) — used to plan the pool before
        any payload is held in memory."""
        try:
            return self._store_for(point.exp_id).has(self._raw_key(point))
        except OSError:  # pragma: no cover - stat trouble = miss
            return False

    def load(self, point: SweepPoint) -> Optional[PointResult]:
        raw = self._store_for(point.exp_id).load(self._raw_key(point))
        if raw is None:
            return None
        try:
            payload = json.loads(raw)
            return PointResult(
                point=point,
                data=payload["data"],
                comparisons=[tuple(c) for c in payload["comparisons"]],
                digest=payload["digest"],
                wall_s=payload["wall_s"],
                from_cache=True,
            )
        except (ValueError, KeyError, TypeError):
            return None

    _roundtrip_verified = False  # class-wide once-per-process canary

    def store(self, result: PointResult) -> bool:
        payload = {
            "describe": result.point.describe(),
            "data": result.data,
            "comparisons": [list(c) for c in result.comparisons],
            "digest": result.digest,
            "wall_s": result.wall_s,
        }
        try:
            text = json.dumps(payload)
        except (TypeError, ValueError):
            return False  # non-JSON payload: run it fresh every time
        if not SweepCache._roundtrip_verified \
                or os.environ.get(CACHE_VERIFY_ENV_VAR):
            if json.loads(text) != payload:
                # Lossy round-trip would break hit/miss identity.
                return False
            SweepCache._roundtrip_verified = True
        return self._store_for(result.point.exp_id).store(
            self._raw_key(result.point), text.encode("utf-8"))


# -- grid -----------------------------------------------------------------


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse an ``i/N`` shard spec (``0/4`` … ``3/4``) into (index, count).

    Zero-based: shard ``i`` of ``N`` owns the grid points whose canonical
    index ≡ i (mod N).
    """
    index_str, sep, count_str = spec.partition("/")
    try:
        if not sep:
            raise ValueError(spec)
        index, count = int(index_str), int(count_str)
    except ValueError:
        raise SweepError(
            f"bad shard spec {spec!r}; expected i/N, e.g. 0/4") from None
    if count < 1 or not 0 <= index < count:
        raise SweepError(
            f"bad shard spec {spec!r}: need 0 <= i < N, got i={index} N={count}")
    return index, count


def shard_points(
    points: Sequence[SweepPoint], index: int, count: int,
) -> list[SweepPoint]:
    """Shard ``index`` of ``count``'s slice of the canonical grid.

    Round-robin over the canonical (seed-major) grid order: point ``k``
    belongs to shard ``k mod count``.  The partition is a pure function
    of the grid — every point lands in exactly one shard, shards of one
    campaign never overlap, and their union is the grid — so N machines
    can each run ``--shard i/N`` against the same spec with no
    coordination and :func:`merge_sweeps` can fold the stores back into
    the exact unsharded result.  Round-robin (rather than contiguous
    blocks) balances seed-correlated cost gradients across shards.
    """
    if count < 1 or not 0 <= index < count:
        raise SweepError(f"bad shard: need 0 <= i < N, got i={index} N={count}")
    return list(points[index::count])


def expand_grid(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[SweepPoint]:
    """Cross seeds with every combination of override values.

    ``overrides`` maps parameter name to the list of values it sweeps
    over.  Points come out in deterministic order: seed-major, then the
    cartesian product of override values in key order.  Keys and values
    are validated against the experiment's parameters before anything
    runs.
    """
    params = experiment_params(exp_id)
    overrides = overrides or {}
    for key, values in overrides.items():
        param = params.get(key)
        if param is None:
            known = ", ".join(sorted(params)) or "(none)"
            raise SweepError(
                f"experiment {exp_id!r} has no parameter {key!r}; "
                f"sweepable parameters: {known}"
            )
        if not values:
            raise SweepError(f"parameter {key!r} has no values to sweep")
        for value in values:
            param.parse(value)  # fail fast on a bad grid, pre-fork

    combos: list[tuple[tuple[str, str], ...]] = [()]
    for key in sorted(overrides):
        combos = [
            combo + ((key, str(value)),)
            for combo in combos
            for value in overrides[key]
        ]
    seeds = list(seeds)
    if not seeds:
        raise SweepError("a sweep needs at least one seed")
    return [
        SweepPoint(exp_id=exp_id, seed=int(seed), overrides=combo)
        for seed in seeds
        for combo in combos
    ]


# -- execution ------------------------------------------------------------


def run_point(point: SweepPoint) -> PointResult:
    """Execute one grid point (the worker function; must stay module-level
    so it pickles for the pool)."""
    faultinject.fire("point", selector=point.seed)
    start = time.perf_counter()
    result = run_experiment(
        point.exp_id, seed=point.seed, overrides=dict(point.overrides)
    )
    text = result.render()
    return PointResult(
        point=point,
        data=result.data,
        comparisons=list(result.comparisons),
        digest=hashlib.sha256(text.encode("utf-8")).hexdigest(),
        wall_s=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class PointFailure:
    """What a pool worker sends back instead of raising: the failed
    point plus the formatted worker-side traceback.  Raising inside a
    worker would abort the whole ``imap`` stream mid-campaign; this
    travels as an ordinary result so the parent can retry the one point
    in-process and keep every other worker's output."""

    point: SweepPoint
    error: str
    worker_traceback: str = ""


#: In-process retry budget for a point whose worker failed (exception or
#: death).  Override with ``$REPRO_SWEEP_POINT_RETRIES``.
DEFAULT_POINT_RETRIES = 2

POINT_RETRIES_ENV_VAR = "REPRO_SWEEP_POINT_RETRIES"


def _point_retries() -> int:
    raw = os.environ.get(POINT_RETRIES_ENV_VAR, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise SweepError(
                f"${POINT_RETRIES_ENV_VAR} must be an integer, got {raw!r}")
    return DEFAULT_POINT_RETRIES


def _run_point_fresh(point: SweepPoint) -> PointResult:
    """One retry attempt with every world cache dropped and warm start
    disabled: a point that failed in a worker must not inherit whatever
    half-mutated world state the failure may have left behind."""
    from repro.experiments.common import (
        WARM_START_ENV_VAR, clear_batch_worlds, clear_warm_worlds,
    )

    previous = os.environ.get(WARM_START_ENV_VAR)
    os.environ[WARM_START_ENV_VAR] = "0"
    clear_warm_worlds()
    clear_batch_worlds()
    try:
        return run_point(point)
    finally:
        if previous is None:
            del os.environ[WARM_START_ENV_VAR]
        else:
            os.environ[WARM_START_ENV_VAR] = previous


def _retry_failed_point(point: SweepPoint, first_error: str,
                        worker_traceback: str = "") -> PointResult:
    """Re-run a failed point in-process (fresh world each attempt); after
    the retry budget, raise naming the point and every error seen."""
    errors = [first_error]
    for _attempt in range(_point_retries()):
        try:
            return _run_point_fresh(point)
        except Exception as exc:  # noqa: BLE001 - the retry boundary
            errors.append(f"{type(exc).__name__}: {exc}")
    detail = "; then ".join(errors)
    trace = f"\nworker traceback:\n{worker_traceback}" \
        if worker_traceback else ""
    raise SweepError(
        f"grid point [{point.describe()}] of {point.exp_id} failed "
        f"{len(errors)} times ({detail}){trace}"
    )


def _iter_points_guarded(
    points: Sequence[SweepPoint], batch: int,
) -> Iterator[PointResult]:
    """The in-process executor with the same retry contract as the pool:
    a point that raises is re-run on a fresh world up to the retry
    budget, and only then aborts the sweep with its ``describe()``."""
    position = 0
    while position < len(points):
        remaining = points[position:]
        iterator = (_iter_points_batched(remaining, batch) if batch > 1
                    else map(run_point, remaining))
        try:
            for result in iterator:
                position += 1
                yield result
        except Exception as exc:  # noqa: BLE001 - the retry boundary
            point = points[position]
            yield _retry_failed_point(
                point, f"{type(exc).__name__}: {exc}",
                traceback.format_exc())
            position += 1


def _run_point_indexed(
    item: tuple[int, SweepPoint],
) -> tuple[int, Union[PointResult, PointFailure]]:
    """Pool worker wrapper: tag each result with its grid index so the
    parent can re-order ``imap_unordered`` output deterministically.
    Exceptions become :class:`PointFailure` payloads — a worker must
    never abort the shared stream."""
    index, point = item
    try:
        return index, run_point(point)
    except Exception as exc:  # noqa: BLE001 - serialized for the parent
        return index, PointFailure(
            point=point, error=f"{type(exc).__name__}: {exc}",
            worker_traceback=traceback.format_exc())


#: Default worlds-per-batch for the in-process executor.  K=8 amortizes
#: per-point loop entry and decode without holding more than a handful
#: of worlds live; override per campaign with ``batch=``/``--batch`` or
#: process-wide with ``$REPRO_SWEEP_BATCH``.
DEFAULT_BATCH_K = 8

BATCH_ENV_VAR = "REPRO_SWEEP_BATCH"


def resolve_batch(batch: Optional[int]) -> int:
    """The effective worlds-per-batch: an explicit argument wins, then
    ``$REPRO_SWEEP_BATCH``, then the default.  Values below 1 clamp to
    1 (unbatched)."""
    if batch is None:
        raw = os.environ.get(BATCH_ENV_VAR, "").strip()
        if raw:
            try:
                batch = int(raw)
            except ValueError:
                raise SweepError(
                    f"${BATCH_ENV_VAR} must be an integer, got {raw!r}")
        else:
            batch = DEFAULT_BATCH_K
    return max(1, int(batch))


def _batch_plans(
    points: Sequence[SweepPoint], k: int,
) -> list[Optional[tuple[int, ...]]]:
    """Per-point batch plans: group the points by configuration (same
    experiment, same overrides), chunk each group into runs of ``k``
    consecutive points, and give each chunk head the chunk's seed list.
    Non-heads get ``None`` — their worlds come from the pool the head's
    batch filled.  Batching only changes wall time: every point's
    digest is identical to its serial run (``tests/test_batched.py``).
    """
    plans: list[Optional[tuple[int, ...]]] = [None] * len(points)
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(
            (point.exp_id, point.overrides), []).append(index)
    for indices in groups.values():
        for start in range(0, len(indices), k):
            chunk = indices[start:start + k]
            if len(chunk) > 1:
                plans[chunk[0]] = tuple(
                    points[index].seed for index in chunk)
    return plans


def _iter_points_batched(
    points: Sequence[SweepPoint], k: int,
) -> Iterator[PointResult]:
    """The in-process batched executor: run the points in order, with
    each chunk head announcing its chunk's seeds so ``run_blink``
    simulates the whole chunk as one interleaved batch."""
    plans = _batch_plans(points, k)
    for point, plan in zip(points, plans):
        if plan is not None:
            with blink_batch_plan(plan):
                yield run_point(point)
        else:
            yield run_point(point)


def _run_chunk_batched(
    item: tuple[list[tuple[int, SweepPoint]], int],
) -> list[tuple[int, Union[PointResult, PointFailure]]]:
    """Pool worker wrapper for batched dispatch: a worker receives a
    whole chunk of index-tagged points and batches within it, so the
    K-world amortization survives fan-out.  A point that raises becomes
    a :class:`PointFailure` in place; the rest of the chunk still runs
    (batch siblings of a failed head fall back to their serial path)."""
    pairs, k = item
    points = [point for _, point in pairs]
    plans = _batch_plans(points, k)
    out: list[tuple[int, Union[PointResult, PointFailure]]] = []
    for (index, point), plan in zip(pairs, plans):
        try:
            if plan is not None:
                with blink_batch_plan(plan):
                    out.append((index, run_point(point)))
            else:
                out.append((index, run_point(point)))
        except Exception as exc:  # noqa: BLE001 - serialized for the parent
            out.append((index, PointFailure(
                point=point, error=f"{type(exc).__name__}: {exc}",
                worker_traceback=traceback.format_exc())))
    return out


#: How long to block on the pool's result stream before checking the
#: workers' health.  Purely a liveness knob: results arriving faster are
#: delivered immediately; the poll only bounds how long a dead worker
#: can go unnoticed.
_POOL_POLL_S = 0.1


def _pool_pids(pool) -> Optional[frozenset]:
    """The pool's current worker pids, or None where the stdlib hides
    them.  ``Pool`` transparently *replaces* a dead worker (so its exit
    is invisible afterwards) but the task the worker held is lost
    forever — the pid set changing is the one observable symptom."""
    procs = getattr(pool, "_pool", None)
    if procs is None:  # pragma: no cover - stdlib internals moved
        return None
    try:
        return frozenset(proc.pid for proc in procs)
    except Exception:  # pragma: no cover - stdlib internals moved
        return None


def _robust_pool_stream(
    context,
    misses: Sequence[SweepPoint],
    jobs: int,
    batch: int,
    chunksize: int,
    initializer,
    initargs,
) -> Iterator[tuple[int, PointResult]]:
    """Yield ``(grid index, result)`` for every miss off a worker pool,
    surviving both worker-side exceptions and worker death.

    Exceptions arrive as :class:`PointFailure` payloads and are retried
    in-process on a fresh world (see :func:`_retry_failed_point`).
    Death — SIGKILL, OOM, a segfaulting extension — is nastier: the
    stdlib pool silently replaces the process, and the task it was
    holding never produces a result, so a plain ``for`` over ``imap``
    blocks forever.  This stream polls with a timeout, watches the
    worker pid set, and on a change stops trusting the pool: it scoops
    whatever results are already queued, terminates the pool, and runs
    every point still missing in-process.  Either way the caller sees
    exactly one result per miss.
    """
    done: set[int] = set()

    def deliver(item):
        pairs = item if isinstance(item, list) else [item]
        for index, payload in pairs:
            if isinstance(payload, PointFailure):
                payload = _retry_failed_point(
                    payload.point, payload.error, payload.worker_traceback)
            done.add(index)
            yield index, payload

    with context.Pool(processes=jobs, initializer=initializer,
                      initargs=initargs or ()) as pool:
        if batch > 1:
            # Batched dispatch ships whole chunks so each worker can
            # run its K-world batches; the flattened index-tagged
            # stream feeds the same re-ordering buffer.
            indexed = list(enumerate(misses))
            chunks = [
                (indexed[start:start + chunksize], batch)
                for start in range(0, len(indexed), chunksize)
            ]
            unordered = pool.imap_unordered(
                _run_chunk_batched, chunks, chunksize=1)
            expected = len(chunks)
        else:
            unordered = pool.imap_unordered(
                _run_point_indexed, enumerate(misses), chunksize=chunksize)
            expected = len(misses)
        baseline = _pool_pids(pool)
        received = 0
        broken = False
        while received < expected:
            try:
                item = unordered.next(timeout=_POOL_POLL_S)
            except StopIteration:
                break
            except multiprocessing.TimeoutError:
                current = _pool_pids(pool)
                if baseline is not None and current is not None \
                        and current != baseline:
                    broken = True
                    break
                continue
            received += 1
            yield from deliver(item)
        if broken:
            # Scoop results that landed before the death was noticed so
            # only truly lost points re-run; one quiet poll ends the
            # scoop (anything a live worker finishes after that is
            # merely recomputed in-process — wasteful, never wrong).
            while True:
                try:
                    item = unordered.next(timeout=_POOL_POLL_S)
                except (StopIteration, multiprocessing.TimeoutError):
                    break
                yield from deliver(item)
    # The pool is torn down; whatever never arrived runs here, on fresh
    # in-process worlds, with the same capped retry budget.
    for index in range(len(misses)):
        if index not in done:
            yield index, _retry_failed_point(
                misses[index],
                "pool worker died before returning this point")


def _seed_worker_fingerprint(fingerprint: str) -> None:
    """Pool initializer: install the parent's precomputed source-tree
    fingerprint so no worker ever re-hashes the whole tree (inherited
    for free under ``fork``; shipped explicitly for ``spawn``)."""
    global _code_fingerprint_cache
    _code_fingerprint_cache = fingerprint


def _in_grid_index_order(
    unordered: Iterator[tuple[int, PointResult]],
    total: int,
) -> Iterator[PointResult]:
    """Re-order index-tagged results into grid order.

    ``imap_unordered`` hands results back the moment any worker finishes
    — no head-of-line blocking, which is what makes chunked dispatch
    cheap — and this buffer restores the deterministic fold order.  The
    buffer holds only results that arrived ahead of their turn (bounded
    by how far the fastest worker runs ahead, at most the grid)."""
    buffered: dict[int, PointResult] = {}
    next_index = 0
    for index, result in unordered:
        buffered[index] = result
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
    if next_index != total or buffered:  # pragma: no cover - pool bug guard
        raise SweepError(
            f"worker pool returned {next_index}+{len(buffered)} results "
            f"for {total} dispatched points"
        )


def _merge_in_grid_order(
    points: Sequence[SweepPoint],
    hits: Sequence[bool],
    cache: Optional["SweepCache"],
    fresh: Iterator[PointResult],
) -> Iterator[PointResult]:
    """Interleave cached and freshly simulated results back into grid
    order (``fresh`` yields misses in their dispatch order, which is the
    grid order of the misses).  Cached payloads load lazily, one at a
    time, so a warm rerun never holds more than the point being folded;
    an entry that probed present but fails to parse (corrupt file) is
    simulated inline — a slow point, never a lost campaign."""
    for index, point in enumerate(points):
        if hits[index]:
            result = cache.load(point)
            yield result if result is not None else run_point(point)
        else:
            yield next(fresh)


def run_sweep(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
    jobs: int = 1,
    start_method: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    backend: Optional[str] = None,
    shard: Optional[tuple[int, int]] = None,
    batch: Optional[int] = None,
) -> SweepResult:
    """Run a campaign and aggregate it, streaming.

    ``jobs <= 1`` runs in-process (the serial reference); ``jobs > 1``
    fans points out to a worker pool; ``jobs == 0`` auto-detects the
    usable CPU count (the scheduling affinity mask where the platform
    exposes one, so a containerized run sized to 2 cores gets 2 workers,
    not the host's 64).  Either way the per-point payloads are identical
    and are folded in grid order — the pool only changes wall time.

    With ``cache_dir`` set, previously simulated points load from the
    digest-keyed packed store and only the rest are dispatched; fresh
    results are stored back for the next campaign.

    ``shard=(i, N)`` runs only shard ``i``'s deterministic slice of the
    grid (see :func:`shard_points`) — the multi-machine campaign
    building block: give every machine the same spec plus its own shard
    index and cache dir, then fold the stores with :func:`merge_sweeps`.

    ``backend`` selects the analysis backend for every point: it is
    exported as ``$REPRO_ANALYSIS_BACKEND`` for the duration of the
    campaign (child processes inherit the parent environment under
    every start method) and restored afterwards.  The channel is
    process-global, so concurrent sweeps with *different* explicit
    backends from threads of one process are unsupported — though by
    the bit-identity contract their results could not differ anyway.
    Per-point digests — and therefore cache keys — do not depend on the
    backend; a cached sweep folds the same bytes whichever backend
    produced them.
    """
    if backend is not None:
        backend = resolve_analysis_backend(backend)
        previous_env = os.environ.get(BACKEND_ENV_VAR)
        os.environ[BACKEND_ENV_VAR] = backend
    try:
        result = _run_sweep_inner(
            exp_id, seeds, overrides, jobs=jobs,
            start_method=start_method, cache_dir=cache_dir, shard=shard,
        )
    finally:
        if backend is not None:
            if previous_env is None:
                del os.environ[BACKEND_ENV_VAR]
            else:
                os.environ[BACKEND_ENV_VAR] = previous_env
    result.backend = backend
    return result


def detect_jobs() -> int:
    """Usable worker count: the CPU affinity mask's size where the OS
    has one (cgroup/taskset-limited CI boxes), else ``os.cpu_count()``.
    Raw ``cpu_count`` oversubscribes containerized runners — it reports
    the host's cores no matter how few the container may schedule on."""
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            usable = len(affinity(0))
            if usable > 0:
                return usable
        except OSError:  # pragma: no cover - exotic platform trouble
            pass
    return os.cpu_count() or 1


def _run_sweep_inner(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
    jobs: int = 1,
    start_method: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    shard: Optional[tuple[int, int]] = None,
    cache: Optional["SweepCache"] = None,
    batch: Optional[int] = None,
) -> SweepResult:
    batch = resolve_batch(batch)
    grid = expand_grid(exp_id, seeds, overrides)
    points = grid if shard is None else shard_points(grid, *shard)
    start = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir)
    # Plan with a cheap existence probe; payloads load one at a time
    # during the fold, so a warm rerun stays as lean as a cold one.
    hits = [cache is not None and cache.has(point) for point in points]
    misses = [point for point, hit in zip(points, hits) if not hit]
    if jobs == 0:
        jobs = detect_jobs()
    # jobs records how the campaign actually ran (for the provenance
    # header): the pool is never wider than the work, and a fully-cached
    # or jobs<=1 campaign runs in-process.
    jobs = max(1, min(jobs, len(misses))) if misses else 1

    aggregator = SweepAggregator()
    summaries: list[PointSummary] = []

    def fold(result: PointResult) -> None:
        aggregator.fold(result)
        if cache is not None and not result.from_cache:
            cache.store(result)
        summaries.append(PointSummary(
            point=result.point, digest=result.digest,
            wall_s=result.wall_s, from_cache=result.from_cache,
        ))

    if jobs == 1:
        fresh = _iter_points_guarded(misses, batch)
        for result in _merge_in_grid_order(points, hits, cache, fresh):
            fold(result)
    else:
        context = multiprocessing.get_context(
            start_method or DEFAULT_START_METHOD
        )
        # The source-tree fingerprint is computed once, here in the
        # parent, *before* the fork — workers inherit it (fork) or get
        # it via the initializer (spawn) instead of each hashing the
        # whole tree on their first cache store.
        initializer = initargs = None
        if cache is not None:
            initializer = _seed_worker_fingerprint
            initargs = (code_fingerprint(),)
        # Chunked dispatch over one persistent pool: simulation points
        # are a few milliseconds each, so per-point IPC dominated the
        # old chunksize=1 dispatch (the 0.8x "speedup" of PR 2's bench).
        # Chunks amortize the round-trips, imap_unordered removes
        # head-of-line blocking between chunks, and the grid-index
        # re-ordering buffer restores the deterministic fold order.
        # ~jobs*4 chunks in total (about 4 per worker) keeps the tail
        # balanced when point durations are uneven (long seeds, heavy
        # override combos).
        chunksize = max(1, len(misses) // (jobs * 4))
        unordered = _robust_pool_stream(
            context, misses, jobs, batch, chunksize, initializer, initargs)
        fresh = _in_grid_index_order(unordered, len(misses))
        for result in _merge_in_grid_order(points, hits, cache, fresh):
            fold(result)
    wall_s = time.perf_counter() - start
    return SweepResult(
        exp_id=exp_id, points=summaries, jobs=jobs, wall_s=wall_s,
        metrics=aggregator.metrics(),
        comparisons=aggregator.comparisons(),
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        cache_hits=sum(1 for s in summaries if s.from_cache),
        shard=shard,
        grid_points=len(grid),
        batch=batch,
    )


# -- multi-machine merge ----------------------------------------------------


class _UnionCache:
    """Read-through union of several shard stores: loads probe the dirs
    in the order given (first hit wins), stores go to the first — so a
    non-strict merge leaves the primary store covering the whole grid."""

    def __init__(self, caches: Sequence[SweepCache]) -> None:
        self.caches = list(caches)

    def has(self, point: SweepPoint) -> bool:
        return any(cache.has(point) for cache in self.caches)

    def load(self, point: SweepPoint) -> Optional[PointResult]:
        for cache in self.caches:
            result = cache.load(point)
            if result is not None:
                return result
        return None

    def store(self, result: PointResult) -> bool:
        return self.caches[0].store(result)


def merge_sweeps(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
    cache_dirs: Sequence[Union[str, Path]] = (),
    jobs: int = 1,
    strict: bool = False,
    backend: Optional[str] = None,
) -> SweepResult:
    """Fold N shard runs' stores into the unsharded campaign result.

    Re-expands the canonical grid for the spec and folds every point's
    cached payload — wherever it lives among ``cache_dirs`` — through
    the same Welford aggregation, **in canonical grid order**.  Because
    the fold order and the per-point bytes are exactly those of an
    unsharded run, the merged aggregates, per-point digests, and sweep
    digest are byte-identical to running the whole campaign on one
    machine (and to merging the same stores in any directory order —
    a point's payload is the same bytes in whichever store holds it).

    Points no store covers are simulated here (and written back to the
    first store) unless ``strict`` is set, in which case missing
    coverage raises :class:`SweepError` naming the gap — the mode for a
    merge host that must not silently absorb a lost shard.
    """
    if not cache_dirs:
        raise SweepError("merge needs at least one cache directory")
    seeds = list(seeds)
    union = _UnionCache([SweepCache(directory) for directory in cache_dirs])
    if strict:
        grid = expand_grid(exp_id, seeds, overrides)
        missing = [p for p in grid if not union.has(p)]
        if missing:
            shown = ", ".join(p.describe() for p in missing[:5])
            more = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
            raise SweepError(
                f"strict merge: {len(missing)} of {len(grid)} grid points "
                f"missing from the shard stores: {shown}{more}"
            )
    label = " + ".join(str(directory) for directory in cache_dirs)
    if backend is not None:
        backend = resolve_analysis_backend(backend)
        previous_env = os.environ.get(BACKEND_ENV_VAR)
        os.environ[BACKEND_ENV_VAR] = backend
    try:
        result = _run_sweep_inner(
            exp_id, seeds, overrides, jobs=jobs, cache_dir=label,
            cache=union,
        )
    finally:
        if backend is not None:
            if previous_env is None:
                del os.environ[BACKEND_ENV_VAR]
            else:
                os.environ[BACKEND_ENV_VAR] = previous_env
    result.backend = backend
    return result


# -- aggregation ----------------------------------------------------------


def numeric_leaves(data: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts of numbers into dotted-path leaves.

    Non-numeric leaves (strings, arrays, objects) are skipped — they are
    per-run artifacts, not fleet statistics.
    """
    leaves: dict[str, float] = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            leaves[path] = float(value)
        elif isinstance(value, Mapping):
            leaves.update(numeric_leaves(value, prefix=f"{path}."))
    return leaves


def aggregate_metrics(results: Sequence[PointResult]) -> list[MetricStats]:
    """Mean/stddev/CI for every numeric leaf present in any point (the
    batch wrapper over :class:`SweepAggregator`)."""
    aggregator = SweepAggregator()
    for result in results:
        aggregator.fold(result)
    return aggregator.metrics()


def aggregate_comparisons(
    results: Sequence[PointResult],
) -> list[ComparisonStats]:
    """Fleet means of the paper-vs-measured comparisons, in the order the
    experiment reports them."""
    aggregator = SweepAggregator()
    for result in results:
        aggregator.fold(result)
    return aggregator.comparisons()
