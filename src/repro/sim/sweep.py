"""Fleet-scale sweep runner: many seeds, many parameter points, one report.

A *sweep* executes one experiment over a grid of (seed, parameter-override)
points — serially or on a ``multiprocessing`` worker pool — and reduces the
per-point results into a single :class:`SweepResult`:

* mean / stddev / 95 % CI for every numeric quantity the experiment
  reports (energy per (component, activity), regression coefficients,
  model-vs-meter errors, …— anything in ``ExperimentResult.data``);
* paper-vs-measured comparisons averaged over the fleet;
* a per-point digest table plus one combined sweep digest.

Determinism is the design center, not an afterthought:

* a point is *fully* described by ``(exp_id, seed, overrides)`` — workers
  share no state, inherit no RNG, and each run derives every random
  stream from its own seed (see :mod:`repro.sim.rng`);
* results are reduced in grid order regardless of which worker finished
  first, and per-point payloads are hashed, so serial and parallel
  execution are verifiably byte-identical (``tests/test_determinism.py``
  proves it; the per-point digests in the report let anyone re-check);
* aggregation uses ``math.fsum``, so reduction order can never leak into
  the reported statistics.

Grid points run via :func:`repro.experiments.run_experiment`, so override
validation and type coercion happen once, up front, before any worker is
forked — a bad ``--set`` key fails in milliseconds, not after a fleet ran.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.core.report import format_table
from repro.errors import SweepError
from repro.experiments.common import experiment_params, run_experiment

#: Start method for worker processes.  ``fork`` is preferred: workers
#: inherit the warm interpreter (no re-import cost) and since every
#: experiment seeds itself from its point, inherited state cannot leak
#: into results.  Platforms without ``fork`` fall back to ``spawn``.
DEFAULT_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the campaign grid.

    ``overrides`` is a sorted tuple of raw ``(key, value-string)`` pairs —
    hashable, picklable, and parsed identically wherever the point runs.
    """

    exp_id: str
    seed: int
    overrides: tuple[tuple[str, str], ...] = ()

    def describe(self) -> str:
        if not self.overrides:
            return f"seed={self.seed}"
        joined = " ".join(f"{k}={v}" for k, v in self.overrides)
        return f"seed={self.seed} {joined}"


@dataclass
class PointResult:
    """What one grid point produced (the picklable reduction payload)."""

    point: SweepPoint
    data: dict[str, Any]
    comparisons: list[tuple[str, float, float]]
    digest: str  # sha256 of the rendered experiment output
    wall_s: float

    @property
    def seed(self) -> int:
        return self.point.seed


@dataclass(frozen=True)
class MetricStats:
    """Mean/spread of one numeric quantity across the fleet."""

    name: str
    n: int
    mean: float
    stddev: float  # sample stddev (ddof=1); 0 for a single point
    ci95: float  # normal-approximation 95 % half-width of the mean
    min: float
    max: float


@dataclass(frozen=True)
class ComparisonStats:
    """A paper-vs-measured comparison averaged over the fleet."""

    name: str
    paper: float
    mean: float
    stddev: float


@dataclass
class SweepResult:
    """The aggregated outcome of a whole campaign."""

    exp_id: str
    points: list[PointResult]
    jobs: int
    wall_s: float
    metrics: list[MetricStats] = field(default_factory=list)
    comparisons: list[ComparisonStats] = field(default_factory=list)

    @property
    def seeds(self) -> list[int]:
        return [point.seed for point in self.points]

    @property
    def serial_wall_s(self) -> float:
        """Sum of per-point wall times (the serial-execution estimate)."""
        return math.fsum(point.wall_s for point in self.points)

    def digest(self) -> str:
        """One hash over all per-point digests, in grid order."""
        hasher = hashlib.sha256()
        for point in self.points:
            hasher.update(point.point.describe().encode("utf-8"))
            hasher.update(point.digest.encode("ascii"))
        return hasher.hexdigest()

    def metric(self, name: str) -> MetricStats:
        for stats in self.metrics:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def render(self) -> str:
        mode = f"parallel x{self.jobs}" if self.jobs > 1 else "serial"
        header = [
            f"== sweep: {self.exp_id} over {len(self.points)} points ==",
            f"-- mode: {mode}; wall {self.wall_s:.2f} s "
            f"(serial estimate {self.serial_wall_s:.2f} s)",
            f"-- sweep digest: {self.digest()}",
        ]
        parts = ["\n".join(header)]
        if self.metrics:
            rows = [
                (stats.name, str(stats.n), f"{stats.mean:.6g}",
                 f"{stats.stddev:.3g}", f"{stats.ci95:.3g}",
                 f"{stats.min:.6g}", f"{stats.max:.6g}")
                for stats in self.metrics
            ]
            parts.append(format_table(
                ("metric", "n", "mean", "stddev", "ci95", "min", "max"),
                rows, title="aggregate metrics"))
        if self.comparisons:
            rows = []
            for comp in self.comparisons:
                ratio = f"{comp.mean / comp.paper:.3f}" if comp.paper else "-"
                rows.append((comp.name, f"{comp.paper:g}",
                             f"{comp.mean:.4g}", f"{comp.stddev:.3g}", ratio))
            parts.append(format_table(
                ("metric", "paper", "mean", "stddev", "ratio"), rows,
                title="paper vs measured (fleet mean)"))
        rows = [
            (point.point.describe(), point.digest[:16],
             f"{point.wall_s:.3f}")
            for point in self.points
        ]
        parts.append(format_table(
            ("point", "digest", "wall (s)"), rows, title="per-point digests"))
        return "\n\n".join(parts)


# -- grid -----------------------------------------------------------------


def expand_grid(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[SweepPoint]:
    """Cross seeds with every combination of override values.

    ``overrides`` maps parameter name to the list of values it sweeps
    over.  Points come out in deterministic order: seed-major, then the
    cartesian product of override values in key order.  Keys and values
    are validated against the experiment's parameters before anything
    runs.
    """
    params = experiment_params(exp_id)
    overrides = overrides or {}
    for key, values in overrides.items():
        param = params.get(key)
        if param is None:
            known = ", ".join(sorted(params)) or "(none)"
            raise SweepError(
                f"experiment {exp_id!r} has no parameter {key!r}; "
                f"sweepable parameters: {known}"
            )
        if not values:
            raise SweepError(f"parameter {key!r} has no values to sweep")
        for value in values:
            param.parse(value)  # fail fast on a bad grid, pre-fork

    combos: list[tuple[tuple[str, str], ...]] = [()]
    for key in sorted(overrides):
        combos = [
            combo + ((key, str(value)),)
            for combo in combos
            for value in overrides[key]
        ]
    seeds = list(seeds)
    if not seeds:
        raise SweepError("a sweep needs at least one seed")
    return [
        SweepPoint(exp_id=exp_id, seed=int(seed), overrides=combo)
        for seed in seeds
        for combo in combos
    ]


# -- execution ------------------------------------------------------------


def run_point(point: SweepPoint) -> PointResult:
    """Execute one grid point (the worker function; must stay module-level
    so it pickles for the pool)."""
    start = time.perf_counter()
    result = run_experiment(
        point.exp_id, seed=point.seed, overrides=dict(point.overrides)
    )
    text = result.render()
    return PointResult(
        point=point,
        data=result.data,
        comparisons=list(result.comparisons),
        digest=hashlib.sha256(text.encode("utf-8")).hexdigest(),
        wall_s=time.perf_counter() - start,
    )


def run_sweep(
    exp_id: str,
    seeds: Iterable[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
    jobs: int = 1,
    start_method: Optional[str] = None,
) -> SweepResult:
    """Run a campaign and aggregate it.

    ``jobs <= 1`` runs in-process (the serial reference); ``jobs > 1``
    fans points out to a worker pool.  Either way the per-point payloads
    are identical — the pool only changes wall time.
    """
    points = expand_grid(exp_id, seeds, overrides)
    start = time.perf_counter()
    # jobs records how the campaign actually ran (for the provenance
    # header): the pool is never wider than the grid, and a single-point
    # or jobs<=1 campaign runs serially in-process.
    jobs = max(1, min(jobs, len(points)))
    if jobs == 1:
        results = [run_point(point) for point in points]
    else:
        context = multiprocessing.get_context(
            start_method or DEFAULT_START_METHOD
        )
        with context.Pool(processes=jobs) as pool:
            # chunksize=1: points can have very uneven durations (long
            # seeds, heavy override combos); fine-grained dispatch keeps
            # the fleet busy.  map() preserves grid order on collect.
            results = pool.map(run_point, points, chunksize=1)
    wall_s = time.perf_counter() - start
    sweep = SweepResult(
        exp_id=exp_id, points=results, jobs=jobs, wall_s=wall_s,
    )
    sweep.metrics = aggregate_metrics(results)
    sweep.comparisons = aggregate_comparisons(results)
    return sweep


# -- aggregation ----------------------------------------------------------


def numeric_leaves(data: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts of numbers into dotted-path leaves.

    Non-numeric leaves (strings, arrays, objects) are skipped — they are
    per-run artifacts, not fleet statistics.
    """
    leaves: dict[str, float] = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            leaves[path] = float(value)
        elif isinstance(value, Mapping):
            leaves.update(numeric_leaves(value, prefix=f"{path}."))
    return leaves


def _stats(name: str, values: Sequence[float]) -> MetricStats:
    n = len(values)
    mean = math.fsum(values) / n
    if n > 1:
        variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(variance)
        ci95 = 1.96 * stddev / math.sqrt(n)
    else:
        stddev = 0.0
        ci95 = 0.0
    return MetricStats(
        name=name, n=n, mean=mean, stddev=stddev, ci95=ci95,
        min=min(values), max=max(values),
    )


def aggregate_metrics(results: Sequence[PointResult]) -> list[MetricStats]:
    """Mean/stddev/CI for every numeric leaf present in any point."""
    values: dict[str, list[float]] = {}
    for result in results:
        for name, value in numeric_leaves(result.data).items():
            values.setdefault(name, []).append(value)
    return [_stats(name, values[name]) for name in sorted(values)]


def aggregate_comparisons(
    results: Sequence[PointResult],
) -> list[ComparisonStats]:
    """Fleet means of the paper-vs-measured comparisons, in the order the
    experiment reports them."""
    order: list[str] = []
    paper_values: dict[str, float] = {}
    measured: dict[str, list[float]] = {}
    for result in results:
        for name, paper, value in result.comparisons:
            if name not in measured:
                order.append(name)
                paper_values[name] = paper
                measured[name] = []
            measured[name].append(value)
    stats = []
    for name in order:
        s = _stats(name, measured[name])
        stats.append(ComparisonStats(
            name=name, paper=paper_values[name],
            mean=s.mean, stddev=s.stddev,
        ))
    return stats
