"""Batched execution: K independent worlds on one shared calendar queue.

A sweep point is a few milliseconds of work, so the per-point fixed
costs — entering and leaving the event loop, per-world decode, pool
dispatch — are real money at campaign scale.  :class:`BatchSimulator`
runs K *independent* :class:`~repro.sim.engine.Simulator` worlds
interleaved on a single shared calendar queue, amortizing the loop and
letting the analysis layer decode all K logs in one fused pass
(:func:`repro.core.logger.decode_batch`).

Correctness argument (the per-world runs are **bit-identical** to their
serial counterparts, gated by ``tests/test_batched.py``):

* Worlds never interact: every event belongs to exactly one world (its
  ``Event._sim`` tag), callbacks only touch that world's state, and rng
  streams are per-world objects.
* Per-world virtual time is preserved: the shared queue pops in global
  ``(time, FIFO-within-timestamp)`` order and sets the owning world's
  clock to the event time before firing, so a world's clock takes
  exactly the same sequence of values as in its serial run.  A firing
  world only ever schedules at or after its own clock, which equals the
  global pop time, so the global queue never needs to travel backwards.
* Per-world event order is preserved: attaching gives world ``i`` the
  disjoint sequence-number range ``[i << 40, (i+1) << 40)``, so within a
  world the shared queue's ``(time, seq)`` order is exactly the serial
  ``(time, seq)`` order (a monotone relabeling), and bucket FIFO order
  restricted to one world is that world's scheduling order.  Worlds
  interleave *between* each other at equal timestamps, which no world
  can observe.

The queue structures (bucket dict, bucket-time heap, overflow heap) are
literally shared between the attached simulators — ``Simulator.at``
needs no batch-awareness; it just appends into whatever structures its
instance holds.  ``attach()`` requires idle, empty-queue (freshly
reset) worlds; ``detach()`` hands each world its still-queued events
back as a private overflow heap so post-run steps (``mark_log_end``,
further serial running) behave exactly as after a serial run.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.sim.engine import NEAR_WINDOW_NS, Simulator

#: Width of one world's private sequence-number range.  A 48-second run
#: schedules a few hundred thousand events; 2^40 leaves six orders of
#: magnitude of headroom while keeping K * 2^40 far below 2^63.
WORLD_SEQ_STRIDE = 1 << 40


class BatchSimulator:
    """Drive K attached worlds to a common horizon on one shared queue."""

    def __init__(self, sims: Sequence[Simulator]) -> None:
        if not sims:
            raise SimulationError("a batch needs at least one world")
        if len(set(map(id, sims))) != len(sims):
            raise SimulationError("duplicate world in batch")
        self._sims: tuple[Simulator, ...] = tuple(sims)
        self._attached = False
        self._buckets: dict = {}
        self._times: list = []
        self._overflow: list = []
        self._horizon = NEAR_WINDOW_NS

    # -- attach / detach -------------------------------------------------

    def attach(self) -> None:
        """Splice the worlds onto one shared queue.

        Every world must be idle with an empty queue (i.e. freshly
        ``reset()``) — attach happens *before* boot, so all scheduling,
        from the boot task on, lands in the shared structures.
        """
        if self._attached:
            raise SimulationError("batch already attached")
        for sim in self._sims:
            if sim._running:
                raise SimulationError("cannot attach a running simulator")
            if getattr(sim, "_batch", None) is not None:
                raise SimulationError("simulator already in a batch")
            if sim._live or sim._buckets or sim._overflow:
                raise SimulationError(
                    "cannot attach a simulator with queued events; "
                    "reset it first")
        self._buckets = {}
        self._times = []
        self._overflow = []
        self._horizon = NEAR_WINDOW_NS
        for index, sim in enumerate(self._sims):
            sim._buckets = self._buckets
            sim._times = self._times
            sim._overflow = self._overflow
            sim._seq = index * WORLD_SEQ_STRIDE
            sim._horizon = self._horizon
            sim._batch = self
        self._attached = True

    def detach(self) -> None:
        """Give each world its queued events back as private structures.

        Remaining events keep their ``(time, seq)`` order per world (the
        global seq is monotone in each world's scheduling order), so a
        detached world continues exactly as if it had run serially: its
        leftovers sit in its own overflow heap and migrate into fresh
        buckets on the next run.
        """
        if not self._attached:
            raise SimulationError("batch is not attached")
        per_world: dict[int, list] = {id(sim): [] for sim in self._sims}
        for bucket in self._buckets.values():
            for event in bucket:
                if event.alive:
                    per_world[id(event._sim)].append(
                        (event.time, event.seq, event))
        for time_ns, seq, event in self._overflow:
            if event.alive:
                per_world[id(event._sim)].append((time_ns, seq, event))
        for sim in self._sims:
            leftovers = per_world[id(sim)]
            heapify(leftovers)
            sim._buckets = {}
            sim._times = []
            sim._overflow = leftovers
            sim._horizon = NEAR_WINDOW_NS
            sim._batch = None
        self._buckets = {}
        self._times = []
        self._overflow = []
        self._attached = False

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        """Run all worlds' events in global ``(time, FIFO)`` order.

        Mirrors :meth:`Simulator.run` (same fused peek/pop loop over the
        calendar-queue/heap hybrid) with the single addition that each
        fire first sets the owning world's clock.  At the end every
        world's clock is advanced to ``until``, exactly as its own
        ``run(until=...)`` would have done.
        """
        if not self._attached:
            raise SimulationError("batch is not attached")
        for sim in self._sims:
            if sim._running:
                raise SimulationError(
                    "simulator is already running (reentrant run)")
        for sim in self._sims:
            sim._running = True
        times = self._times
        buckets = self._buckets
        try:
            while True:
                if times:
                    time_ns = times[0]
                    bucket = buckets[time_ns]
                    while bucket:
                        event = bucket[0]
                        if event.alive:
                            break
                        del bucket[0]
                    if not bucket:
                        heappop(times)
                        del buckets[time_ns]
                        continue
                elif self._overflow:
                    self._advance_horizon()
                    continue
                else:
                    break
                if until is not None and time_ns > until:
                    break
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[time_ns]
                event._queued = False
                world = event._sim
                world._live -= 1
                world._now = time_ns
                world._events_executed += 1
                event.fn(*event.args)
        finally:
            for sim in self._sims:
                sim._running = False
        if until is not None:
            for sim in self._sims:
                if until > sim._now:
                    sim._now = until

    def _advance_horizon(self) -> None:
        """Buckets are dry: advance the shared horizon past the overflow
        head and migrate, then mirror the new horizon into every world
        so their ``at()`` keeps a consistent bucket/overflow split."""
        overflow = self._overflow
        horizon = overflow[0][0] + NEAR_WINDOW_NS
        buckets = self._buckets
        times = self._times
        while overflow and overflow[0][0] < horizon:
            time_ns, _, event = heappop(overflow)
            bucket = buckets.get(time_ns)
            if bucket is None:
                buckets[time_ns] = [event]
                heappush(times, time_ns)
            else:
                bucket.append(event)
        self._horizon = horizon
        for sim in self._sims:
            sim._horizon = horizon
