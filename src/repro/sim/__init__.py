"""Discrete-event simulation kernel.

The kernel is deliberately tiny: a priority queue of timestamped callbacks
with deterministic FIFO tie-breaking, plus seeded per-component random
streams.  Everything else in the library (hardware models, the OS layer,
the radio channel) is built as callbacks on this engine.

The fleet layer lives in :mod:`repro.sim.sweep` (imported on demand — it
pulls in the experiment stack, which this package deliberately does not).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngFactory

__all__ = ["Event", "Simulator", "RngFactory"]
