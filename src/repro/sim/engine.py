"""The discrete-event engine.

Time is an integer count of nanoseconds.  Events scheduled for the same
timestamp run in the order they were scheduled (FIFO), which makes runs
bit-for-bit reproducible.  An event can be cancelled; cancellation is lazy
(the heap entry is flagged dead and skipped when popped).

Hot-path notes: the heap stores ``(time, seq, event)`` triples so that
``heapq`` orders entries with C-level integer comparisons instead of
calling a Python ``__lt__`` per comparison — on event-dense runs (a
48-second Blink run schedules tens of thousands of events; a 32-seed
sweep multiplies that) this is the single biggest win.  :class:`Event`
objects are pure handles and are deliberately *never* recycled into a
pool: a handle stays valid after its event fires, so ``cancel()`` on an
already-popped event is always a safe no-op rather than a use-after-reuse
hazard.  Determinism beats the last few allocations.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.at` /
    :meth:`Simulator.after`; keep it if you may need to cancel.

    The handle outlives its firing: cancelling an event that already ran
    (or was already cancelled) is harmless.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "cancelled"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name} {state}>"


class Simulator:
    """Event queue plus the simulation clock.

    Typical use::

        sim = Simulator()
        sim.after(units.ms(10), callback, arg1)
        sim.run(until=units.seconds(48))
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._running = False
        self._events_executed = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of event callbacks executed so far (for diagnostics)."""
        return self._events_executed

    # -- scheduling ----------------------------------------------------

    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time_ns} ns, already at "
                f"t={self._now} ns"
            )
        time_ns = int(time_ns)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_ns, seq, fn, args)
        heapq.heappush(self._queue, (time_ns, seq, event))
        return event

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at ``now + delay_ns``."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns} ns")
        return self.at(self._now + int(delay_ns), fn, *args)

    def call_now(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after events already
        queued for this instant (a 'soon' hook, used for deferred signals)."""
        return self.at(self._now, fn, *args)

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Run the next live event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time_ns, _, event = heapq.heappop(queue)
            if not event.alive:
                continue
            self._now = time_ns
            self._events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        ``until`` — stop once the next event lies beyond this time and set
        the clock to exactly ``until`` (so integrators can flush to the end
        of the window).  ``max_events`` — safety valve for runaway loops.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                time_ns, _, event = queue[0]
                if not event.alive:
                    heappop(queue)
                    continue
                if until is not None and time_ns > until:
                    break
                heappop(queue)
                self._now = time_ns
                self._events_executed += 1
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now} ns"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for _, _, event in self._queue if event.alive)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} ns, {self.pending()} pending>"
