"""The discrete-event engine.

Time is an integer count of nanoseconds.  Events scheduled for the same
timestamp run in the order they were scheduled (FIFO), which makes runs
bit-for-bit reproducible.  An event can be cancelled; cancellation is lazy
(the entry is flagged dead and skipped when its time comes).

Hot-path notes: the queue is a **calendar-queue / heap hybrid** rather
than a single binary heap.  Embedded workloads schedule in two distinct
regimes: a dense near-term cloud (job completions a few cycles out,
deferred signals at the current instant) and a sparse far future (the
next timer wakeup, seconds away).  The queue therefore keeps near-term
events in exact-timestamp FIFO buckets (a dict keyed by time, plus a
small heap of distinct bucket times) and far-future events in an
overflow heap of ``(time, seq)`` pairs; when the near window drains, the
horizon advances and the overflow migrates forward in ``(time, seq)``
order, which provably preserves the global FIFO-within-timestamp
contract (see ``tests/test_sim_engine.py`` and the golden digests in
``tests/test_golden_digests.py``).  Same-instant events — the common
case inside one CPU wakeup — cost one dict hit and a list append instead
of an O(log n) sift, and cancelled events are dropped without ever
touching the heap.

:class:`Event` objects are pure handles and are deliberately *never*
recycled into a pool: a handle stays valid after its event fires, so
``cancel()`` on an already-popped event is always a safe no-op rather
than a use-after-reuse hazard.  Determinism beats the last few
allocations.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Width of the near-term bucket window, in nanoseconds.  Events within
#: this horizon of the queue head live in exact-timestamp buckets; later
#: ones wait in the overflow heap.  One millisecond covers a whole CPU
#: wakeup's burst of job completions (1 cycle = 1 us) while keeping the
#: far-future timer arms out of the bucket index.
NEAR_WINDOW_NS = 1_000_000


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.at` /
    :meth:`Simulator.after`; keep it if you may need to cancel.

    The handle outlives its firing: cancelling an event that already ran
    (or was already cancelled) is harmless.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive", "_sim", "_queued")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any],
                 args: tuple, sim: "Simulator"):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self._sim = sim
        self._queued = True

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes."""
        self.alive = False
        if self._queued:
            # Still sitting in the queue: it no longer counts as pending.
            # (After firing, _queued is False, so a late cancel is a pure
            # flag flip with no accounting effect.)
            self._queued = False
            self._sim._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "cancelled"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name} {state}>"


class Simulator:
    """Event queue plus the simulation clock.

    Typical use::

        sim = Simulator()
        sim.after(units.ms(10), callback, arg1)
        sim.run(until=units.seconds(48))
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        # Calendar part: exact-timestamp FIFO buckets for events with
        # time < _horizon, plus a heap of the distinct bucket times.
        self._buckets: dict[int, list[Event]] = {}
        self._times: list[int] = []
        # Overflow part: (time, seq, event) heap for time >= _horizon.
        self._overflow: list[tuple[int, int, Event]] = []
        self._horizon = NEAR_WINDOW_NS
        self._live = 0  # alive events currently queued (O(1) pending())
        self._running = False
        self._events_executed = 0
        # Set while attached to a BatchSimulator (the queue structures
        # are then shared with the other attached worlds); run()/step()
        # refuse to drive a shared queue with a single world's clock.
        self._batch = None

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of event callbacks executed so far (for diagnostics)."""
        return self._events_executed

    # -- scheduling ----------------------------------------------------

    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        # Coerce before the guard: a float like now - 0.5 must not slip
        # past the comparison and then truncate to a time in the past.
        time_ns = int(time_ns)
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time_ns} ns, already at "
                f"t={self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_ns, seq, fn, args, self)
        self._live += 1
        if time_ns < self._horizon:
            bucket = self._buckets.get(time_ns)
            if bucket is None:
                self._buckets[time_ns] = [event]
                heappush(self._times, time_ns)
            else:
                bucket.append(event)
        else:
            heappush(self._overflow, (time_ns, seq, event))
        return event

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at ``now + delay_ns``."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns} ns")
        return self.at(self._now + int(delay_ns), fn, *args)

    def call_now(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after events already
        queued for this instant (a 'soon' hook, used for deferred signals)."""
        return self.at(self._now, fn, *args)

    # -- queue internals ------------------------------------------------

    def _advance_horizon(self) -> None:
        """The buckets are empty: move the horizon past the overflow head
        and migrate everything inside the new window into buckets.

        Migration pops the overflow in ``(time, seq)`` order and appends
        into per-timestamp buckets, so migrated events keep their mutual
        FIFO order; any event scheduled into those buckets afterwards
        necessarily has a larger seq, so FIFO-within-timestamp holds
        globally.  The horizon only ever moves forward.
        """
        overflow = self._overflow
        horizon = overflow[0][0] + NEAR_WINDOW_NS
        buckets = self._buckets
        times = self._times
        while overflow and overflow[0][0] < horizon:
            time_ns, _, event = heappop(overflow)
            bucket = buckets.get(time_ns)
            if bucket is None:
                buckets[time_ns] = [event]
                heappush(times, time_ns)
            else:
                bucket.append(event)
        self._horizon = horizon

    def _peek(self) -> Optional[tuple[int, Event]]:
        """The earliest live event, still queued — or None.  Dead events
        and drained buckets are discarded on the way (the lazy half of
        ``cancel``)."""
        times = self._times
        buckets = self._buckets
        while True:
            if times:
                time_ns = times[0]
                bucket = buckets[time_ns]
                while bucket:
                    event = bucket[0]
                    if event.alive:
                        return time_ns, event
                    del bucket[0]
                heappop(times)
                del buckets[time_ns]
                continue
            if self._overflow:
                self._advance_horizon()
                continue
            return None

    def _pop(self, time_ns: int, event: Event) -> None:
        """Remove the event :meth:`_peek` just returned (the bucket head)."""
        bucket = self._buckets[time_ns]
        del bucket[0]
        if not bucket:
            heappop(self._times)
            del self._buckets[time_ns]
        event._queued = False
        self._live -= 1

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Run the next live event.  Returns False if the queue is empty."""
        if self._batch is not None:
            raise SimulationError(
                "simulator is attached to a batch; run the batch instead")
        head = self._peek()
        if head is None:
            return False
        time_ns, event = head
        self._pop(time_ns, event)
        self._now = time_ns
        self._events_executed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        ``until`` — stop once the next event lies beyond this time and set
        the clock to exactly ``until`` (so integrators can flush to the end
        of the window).  ``max_events`` — safety valve for runaway loops.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        if self._batch is not None:
            raise SimulationError(
                "simulator is attached to a batch; run the batch instead")
        self._running = True
        executed = 0
        times = self._times
        buckets = self._buckets
        try:
            # The _peek/_pop pair, fused: one bucket lookup per event
            # instead of two, with dead events and drained buckets
            # discarded in place (the semantics of the two methods are
            # unchanged — step() still uses them directly).
            while True:
                if times:
                    time_ns = times[0]
                    bucket = buckets[time_ns]
                    while bucket:
                        event = bucket[0]
                        if event.alive:
                            break
                        del bucket[0]
                    if not bucket:
                        heappop(times)
                        del buckets[time_ns]
                        continue
                elif self._overflow:
                    self._advance_horizon()
                    continue
                else:
                    break
                if until is not None and time_ns > until:
                    break
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[time_ns]
                event._queued = False
                self._live -= 1
                self._now = time_ns
                self._events_executed += 1
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now} ns"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live events still queued.  O(1): a live counter is
        maintained at schedule/cancel/fire time instead of scanning the
        queue (``__repr__`` and experiment asserts call this freely)."""
        return self._live

    def reset(self) -> None:
        """Return to the freshly constructed state: clock at zero, empty
        queue, sequence counter rewound.

        Part of the warm-start protocol: a sweep worker resets the
        simulator (and the node built on it) between grid points instead
        of rebuilding the world.  Outstanding :class:`Event` handles from
        the previous run are detached (marked dead and dequeued) so a
        stale ``cancel()`` can never perturb the next run's accounting.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        if self._batch is not None:
            raise SimulationError(
                "cannot reset a simulator attached to a batch; detach first")
        for bucket in self._buckets.values():
            for event in bucket:
                event.alive = False
                event._queued = False
        for _, _, event in self._overflow:
            event.alive = False
            event._queued = False
        self._now = 0
        self._seq = 0
        self._buckets = {}
        self._times = []
        self._overflow = []
        self._horizon = NEAR_WINDOW_NS
        self._live = 0
        self._events_executed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} ns, {self.pending()} pending>"
