"""Packed per-experiment result store: one append-only shard + index.

The sweep cache used to keep one JSON file per grid point.  At campaign
scale that layout pays a file open/close/stat per point and scatters a
64-point sweep over 64 inodes; a fleet of shard runs then has to rsync
thousands of little files.  This module packs all of an experiment's
cached points into **two** files under the cache root:

``<exp_id>.shard``
    Append-only record log.  Each record is a fixed header
    (32-byte key, 1 flag byte, u32 payload length, little-endian)
    followed by the payload bytes — the JSON-encoded point result,
    zlib-compressed when that is smaller (flag bit 0).

``<exp_id>.idx``
    An index accelerator: one fixed-size row (key, offset, length,
    flags) per shard record, in append order.  Purely derived data —
    when it is missing, stale, or torn, the shard is scanned once and
    the index rewritten.  Readers therefore never trust the index
    further than ``offset + length <= filesize``.

Properties the sweep pipeline relies on:

* **Same keys, same semantics** — the store maps opaque 32-byte keys to
  payload bytes; the digest-based cache keys (and their source-tree
  auto-invalidation) are untouched upstream.
* **Append-only, last write wins** — re-storing a key appends a new
  record; both the in-memory index and a rebuild scan keep the latest
  offset.  Nothing is ever rewritten in place, so a reader can never
  observe a half-updated record.
* **Torn-tail tolerant** — a crash mid-append leaves a truncated last
  record; scans stop at the first malformed header, so the store
  recovers to its last complete record (exactly the old per-file
  cache's "corrupt entry is a miss" behaviour).
* **Single writer per store, many readers** — appends take an advisory
  lock (``flock`` on POSIX, ``msvcrt.locking`` on Windows); loads don't
  lock (records are immutable once complete).  On platforms with
  neither primitive the store is strictly single-writer — see the
  fallback note at ``_lock``.  Multi-machine campaigns give each shard
  run its own cache root and merge the stores afterwards
  (:func:`repro.sim.sweep.merge_sweeps`).
"""

from __future__ import annotations

import io
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, Optional, Union

SHARD_MAGIC = b"QSHARD1\0"
INDEX_MAGIC = b"QSHIDX1\0"

#: Shard record header: key (raw sha256), flags, payload length.
RECORD_HEADER = struct.Struct("<32sBI")
#: Index row: key, payload offset, payload length, flags.
INDEX_ROW = struct.Struct("<32sQIB")

#: Record flag: payload is zlib-compressed.
FLAG_ZLIB = 0x01

#: Compress only when it helps; level 1 is ~free next to a simulation
#: and typically shrinks the JSON payloads 5-10x.
_ZLIB_LEVEL = 1

try:
    import fcntl

    def _lock(fileobj) -> None:
        fcntl.flock(fileobj.fileno(), fcntl.LOCK_EX)

    def _unlock(fileobj) -> None:
        fcntl.flock(fileobj.fileno(), fcntl.LOCK_UN)
except ImportError:  # pragma: no cover - non-POSIX platforms
    try:
        import msvcrt

        def _lock(fileobj) -> None:
            # One byte at offset 0 as the writer mutex.  msvcrt.locking
            # locks from the *current* position, so seek there first;
            # the caller re-seeks to EOF before writing (and "ab" mode
            # forces writes to the end regardless).  LK_LOCK retries for
            # ~10 s before raising OSError, which store() already maps
            # to a False return.
            fileobj.seek(0)
            msvcrt.locking(fileobj.fileno(), msvcrt.LK_LOCK, 1)

        def _unlock(fileobj) -> None:
            fileobj.seek(0)
            msvcrt.locking(fileobj.fileno(), msvcrt.LK_UNLCK, 1)
    except ImportError:
        # No advisory locking primitive at all (exotic platforms): the
        # store degrades to SINGLE-WRITER — concurrent appends can
        # interleave torn records mid-shard, which the torn-tail scan
        # does not repair.  Give each writer its own cache root and
        # merge afterwards (repro.sim.sweep.merge_sweeps).
        def _lock(fileobj) -> None:
            pass

        def _unlock(fileobj) -> None:
            pass


class ShardStore:
    """One experiment's packed key→payload store (see module docstring).

    All methods are best-effort in the same sense as the old cache: I/O
    trouble makes loads miss and stores no-ops, never raises into the
    campaign.  ``ShardStoreError``-free by design.
    """

    def __init__(self, shard_path: Union[str, Path]) -> None:
        self.shard_path = Path(shard_path)
        self.index_path = self.shard_path.with_suffix(".idx")
        # key -> (offset, length, flags); offsets address payload bytes.
        self._index: Optional[dict[bytes, tuple[int, int, int]]] = None
        self._reader: Optional[io.BufferedReader] = None

    # -- index ----------------------------------------------------------

    def _entries(self) -> dict[bytes, tuple[int, int, int]]:
        if self._index is None:
            self._index = self._load_index()
        return self._index

    def _load_index(self) -> dict[bytes, tuple[int, int, int]]:
        """Read the index accelerator, falling back to (and rewriting
        from) a full shard scan whenever it cannot be trusted."""
        try:
            shard_size = self.shard_path.stat().st_size
        except OSError:
            return {}
        try:
            raw = self.index_path.read_bytes()
        except OSError:
            raw = b""
        entries: dict[bytes, tuple[int, int, int]] = {}
        covered = len(SHARD_MAGIC)
        trusted = raw[: len(INDEX_MAGIC)] == INDEX_MAGIC
        if trusted:
            row_size = INDEX_ROW.size
            body = raw[len(INDEX_MAGIC):]
            usable = len(body) - len(body) % row_size  # ignore a torn row
            for key, offset, length, flags in INDEX_ROW.iter_unpack(
                    body[:usable]):
                if offset + length > shard_size:
                    trusted = False  # stale beyond the shard: rescan
                    break
                entries[key] = (offset, length, flags)
                covered = max(covered, offset + length)
        if not trusted:
            entries, covered, complete = self._scan_shard(0)
            # Rewrite the accelerator only from a scan that reached the
            # shard's end: a mid-scan read fault yields a partial entry
            # set, and persisting that would clobber a good index with
            # an empty (or truncated) one — every cached point would
            # then miss until the next full rescan.  The partial
            # entries still serve this process; the index keeps its old
            # bytes for the next load to retry against.
            if complete:
                self._write_index(entries)
        elif covered < shard_size:
            # The shard grew past the index (another writer, or a crash
            # between the payload and index appends): scan just the tail.
            tail, _, complete = self._scan_shard(covered)
            if tail:
                entries.update(tail)
                if complete:
                    self._write_index(entries)
        return entries

    def _scan_shard(
        self, start: int,
    ) -> tuple[dict[bytes, tuple[int, int, int]], int, bool]:
        """Walk shard records from byte ``start`` (0 = validate the magic
        too), stopping at the first torn/garbled record.

        Returns ``(entries, end, complete)``.  ``complete`` is False
        when an I/O fault interrupted the scan: the entries gathered so
        far are still good (records are immutable once written), but
        they are not the whole shard, so callers must not persist them
        as the authoritative index.  A torn tail is *not* an
        interruption — stopping at the last full record is the normal,
        definitive result.
        """
        entries: dict[bytes, tuple[int, int, int]] = {}
        header_size = RECORD_HEADER.size
        end = start
        try:
            with open(self.shard_path, "rb") as shard:
                size = os.fstat(shard.fileno()).st_size
                if start < len(SHARD_MAGIC):
                    if shard.read(len(SHARD_MAGIC)) != SHARD_MAGIC:
                        return {}, 0, True  # definitively not a shard
                    position = len(SHARD_MAGIC)
                else:
                    shard.seek(start)
                    position = start
                while position + header_size <= size:
                    header = shard.read(header_size)
                    if len(header) < header_size:
                        break
                    key, flags, length = RECORD_HEADER.unpack(header)
                    payload_at = position + header_size
                    if payload_at + length > size:
                        break  # torn tail: stop at the last full record
                    shard.seek(length, os.SEEK_CUR)
                    entries[key] = (payload_at, length, flags)
                    position = payload_at + length
                    end = position
        except OSError:
            # Keep what the scan already proved; just mark it partial.
            return entries, end, False
        return entries, end, True

    def _write_index(self, entries: dict[bytes, tuple[int, int, int]]) -> None:
        """Rewrite the accelerator (best-effort, atomic via rename)."""
        rows = sorted(entries.items(), key=lambda item: item[1][0])
        blob = bytearray(INDEX_MAGIC)
        for key, (offset, length, flags) in rows:
            blob += INDEX_ROW.pack(key, offset, length, flags)
        try:
            tmp = self.index_path.with_suffix(f".idx.tmp{os.getpid()}")
            tmp.write_bytes(blob)
            tmp.replace(self.index_path)
        except OSError:
            pass  # the index is only an accelerator

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def has(self, key: bytes) -> bool:
        return key in self._entries()

    def keys(self) -> set[bytes]:
        return set(self._entries())

    def load(self, key: bytes) -> Optional[bytes]:
        """The payload stored under ``key``, or None.  Reads share one
        buffered descriptor — a warm rerun's fold is a seek+read per
        point, not an open/parse/close."""
        entry = self._entries().get(key)
        if entry is None:
            return None
        offset, length, flags = entry
        try:
            if self._reader is None:
                self._reader = open(self.shard_path, "rb")
            self._reader.seek(offset)
            payload = self._reader.read(length)
        except OSError:
            self._close_reader()
            return None
        if len(payload) != length:
            return None
        if flags & FLAG_ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error:
                return None
        return payload

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Every (key, payload) in the store (merge tooling; offset order
        so a sequential scan reads the shard front to back)."""
        entries = sorted(self._entries().items(), key=lambda kv: kv[1][0])
        for key, _ in entries:
            payload = self.load(key)
            if payload is not None:
                yield key, payload

    def _close_reader(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None

    def refresh(self) -> None:
        """Forget cached index/reader state so the next read re-probes
        disk.  The campaign runner calls this to observe points its
        worker *processes* appended after this object last looked —
        records are immutable once complete, so a refresh can only ever
        reveal more keys, never change an offset already handed out."""
        self._close_reader()
        self._index = None

    # -- writes ---------------------------------------------------------

    def store(self, key: bytes, payload: bytes) -> bool:
        """Append one record (last write for a key wins).  Returns False
        instead of raising on any I/O trouble."""
        if len(key) != 32:
            return False
        flags = 0
        packed = zlib.compress(payload, _ZLIB_LEVEL)
        if len(packed) < len(payload):
            payload, flags = packed, FLAG_ZLIB
        try:
            self.shard_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.shard_path, "ab") as shard:
                _lock(shard)
                try:
                    offset = shard.seek(0, os.SEEK_END)
                    if offset == 0:
                        shard.write(SHARD_MAGIC)
                        offset = len(SHARD_MAGIC)
                    payload_at = offset + RECORD_HEADER.size
                    shard.write(
                        RECORD_HEADER.pack(key, flags, len(payload)) + payload)
                    shard.flush()
                    with open(self.index_path, "ab") as index:
                        if index.seek(0, os.SEEK_END) == 0:
                            index.write(INDEX_MAGIC)
                        index.write(INDEX_ROW.pack(
                            key, payload_at, len(payload), flags))
                finally:
                    _unlock(shard)
        except OSError:
            return False
        if self._index is not None:
            self._index[key] = (payload_at, len(payload), flags)
        return True

    # -- compaction ------------------------------------------------------

    def dead_bytes(self) -> tuple[int, int]:
        """``(dead, total)`` bytes of the shard file: ``dead`` is
        everything a compaction would drop — superseded last-write-wins
        frames plus any torn tail."""
        try:
            total = self.shard_path.stat().st_size
        except OSError:
            return 0, 0
        live = len(SHARD_MAGIC) + sum(
            RECORD_HEADER.size + length
            for _, length, _ in self._entries().values())
        return max(0, total - live), total

    def compact(self) -> bool:
        """Rewrite the shard keeping only the live record per key.

        Superseded last-write-wins frames and a torn tail are dropped;
        surviving records keep their exact payload bytes (and their
        compression flag), in shard offset order, so every load after a
        compaction returns the same bytes it did before.  The rewrite is
        atomic — payloads stream into ``<shard>.tmp<pid>``, which is
        fsynced and renamed over the shard — and the index is
        regenerated from the new layout.  Returns False (shard
        untouched) on any I/O trouble or when a read fault leaves the
        scan partial: compacting from partial knowledge would silently
        drop live records.

        Compaction is an *owner* operation: run it only with no
        concurrent writers (the campaign runner compacts after its
        workers exit).  A writer holding an open append handle across
        the rename would append to the orphaned old inode.
        """
        entries, _end, complete = self._scan_shard(0)
        if not complete:
            return False
        rows = sorted(entries.items(), key=lambda item: item[1][0])
        tmp = self.shard_path.with_name(
            self.shard_path.name + f".tmp{os.getpid()}")
        rebuilt: dict[bytes, tuple[int, int, int]] = {}
        try:
            with open(self.shard_path, "rb") as old, open(tmp, "wb") as out:
                out.write(SHARD_MAGIC)
                position = len(SHARD_MAGIC)
                for key, (offset, length, flags) in rows:
                    old.seek(offset)
                    payload = old.read(length)
                    if len(payload) != length:
                        raise OSError(
                            "shard shrank mid-compaction (concurrent writer?)")
                    out.write(RECORD_HEADER.pack(key, flags, length))
                    out.write(payload)
                    rebuilt[key] = (position + RECORD_HEADER.size,
                                    length, flags)
                    position += RECORD_HEADER.size + length
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, self.shard_path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._close_reader()
        self._index = rebuilt
        self._write_index(rebuilt)
        return True

    def maybe_compact(self, min_dead_bytes: int = 1 << 20,
                      min_dead_fraction: float = 0.25,
                      min_age_s: float = 0.0) -> bool:
        """Compact only past the thresholds — the hook a long-lived
        campaign cache calls after every session so dead weight never
        accumulates unboundedly, without rewriting a healthy store on
        each run.  ``min_age_s`` skips shards modified more recently
        than that (a store another process may still be appending to);
        the size gates require at least ``min_dead_bytes`` of dead
        weight *and* that it be at least ``min_dead_fraction`` of the
        file.  Returns True only if a compaction ran and succeeded."""
        try:
            stat = self.shard_path.stat()
        except OSError:
            return False
        if min_age_s > 0 and time.time() - stat.st_mtime < min_age_s:
            return False
        dead, total = self.dead_bytes()
        if dead < max(1, min_dead_bytes):
            return False
        if total <= 0 or dead / total < min_dead_fraction:
            return False
        return self.compact()
