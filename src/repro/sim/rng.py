"""Deterministic per-component random streams.

Every stochastic piece of the simulation (interferer bursts, device
variation, meter noise, MAC backoff) draws from its own named stream so
that adding randomness to one component never perturbs another.  Streams
are derived from a master seed plus the component name, so a run is fully
reproducible from ``(seed,)`` alone.
"""

from __future__ import annotations

import hashlib
import random


class RngFactory:
    """Derives independent ``random.Random`` streams from one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(self._derive(name))
        self._streams[name] = stream
        return stream

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def reseed(self, master_seed: int) -> None:
        """Re-key the factory (and every stream already handed out) for a
        new master seed, *in place*.

        Part of the warm-start protocol: consumers hold direct references
        to their streams (the sensor, the meter, a MAC), so replacing the
        factory would leave them on the old seed.  Re-seeding each cached
        ``random.Random`` instead puts every holder into exactly the
        state a cold construction with ``RngFactory(master_seed)`` would
        have produced — same derivation, same stream names.
        """
        self.master_seed = int(master_seed)
        for name, stream in self._streams.items():
            stream.seed(self._derive(name))

    def fork(self, name: str) -> "RngFactory":
        """Derive a child factory (e.g. one per node) with its own space."""
        digest = hashlib.sha256(
            f"{self.master_seed}/{name}".encode("utf-8")
        ).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))
