"""Fault-tolerant campaign orchestrator: manifests, retries, resume.

A *campaign* is a sweep big enough that something will go wrong before
it finishes: a worker OOMs, a machine straggles, the runner itself is
killed.  :func:`repro.sim.sweep.run_sweep` already makes one process's
sweep deterministic and cached; this module makes the **whole multi-
process campaign** a durable, resumable object:

* :class:`CampaignManifest` — the campaign *is* a file.  One schema-
  versioned JSON document records the experiment, seed list, override
  grid, shard plan, worker/retry/deadline knobs, the cache directory,
  and (once known) the expected per-point digests plus the expected
  sweep digest.  Re-running a manifest is always safe: work that is
  already stored and verified is never re-simulated.

* :class:`CampaignRunner` — dispatches each shard to a worker
  subprocess (``python -m repro campaign worker <manifest> --shard
  i/N``), asynchronously, up to a concurrency cap.  Shards that die are
  retried with capped exponential backoff; shards that *straggle* past
  the per-shard deadline get a speculative backup dispatched **while
  the original keeps running** — whichever lands first wins, the loser
  is killed.  Re-dispatch is harmless by construction: the shard store
  is last-write-wins and a point's payload is deterministic, so a
  duplicate append stores the same bytes under the same key.

* Incremental fold — the runner folds :class:`PointSummary`s as shards
  land, not at the end: whenever a new contiguous prefix of the grid is
  verified on disk it is folded through the same grid-order Welford
  aggregation as a serial run (order is what makes the float aggregates
  byte-identical), and each folded point's digest is appended to a
  crash-safe ledger next to the manifest.

* First-class resume — ``run()`` **is** resume.  On entry the runner
  scans the cache, verifies every stored point (parse + digest check
  against the manifest's expected digests and the ledger), and
  schedules only the missing or corrupt remainder.  A campaign killed
  at any instant — runner, workers, or both — rerun with the same
  manifest produces a ``SweepResult.digest()`` byte-identical to an
  uninterrupted serial ``run_sweep``.

The failure modes themselves are driven by :mod:`repro.sim.faultinject`
(worker crashes at named sites, injected I/O errors, torn tails,
stragglers), which is how ``tests/test_campaign.py`` and the CI chaos
job prove each recovery path instead of trusting it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.errors import CampaignError
from repro.sim import faultinject
from repro.sim.sweep import (
    PointResult,
    PointSummary,
    SweepAggregator,
    SweepCache,
    SweepPoint,
    SweepResult,
    _iter_points_batched,
    code_fingerprint,
    detect_jobs,
    expand_grid,
    merge_sweeps,
    resolve_batch,
    shard_points,
)

#: Bump when the manifest layout changes incompatibly.  Loading a newer
#: schema than we understand is an error; older schemas are upgraded
#: in :meth:`CampaignManifest.load` (none exist yet).
MANIFEST_SCHEMA = 1

MANIFEST_KIND = "repro-campaign"

#: A straggling shard whose retry budget is exhausted is still given
#: this many deadlines to finish before the campaign gives up on it.
_HARD_DEADLINE_FACTOR = 5


def _default_workers(shards: int) -> int:
    return max(1, min(shards, detect_jobs()))


@dataclass
class CampaignManifest:
    """The durable description of one campaign (see module docstring).

    ``cache_dir`` is stored as written but resolved **relative to the
    manifest's own directory**, so a campaign directory (manifest +
    cache + ledger + logs) can be moved or rsynced between machines and
    resumed in place.

    ``expected`` maps cache point-key (hex) to the point's digest and
    ``expected_sweep_digest`` pins the whole-campaign digest; both are
    written back by the runner when the campaign first completes, so
    every later resume/merge verifies against them.  Keys embed the
    source-tree fingerprint, so entries from an older source tree are
    inert (they can never match a current point's key) rather than
    wrong.
    """

    experiment: str
    seeds: list[int]
    overrides: dict[str, list[str]] = field(default_factory=dict)
    shards: int = 1
    workers: int = 0  # 0 = auto: min(shards, detected CPUs)
    batch: Optional[int] = None
    backend: Optional[str] = None
    deadline_s: Optional[float] = None  # straggler threshold per shard
    max_retries: int = 3  # re-dispatches per shard beyond the first
    backoff_s: float = 0.25
    backoff_cap_s: float = 30.0
    cache_dir: str = "cache"
    fingerprint: Optional[str] = None
    expected: dict[str, str] = field(default_factory=dict)
    expected_sweep_digest: Optional[str] = None
    path: Optional[Path] = None  # where this manifest lives (not serialized)

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": MANIFEST_KIND,
            "schema": MANIFEST_SCHEMA,
            "experiment": self.experiment,
            "seeds": list(self.seeds),
            "overrides": {k: list(v) for k, v in self.overrides.items()},
            "shards": self.shards,
            "workers": self.workers,
            "batch": self.batch,
            "backend": self.backend,
            "deadline_s": self.deadline_s,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "cache_dir": self.cache_dir,
            "fingerprint": self.fingerprint,
            "expected": dict(self.expected),
            "expected_sweep_digest": self.expected_sweep_digest,
        }

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Atomically (re)write the manifest: tmp file, fsync, rename —
        a crash mid-save leaves either the old manifest or the new one,
        never a torn hybrid."""
        if path is not None:
            self.path = Path(path)
        if self.path is None:
            raise CampaignError("manifest has no path to save to")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        text = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        with open(tmp, "w", encoding="utf-8") as fileobj:
            fileobj.write(text)
            fileobj.flush()
            os.fsync(fileobj.fileno())
        os.replace(tmp, self.path)
        return self.path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignManifest":
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(f"cannot read manifest {path}: {exc}")
        except ValueError as exc:
            raise CampaignError(f"manifest {path} is not valid JSON: {exc}")
        if not isinstance(raw, dict):
            raise CampaignError(f"manifest {path} must be a JSON object")
        if raw.get("kind") != MANIFEST_KIND:
            raise CampaignError(
                f"manifest {path}: kind {raw.get('kind')!r} is not "
                f"{MANIFEST_KIND!r}")
        schema = raw.get("schema")
        if not isinstance(schema, int):
            raise CampaignError(f"manifest {path}: missing integer 'schema'")
        if schema > MANIFEST_SCHEMA:
            raise CampaignError(
                f"manifest {path}: schema {schema} is newer than this "
                f"repro understands ({MANIFEST_SCHEMA})")
        manifest = cls(
            experiment=_field(raw, path, "experiment", str),
            seeds=[int(s) for s in _field(raw, path, "seeds", list)],
            overrides={
                str(k): [str(x) for x in v]
                for k, v in (raw.get("overrides") or {}).items()
            },
            shards=int(raw.get("shards", 1)),
            workers=int(raw.get("workers", 0)),
            batch=(None if raw.get("batch") is None
                   else int(raw["batch"])),
            backend=raw.get("backend"),
            deadline_s=(None if raw.get("deadline_s") is None
                        else float(raw["deadline_s"])),
            max_retries=int(raw.get("max_retries", 3)),
            backoff_s=float(raw.get("backoff_s", 0.25)),
            backoff_cap_s=float(raw.get("backoff_cap_s", 30.0)),
            cache_dir=str(raw.get("cache_dir", "cache")),
            fingerprint=raw.get("fingerprint"),
            expected={
                str(k): str(v) for k, v in (raw.get("expected") or {}).items()
            },
            expected_sweep_digest=raw.get("expected_sweep_digest"),
            path=path,
        )
        if not manifest.seeds:
            raise CampaignError(f"manifest {path}: 'seeds' is empty")
        if manifest.shards < 1:
            raise CampaignError(
                f"manifest {path}: shards must be >= 1, "
                f"got {manifest.shards}")
        if manifest.workers < 0:
            raise CampaignError(
                f"manifest {path}: workers must be >= 0, "
                f"got {manifest.workers}")
        if manifest.max_retries < 0:
            raise CampaignError(
                f"manifest {path}: max_retries must be >= 0, "
                f"got {manifest.max_retries}")
        return manifest

    # -- derived views ------------------------------------------------------

    def grid(self) -> list[SweepPoint]:
        """The canonical grid (validates experiment and overrides)."""
        return expand_grid(self.experiment, self.seeds, self.overrides)

    def resolved_cache_dir(self) -> Path:
        """``cache_dir`` resolved against the manifest's directory."""
        cache = Path(self.cache_dir)
        if cache.is_absolute() or self.path is None:
            return cache
        return self.path.parent / cache

    def ledger_path(self) -> Path:
        if self.path is None:
            raise CampaignError("manifest has no path; ledger undefined")
        return self.path.with_name(self.path.stem + ".ledger.jsonl")

    def effective_workers(self) -> int:
        return self.workers if self.workers > 0 \
            else _default_workers(self.shards)


def _field(raw: Mapping[str, Any], path: Path, name: str, kind: type) -> Any:
    value = raw.get(name)
    if not isinstance(value, kind):
        raise CampaignError(
            f"manifest {path}: missing or mistyped field {name!r} "
            f"(expected {kind.__name__})")
    return value


def plan_campaign(
    exp_id: str,
    seeds: Sequence[int],
    overrides: Optional[Mapping[str, Sequence[str]]] = None,
    *,
    out_path: Union[str, Path],
    shards: int = 1,
    workers: int = 0,
    batch: Optional[int] = None,
    backend: Optional[str] = None,
    deadline_s: Optional[float] = None,
    max_retries: int = 3,
    backoff_s: float = 0.25,
    backoff_cap_s: float = 30.0,
    cache_dir: str = "cache",
) -> CampaignManifest:
    """Validate a campaign spec (grid expansion fails fast on a bad
    experiment or override) and write its manifest."""
    manifest = CampaignManifest(
        experiment=exp_id,
        seeds=[int(s) for s in seeds],
        overrides={k: [str(x) for x in v]
                   for k, v in (overrides or {}).items()},
        shards=shards,
        workers=workers,
        batch=batch,
        backend=backend,
        deadline_s=deadline_s,
        max_retries=max_retries,
        backoff_s=backoff_s,
        backoff_cap_s=backoff_cap_s,
        cache_dir=cache_dir,
    )
    grid = manifest.grid()  # validation side effect
    if manifest.shards > len(grid):
        raise CampaignError(
            f"manifest wants {manifest.shards} shards for a "
            f"{len(grid)}-point grid; shards cannot exceed grid points")
    manifest.save(out_path)
    return manifest


# -- crash-safe fold ledger --------------------------------------------------


def read_ledger(path: Path) -> dict[str, str]:
    """Parse the fold ledger into {point-key-hex: digest}.

    Append-only JSONL; a torn final line (runner killed mid-append) is
    skipped, later entries win.  An unreadable ledger is an empty one —
    the ledger only accelerates verification, the payloads in the shard
    store remain the ground truth.
    """
    entries: dict[str, str] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
            entries[str(row["key"])] = str(row["digest"])
        except (ValueError, KeyError, TypeError):
            continue  # torn tail or scribble: ignore
    return entries


class _Ledger:
    """Append-only digest journal for the folded prefix."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._file = None

    def append(self, index: int, key: str, digest: str) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(
            {"i": index, "key": key, "digest": digest},
            separators=(",", ":")) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


# -- verification ------------------------------------------------------------


def _verified_result(
    cache: SweepCache,
    point: SweepPoint,
    expected_digest: Optional[str],
) -> Optional[PointResult]:
    """The stored result for ``point`` iff it parses and (when pinned)
    matches the expected digest; None for missing *or corrupt* — the
    caller treats both as "schedule it again"."""
    result = cache.load(point)
    if result is None:
        return None
    if expected_digest is not None and result.digest != expected_digest:
        return None
    return result


# -- worker side -------------------------------------------------------------


def run_worker(
    manifest_path: Union[str, Path],
    shard_index: int,
    shard_count: Optional[int] = None,
) -> int:
    """Execute one shard of a campaign (the ``campaign worker`` CLI).

    Loads the manifest, takes shard ``shard_index``'s deterministic
    slice of the grid, verifies which of its points are already stored
    (same parse-and-digest check the runner uses, so a corrupt record
    is re-simulated, not trusted), and simulates the rest through the
    batched executor, appending each result to the shared shard store
    as it lands.  Exits nonzero if any append fails — a shard that
    cannot persist its work must look dead to the runner, not done.

    Fault-injection sites (:mod:`repro.sim.faultinject`): ``pre-run``
    before the first point, ``pre-store`` before every append,
    ``mid-shard`` right after the first append — all with the shard
    index as selector.
    """
    manifest = CampaignManifest.load(manifest_path)
    if shard_count is not None and shard_count != manifest.shards:
        raise CampaignError(
            f"worker invoked with shard count {shard_count} but manifest "
            f"says {manifest.shards}")
    grid = manifest.grid()
    mine = shard_points(grid, shard_index, manifest.shards)
    cache = SweepCache(manifest.resolved_cache_dir())
    faultinject.fire("pre-run", selector=shard_index)
    missing = [
        point for point in mine
        if _verified_result(
            cache, point, manifest.expected.get(cache.point_key(point)),
        ) is None
    ]
    stored = 0
    for result in _iter_points_batched(missing, resolve_batch(manifest.batch)):
        faultinject.fire("pre-store", selector=shard_index)
        if not cache.store(result):
            raise CampaignError(
                f"shard {shard_index}: store append failed for "
                f"[{result.point.describe()}]")
        stored += 1
        if stored == 1:
            faultinject.fire("mid-shard", selector=shard_index)
    return 0


# -- runner side -------------------------------------------------------------


@dataclass
class _ShardState:
    """Scheduler bookkeeping for one shard."""

    index: int
    grid_indices: list[int]
    launches: int = 0
    failures: int = 0
    next_eligible: float = 0.0  # monotonic time gate (backoff)
    procs: list = field(default_factory=list)  # [(Popen, started, log_path)]


class CampaignRunner:
    """Drives a manifest to completion (see module docstring).

    ``on_event`` receives one human-readable line per scheduling event
    (launch, exit, retry, straggler backup, fold progress); the CLI
    wires it to stderr.
    """

    #: Scheduler tick; bounds how late an exit/straggler is noticed.
    poll_s = 0.05

    #: How often the runner re-reads the store index looking for points
    #: its workers appended.
    refresh_s = 0.2

    def __init__(
        self,
        manifest: CampaignManifest,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        if manifest.path is None:
            raise CampaignError(
                "CampaignRunner needs a saved manifest (workers re-read "
                "it from disk); call manifest.save(path) first")
        self.manifest = manifest
        self.workers = manifest.effective_workers()
        self._on_event = on_event

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    # -- worker process management ------------------------------------

    def _worker_command(self, shard_index: int) -> list[str]:
        return [
            sys.executable, "-m", "repro", "campaign", "worker",
            str(self.manifest.path),
            "--shard", f"{shard_index}/{self.manifest.shards}",
        ]

    def _worker_env(self) -> dict[str, str]:
        # Make `python -m repro` resolvable for the child even when the
        # parent imported repro off a path not on PYTHONPATH (tests).
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = pkg_root if not existing \
            else pkg_root + os.pathsep + existing
        return env

    def _launch(self, state: _ShardState, *, backup: bool = False) -> None:
        logs = self.manifest.resolved_cache_dir() / "logs"
        logs.mkdir(parents=True, exist_ok=True)
        log_path = logs / f"shard{state.index}.attempt{state.launches}.log"
        with open(log_path, "wb") as log:
            proc = subprocess.Popen(
                self._worker_command(state.index),
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=self._worker_env(),
            )
        state.procs.append((proc, time.monotonic(), log_path))
        state.launches += 1
        kind = "backup for straggling shard" if backup else "shard"
        self._event(
            f"{kind} {state.index}: worker pid {proc.pid} launched "
            f"(attempt {state.launches})")

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.kill()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            proc.wait(timeout=5)
        except Exception:  # pragma: no cover - unkillable child
            pass

    def _backoff(self, failures: int) -> float:
        base = self.manifest.backoff_s * (2 ** max(0, failures - 1))
        return min(self.manifest.backoff_cap_s, base)

    # -- the run loop --------------------------------------------------

    def run(self) -> SweepResult:
        manifest = self.manifest
        start = time.perf_counter()
        grid = manifest.grid()
        cache = SweepCache(manifest.resolved_cache_dir())
        keys = [cache.point_key(point) for point in grid]
        ledger_digests = read_ledger(manifest.ledger_path())

        def expected_digest(index: int) -> Optional[str]:
            return manifest.expected.get(keys[index]) \
                or ledger_digests.get(keys[index])

        fingerprint = code_fingerprint()
        drifted = (manifest.fingerprint is not None
                   and manifest.fingerprint != fingerprint)
        if drifted:
            self._event(
                "note: source tree changed since this manifest was pinned; "
                "stored digests from the old tree cannot match and will be "
                "re-simulated, and the pinned sweep digest is not enforced")

        # Resume scan: every stored point is verified (parse + digest),
        # not just probed — a torn or bit-flipped record schedules its
        # point again instead of poisoning the fold.
        valid: set[int] = set()
        for index, point in enumerate(grid):
            if _verified_result(cache, point, expected_digest(index)) \
                    is not None:
                valid.add(index)
        initially_valid = frozenset(valid)

        shards = []
        for shard_index in range(manifest.shards):
            indices = list(range(shard_index, len(grid), manifest.shards))
            shards.append(_ShardState(
                index=shard_index, grid_indices=indices))
        pending_shards = [
            s for s in shards
            if any(i not in valid for i in s.grid_indices)
        ]
        self._event(
            f"campaign {manifest.experiment}: {len(grid)} points, "
            f"{len(valid)} already stored and verified, "
            f"{len(pending_shards)}/{manifest.shards} shards to run "
            f"on {self.workers} workers")

        aggregator = SweepAggregator()
        summaries: list[PointSummary] = []
        ledger = _Ledger(manifest.ledger_path())
        fold_next = 0

        def advance_fold() -> None:
            """Fold the verified contiguous grid prefix (grid order is
            the byte-identity contract) and journal each digest."""
            nonlocal fold_next
            while fold_next < len(grid) and fold_next in valid:
                index = fold_next
                result = _verified_result(
                    cache, grid[index], expected_digest(index))
                if result is None:
                    # Vanished between scan and fold (torn by a dying
                    # writer): un-verify and let the scheduler redo it.
                    valid.discard(index)
                    return
                aggregator.fold(result)
                summaries.append(PointSummary(
                    point=result.point, digest=result.digest,
                    wall_s=result.wall_s,
                    from_cache=index in initially_valid,
                ))
                ledger.append(index, keys[index], result.digest)
                fold_next += 1

        launched_any = False
        last_refresh = 0.0
        try:
            advance_fold()
            while fold_next < len(grid):
                now = time.monotonic()
                exited = self._reap(shards, valid)
                if exited or now - last_refresh >= self.refresh_s:
                    last_refresh = now
                    cache.refresh()
                    for index, point in enumerate(grid):
                        if index not in valid and _verified_result(
                                cache, point, expected_digest(index),
                        ) is not None:
                            valid.add(index)
                    advance_fold()
                launched_any |= self._schedule(shards, valid, now)
                if fold_next < len(grid):
                    time.sleep(self.poll_s)
        finally:
            for state in shards:
                for proc, _started, _log in state.procs:
                    self._kill(proc)
                state.procs.clear()
            ledger.close()

        wall_s = time.perf_counter() - start
        result = SweepResult(
            exp_id=manifest.experiment,
            points=summaries,
            jobs=self.workers if launched_any else 1,
            wall_s=wall_s,
            metrics=aggregator.metrics(),
            comparisons=aggregator.comparisons(),
            cache_dir=str(manifest.resolved_cache_dir()),
            cache_hits=len(initially_valid),
            grid_points=len(grid),
            batch=resolve_batch(manifest.batch),
        )
        digest = result.digest()
        if manifest.expected_sweep_digest is not None and not drifted \
                and digest != manifest.expected_sweep_digest:
            raise CampaignError(
                f"campaign digest {digest} does not match the manifest's "
                f"pinned digest {manifest.expected_sweep_digest} — the "
                f"stores verified point-by-point yet the combined digest "
                f"drifted; refusing to overwrite the pin")
        # Pin the completed campaign: expected digests make every later
        # resume/merge verifiable, and the ledger is now redundant.
        manifest.expected = {
            keys[index]: summary.digest
            for index, summary in enumerate(summaries)
        }
        manifest.expected_sweep_digest = digest
        manifest.fingerprint = fingerprint
        manifest.save()
        try:
            manifest.ledger_path().unlink()
        except OSError:  # pragma: no cover - leftover ledger is harmless
            pass
        return result

    # -- scheduler pieces ----------------------------------------------

    def _reap(self, shards: list[_ShardState], valid: set[int]) -> bool:
        """Collect exited workers; count a failure (and arm backoff)
        only when a shard is incomplete and has no surviving worker."""
        exited = False
        for state in shards:
            still = []
            for proc, started, log_path in state.procs:
                code = proc.poll()
                if code is None:
                    still.append((proc, started, log_path))
                    continue
                exited = True
                incomplete = any(
                    i not in valid for i in state.grid_indices)
                if code != 0 or incomplete:
                    self._event(
                        f"shard {state.index}: worker exited with code "
                        f"{code} (log: {log_path})")
            state.procs = still
        return exited

    def _schedule(
        self, shards: list[_ShardState], valid: set[int], now: float,
    ) -> bool:
        """Launch, retry, and speculatively re-dispatch workers.
        Returns True if anything was launched this tick."""
        manifest = self.manifest
        launched = False
        running = sum(len(state.procs) for state in shards)
        max_launches = manifest.max_retries + 1
        for state in shards:
            complete = all(i in valid for i in state.grid_indices)
            if complete:
                # Kill speculative losers: their remaining appends
                # would only duplicate bytes already stored.
                for proc, _started, _log in state.procs:
                    self._event(
                        f"shard {state.index}: complete; killing "
                        f"redundant worker pid {proc.pid}")
                    self._kill(proc)
                    running -= 1
                state.procs = []
                continue
            if not state.procs:
                if state.launches > 0:
                    if state.failures < state.launches:
                        # All workers for this incomplete shard are
                        # gone: that's a failed attempt.
                        state.failures = state.launches
                        delay = self._backoff(state.failures)
                        state.next_eligible = now + delay
                        if state.launches >= max_launches:
                            self._abort(state)
                        self._event(
                            f"shard {state.index}: incomplete after worker "
                            f"exit; retry {state.launches}/"
                            f"{manifest.max_retries} in {delay:.2f}s")
                if running < self.workers and now >= state.next_eligible:
                    if state.launches >= max_launches:
                        self._abort(state)
                    self._launch(state)
                    running += 1
                    launched = True
            elif manifest.deadline_s is not None:
                newest = max(started for _p, started, _l in state.procs)
                age = now - newest
                if age > manifest.deadline_s \
                        and state.launches < max_launches \
                        and running < self.workers:
                    self._event(
                        f"shard {state.index}: straggling "
                        f"({age:.2f}s > deadline {manifest.deadline_s}s); "
                        f"dispatching speculative backup")
                    self._launch(state, backup=True)
                    running += 1
                    launched = True
                elif age > manifest.deadline_s * _HARD_DEADLINE_FACTOR \
                        and state.launches >= max_launches:
                    for proc, _started, _log in state.procs:
                        self._kill(proc)
                    state.procs = []
                    self._abort(state)
        return launched

    def _abort(self, state: _ShardState) -> None:
        manifest = self.manifest
        raise CampaignError(
            f"shard {state.index} of campaign {manifest.experiment} "
            f"failed {state.launches} dispatch(es) (retry budget "
            f"{manifest.max_retries}); worker logs under "
            f"{manifest.resolved_cache_dir() / 'logs'}")


def run_campaign(
    manifest: Union[CampaignManifest, str, Path],
    on_event: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run (equivalently: resume) a campaign manifest to completion."""
    if not isinstance(manifest, CampaignManifest):
        manifest = CampaignManifest.load(manifest)
    return CampaignRunner(manifest, on_event=on_event).run()


# -- status ------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStatus:
    index: int
    total: int
    stored: int


@dataclass(frozen=True)
class CampaignStatus:
    """What a scan of the manifest's stores found (no simulation)."""

    experiment: str
    total: int
    stored: int
    corrupt: int
    shards: list[ShardStatus]
    pinned: bool  # manifest carries expected digests
    fingerprint_drift: bool

    @property
    def missing(self) -> int:
        return self.total - self.stored

    @property
    def complete(self) -> bool:
        return self.stored == self.total

    def render(self) -> str:
        lines = [
            f"== campaign: {self.experiment} ==",
            f"-- points: {self.stored}/{self.total} stored and verified"
            + (f", {self.corrupt} corrupt" if self.corrupt else "")
            + (f", {self.missing} to run" if self.missing else " — complete"),
        ]
        if self.fingerprint_drift:
            lines.append(
                "-- note: source tree changed since the manifest was "
                "pinned; stored points will re-simulate")
        elif self.pinned:
            lines.append("-- digests pinned: resumes verify against the "
                         "manifest")
        for shard in self.shards:
            bar = "done" if shard.stored == shard.total else \
                f"{shard.stored}/{shard.total}"
            lines.append(f"-- shard {shard.index}: {bar}")
        return "\n".join(lines)


def campaign_status(
    manifest: Union[CampaignManifest, str, Path],
) -> CampaignStatus:
    if not isinstance(manifest, CampaignManifest):
        manifest = CampaignManifest.load(manifest)
    grid = manifest.grid()
    cache = SweepCache(manifest.resolved_cache_dir())
    ledger_digests = read_ledger(manifest.ledger_path())
    stored = corrupt = 0
    per_shard = [0] * manifest.shards
    for index, point in enumerate(grid):
        key = cache.point_key(point)
        expected = manifest.expected.get(key) or ledger_digests.get(key)
        result = _verified_result(cache, point, expected)
        if result is not None:
            stored += 1
            per_shard[index % manifest.shards] += 1
        elif cache.has(point):
            corrupt += 1
    shard_rows = [
        ShardStatus(
            index=i,
            total=len(range(i, len(grid), manifest.shards)),
            stored=per_shard[i],
        )
        for i in range(manifest.shards)
    ]
    fingerprint = code_fingerprint()
    return CampaignStatus(
        experiment=manifest.experiment,
        total=len(grid),
        stored=stored,
        corrupt=corrupt,
        shards=shard_rows,
        pinned=bool(manifest.expected),
        fingerprint_drift=(manifest.fingerprint is not None
                           and manifest.fingerprint != fingerprint),
    )


# -- merge -------------------------------------------------------------------


def merge_campaign(
    manifest: Union[CampaignManifest, str, Path],
    extra_cache_dirs: Sequence[Union[str, Path]] = (),
    jobs: int = 1,
    strict: bool = False,
    backend: Optional[str] = None,
) -> SweepResult:
    """:func:`repro.sim.sweep.merge_sweeps` driven by a manifest.

    The spec (experiment, seeds, overrides) comes from the manifest
    instead of re-typed flags, the manifest's cache dir is always the
    primary store, and with ``strict`` the merge additionally verifies
    every folded digest — and the combined sweep digest — against the
    digests the manifest pinned at completion.  A strict merge over a
    lost shard fails naming the gap; a strict merge over silently
    altered bytes fails naming the first drifted point.
    """
    if not isinstance(manifest, CampaignManifest):
        manifest = CampaignManifest.load(manifest)
    dirs: list[Union[str, Path]] = [manifest.resolved_cache_dir()]
    dirs.extend(extra_cache_dirs)
    result = merge_sweeps(
        manifest.experiment, manifest.seeds, manifest.overrides,
        cache_dirs=dirs, jobs=jobs, strict=strict,
        backend=backend if backend is not None else manifest.backend,
    )
    if strict and manifest.expected:
        cache = SweepCache(dirs[0])
        for summary in result.points:
            key = cache.point_key(summary.point)
            pinned = manifest.expected.get(key)
            if pinned is not None and pinned != summary.digest:
                raise CampaignError(
                    f"strict merge: point [{summary.point.describe()}] "
                    f"digest {summary.digest} does not match the "
                    f"manifest's pinned {pinned}")
    drifted = (manifest.fingerprint is not None
               and manifest.fingerprint != code_fingerprint())
    if strict and manifest.expected_sweep_digest is not None and not drifted:
        digest = result.digest()
        if digest != manifest.expected_sweep_digest:
            raise CampaignError(
                f"strict merge: sweep digest {digest} does not match the "
                f"manifest's pinned {manifest.expected_sweep_digest}")
    return result
