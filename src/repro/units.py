"""Time, energy, and electrical unit helpers.

The simulator runs on an integer nanosecond clock.  One CPU cycle on the
modeled MSP430F1611 at 1 MHz is exactly 1000 ns, so all cycle-denominated
costs convert to integer tick counts with no rounding.  Energies are plain
floats in joules, currents in amperes, and voltages in volts; the helpers
here exist so call sites read like the paper ("500 us", "8.33 uJ") instead
of bare exponents.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time: integer nanoseconds.
# ---------------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds (identity, but rounds floats to the integer grid)."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Seconds to integer nanoseconds."""
    return int(round(value * NS_PER_S))


def to_us(t_ns: int) -> float:
    """Integer nanoseconds to float microseconds."""
    return t_ns / NS_PER_US


def to_ms(t_ns: int) -> float:
    """Integer nanoseconds to float milliseconds."""
    return t_ns / NS_PER_MS


def to_s(t_ns: int) -> float:
    """Integer nanoseconds to float seconds."""
    return t_ns / NS_PER_S


# ---------------------------------------------------------------------------
# Electrical units: currents in amperes, energy in joules, power in watts.
# ---------------------------------------------------------------------------


def ua(value: float) -> float:
    """Microamps to amps."""
    return value * 1e-6


def ma(value: float) -> float:
    """Milliamps to amps."""
    return value * 1e-3


def to_ma(amps: float) -> float:
    """Amps to milliamps."""
    return amps * 1e3


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Watts to milliwatts."""
    return watts * 1e3


def uj(value: float) -> float:
    """Microjoules to joules."""
    return value * 1e-6


def mj(value: float) -> float:
    """Millijoules to joules."""
    return value * 1e-3


def to_mj(joules: float) -> float:
    """Joules to millijoules."""
    return joules * 1e3


def to_uj(joules: float) -> float:
    """Joules to microjoules."""
    return joules * 1e6


# ---------------------------------------------------------------------------
# Formatting helpers used by reports.
# ---------------------------------------------------------------------------

_TIME_STEPS = (
    (NS_PER_S, "s"),
    (NS_PER_MS, "ms"),
    (NS_PER_US, "us"),
    (1, "ns"),
)


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond timestamp with a readable unit (e.g. '1.500 ms')."""
    for scale, suffix in _TIME_STEPS:
        if abs(t_ns) >= scale:
            return f"{t_ns / scale:.3f} {suffix}"
    return "0 ns"


def fmt_energy(joules: float) -> str:
    """Render an energy with a readable unit (e.g. '180.71 mJ')."""
    mag = abs(joules)
    if mag >= 1.0:
        return f"{joules:.3f} J"
    if mag >= 1e-3:
        return f"{joules * 1e3:.2f} mJ"
    if mag >= 1e-6:
        return f"{joules * 1e6:.2f} uJ"
    return f"{joules * 1e9:.2f} nJ"


def fmt_power(watts: float) -> str:
    """Render a power with a readable unit (e.g. '61.8 mW')."""
    mag = abs(watts)
    if mag >= 1.0:
        return f"{watts:.3f} W"
    if mag >= 1e-3:
        return f"{watts * 1e3:.3f} mW"
    return f"{watts * 1e6:.2f} uW"
