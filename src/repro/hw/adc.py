"""MCU-internal analog blocks: ADC12, DAC12, and the voltage reference.

These round out the Table 1 microcontroller sinks.  The ADC needs the
voltage reference on (its 500 uA is a separate sink, exactly as the table
lists it); conversions take a fixed time per sample and complete with an
interrupt callback.  The DAC draws one of three converting currents
depending on its settling mode (Table 1's CONVERTING-2/5/7 rows).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import us

#: 13-cycle conversion + sample-and-hold at ADC12CLK ~= 5 MHz.
ADC_SAMPLE_NS = us(20)

DAC_MODES = ("CONVERTING-2", "CONVERTING-5", "CONVERTING-7")


class VoltageReference:
    """The shared 1.5/2.5 V reference generator."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile):
        self._sink = rail.register("VoltageReference")
        self._amps = profile.current("VoltageReference", "ON")
        self.is_on = False
        self._listener: Optional[Callable[[bool], None]] = None

    def set_listener(self, fn: Callable[[bool], None]) -> None:
        self._listener = fn

    def on(self) -> None:
        if self.is_on:
            return
        self.is_on = True
        self._sink.set_current(self._amps)
        if self._listener:
            self._listener(True)

    def off(self) -> None:
        if not self.is_on:
            return
        self.is_on = False
        self._sink.off()
        if self._listener:
            self._listener(False)

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: off, draw re-derived, harness listener
        dropped."""
        if profile is not None:
            self._amps = profile.current("VoltageReference", "ON")
        self.is_on = False
        self._listener = None


class Adc:
    """ADC12: multi-sample conversions with a completion interrupt."""

    def __init__(self, sim: Simulator, rail: PowerRail,
                 profile: ActualDrawProfile, vref: VoltageReference):
        self.sim = sim
        self.vref = vref
        self._sink = rail.register("ADC")
        self._amps = profile.current("ADC", "CONVERTING")
        self.converting = False
        self._listener: Optional[Callable[[bool], None]] = None
        self.conversions = 0

    def set_listener(self, fn: Callable[[bool], None]) -> None:
        self._listener = fn

    def convert(self, samples: int, on_done: Callable[[list[int]], None]) -> None:
        """Convert ``samples`` readings; interrupt with the values."""
        if self.converting:
            raise HardwareError("ADC already converting")
        if samples <= 0:
            raise HardwareError("need at least one sample")
        if not self.vref.is_on:
            raise HardwareError("ADC conversion without the reference on")
        self.converting = True
        self.conversions += 1
        self._sink.set_current(self._amps)
        if self._listener:
            self._listener(True)

        def done() -> None:
            self.converting = False
            self._sink.off()
            if self._listener:
                self._listener(False)
            on_done([2048] * samples)

        self.sim.after(samples * ADC_SAMPLE_NS, done)

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: idle, tallies zeroed, draw re-derived."""
        if profile is not None:
            self._amps = profile.current("ADC", "CONVERTING")
        self.converting = False
        self.conversions = 0
        self._listener = None


class Dac:
    """DAC12: holds an output; draws per its settling mode while enabled."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile):
        self._rail_profile = profile
        self._sink = rail.register("DAC")
        self.mode: Optional[str] = None
        self._listener: Optional[Callable[[Optional[str]], None]] = None

    def set_listener(self, fn: Callable[[Optional[str]], None]) -> None:
        self._listener = fn

    def enable(self, mode: str) -> None:
        if mode not in DAC_MODES:
            raise HardwareError(f"unknown DAC mode {mode!r}")
        self.mode = mode
        self._sink.set_current(self._rail_profile.current("DAC", mode))
        if self._listener:
            self._listener(mode)

    def disable(self) -> None:
        if self.mode is None:
            return
        self.mode = None
        self._sink.off()
        if self._listener:
            self._listener(None)

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: disabled, harness listener dropped."""
        if profile is not None:
            self._rail_profile = profile
        self.mode = None
        self._listener = None
