"""The HydroWatch platform: one node's worth of hardware, assembled.

A :class:`HydrowatchPlatform` owns the power rail, the MCU, both timer
blocks, the clock system, the LED bank, the SPI bus, the radio, the
external flash, the SHT11 sensor, the analog blocks, and the iCount meter.
The OS layer (:mod:`repro.tos`) builds on exactly this surface; nothing in
the platform knows about Quanto.

``PlatformConfig`` centralizes every knob the experiments turn: supply
voltage, actual-draw profile, device variation, meter error, scope noise,
the DCO-calibration leak, and the SPI transfer mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.adc import Adc, Dac, VoltageReference
from repro.hw.catalog import ActualDrawProfile, default_actual_profile
from repro.hw.clock import ClockSystem
from repro.hw.flash import ExternalFlash
from repro.hw.hwtimer import TimerBlock
from repro.hw.leds import LedBank
from repro.hw.mcu import Mcu
from repro.hw.misc import (
    AnalogComparator,
    InternalFlash,
    InternalTempSensor,
    SupplySupervisor,
)
from repro.hw.power import PowerRail
from repro.hw.radio import Radio
from repro.hw.sensor import Sht11Sensor
from repro.hw.spi import SpiBus
from repro.meter.icount import ICountMeter
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory


@dataclass
class PlatformConfig:
    """Per-node hardware configuration."""

    node_id: int = 1
    voltage: float = 3.0
    profile: Optional[ActualDrawProfile] = None
    sleep_state: str = "LPM3"
    dco_calibration: bool = False
    spi_mode: str = "irq"  # 'irq' or 'dma'
    icount_gain_error: float = 0.0
    icount_jitter_pulses: float = 0.0
    device_variation: float = 0.0
    supervisor_enabled: bool = False  # its draw is folded into the baseline

    def resolved_profile(self, rng_factory: RngFactory,
                         node_id: int) -> ActualDrawProfile:
        profile = self.profile if self.profile is not None else default_actual_profile()
        if self.device_variation:
            profile = ActualDrawProfile(
                draws=dict(profile.draws),
                baseline_amps=profile.baseline_amps,
                variation=self.device_variation,
            )
            profile = profile.with_variation(
                rng_factory.stream(f"node{node_id}.variation")
            )
        return profile


class HydrowatchPlatform:
    """All the hardware of one node, wired to a shared simulator."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[PlatformConfig] = None,
        rng_factory: Optional[RngFactory] = None,
    ) -> None:
        self.sim = sim
        self.config = config or PlatformConfig()
        self.rng = rng_factory or RngFactory(0)
        node_id = self.config.node_id
        self.profile = self.config.resolved_profile(self.rng, node_id)

        self.rail = PowerRail(sim, voltage=self.config.voltage)
        # The always-on floor (regulator quiescent draw, sleep leakage,
        # supervisor): the regressions report this as the "Const." column.
        self._baseline = self.rail.register("Baseline")
        self._baseline.set_current(self.profile.baseline_amps)

        self.mcu = Mcu(
            sim, self.rail, self.profile, sleep_state=self.config.sleep_state
        )
        self.timer_a = TimerBlock(sim, "TIMERA", 3)
        self.timer_b = TimerBlock(sim, "TIMERB", 7)
        self.clock = ClockSystem(
            sim, self.timer_a, dco_calibration=self.config.dco_calibration
        )
        self.leds = LedBank(self.rail, self.profile)
        self.spi = SpiBus(sim)
        self.radio = Radio(sim, self.rail, self.profile, node_id)
        self.flash = ExternalFlash(sim, self.rail, self.profile)
        self.sensor = Sht11Sensor(
            sim, self.rail, rng=self.rng.stream(f"node{node_id}.sht11")
        )
        self.vref = VoltageReference(self.rail, self.profile)
        self.adc = Adc(sim, self.rail, self.profile, self.vref)
        self.dac = Dac(self.rail, self.profile)
        self.internal_flash = InternalFlash(sim, self.rail, self.profile)
        self.internal_temp = InternalTempSensor(self.rail, self.profile)
        self.comparator = AnalogComparator(self.rail, self.profile)
        self.supervisor = SupplySupervisor(
            self.rail, self.profile, enabled=self.config.supervisor_enabled
        )
        self.icount = ICountMeter(
            self.rail,
            gain_error=self.config.icount_gain_error,
            jitter_pulses=self.config.icount_jitter_pulses,
            rng=self.rng.stream(f"node{node_id}.icount"),
        )

    # -- warm-start reset -------------------------------------------------

    def reset(self) -> None:
        """Return every hardware block to its post-construction state.

        Part of the warm-start protocol.  The caller has already re-keyed
        ``self.rng`` (:meth:`RngFactory.reseed`) and reset the simulator;
        this re-resolves the per-device draw variation for the new seed —
        consuming the variation stream exactly as construction would —
        and pushes the fresh profile into every block that caches draws,
        then re-applies the initial currents onto the zeroed rail.
        """
        node_id = self.config.node_id
        self.profile = self.config.resolved_profile(self.rng, node_id)
        profile = self.profile
        self.rail.reset()
        self._baseline.set_current(profile.baseline_amps)
        self.mcu.reset(profile)
        self.timer_a.reset()
        self.timer_b.reset()
        self.clock.reset()
        self.leds.reset(profile)
        self.spi.reset()
        self.radio.reset(profile)
        self.flash.reset(profile)
        self.sensor.reset()
        self.vref.reset(profile)
        self.adc.reset(profile)
        self.dac.reset(profile)
        self.internal_flash.reset(profile)
        self.internal_temp.reset(profile)
        self.comparator.reset(profile)
        self.supervisor.reset(profile, enabled=self.config.supervisor_enabled)
        self.icount.reset()

    @property
    def node_id(self) -> int:
        return self.config.node_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HydrowatchPlatform node={self.node_id}>"
