"""AT45DB161D-class external NOR flash model.

This device is the paper's worked example of *shadowed* power states
(Section 2.4): the chip transitions between idle, ready, and busy states
that the CPU does not directly control — it observes them through the
ready/busy handshake.  The model exposes a ``ready_listener`` so the
instrumented driver can mirror those transitions into Quanto power states,
and it actually stores page data so read-back tests are meaningful.

Timing (datasheet-typical): page program 3 ms, page erase 10 ms, block
erase 45 ms, wake from deep power-down 35 us, continuous read at the SPI
wire rate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import ms, us

PAGE_SIZE = 528
PAGE_COUNT = 4096

WAKEUP_NS = us(35)
PAGE_PROGRAM_NS = ms(3)
PAGE_ERASE_NS = ms(10)
BYTE_READ_NS = us(32)

STATE_POWER_DOWN = "POWER_DOWN"
STATE_STANDBY = "STANDBY"
STATE_READ = "READ"
STATE_WRITE = "WRITE"
STATE_ERASE = "ERASE"


class ExternalFlash:
    """The flash chip: states, timing, the ready line, and page storage."""

    def __init__(self, sim: Simulator, rail: PowerRail,
                 profile: ActualDrawProfile):
        self.sim = sim
        self.profile = profile
        self._sink = rail.register("ExternalFlash")
        self.state = STATE_POWER_DOWN
        self._pages: dict[int, bytes] = {}
        self._busy = False
        self._ready_listener: Optional[Callable[[str, bool], None]] = None
        self.operations = 0
        self._apply(STATE_POWER_DOWN)

    def set_ready_listener(self, fn: Callable[[str, bool], None]) -> None:
        """Driver hook: called as ``fn(state_name, busy)`` on every
        transition — the handshake lines the driver shadows."""
        self._ready_listener = fn

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: powered down, storage erased, tally zeroed.
        The ready-listener wiring (installed by the driver at node
        construction) survives, but the listener is *not* notified — the
        driver resets its own shadow state separately."""
        if profile is not None:
            self.profile = profile
        self.state = STATE_POWER_DOWN
        self._pages.clear()
        self._busy = False
        self.operations = 0
        self._sink.set_current(
            self.profile.current("ExternalFlash", STATE_POWER_DOWN))

    def _apply(self, state: str) -> None:
        self.state = state
        self._sink.set_current(self.profile.current("ExternalFlash", state))
        if self._ready_listener:
            self._ready_listener(state, self._busy)

    def _require_idle(self) -> None:
        if self._busy:
            raise HardwareError("flash is busy")

    # -- power -------------------------------------------------------------

    def wake(self, on_ready: Callable[[], None]) -> None:
        """Leave deep power-down; ready after the wake-up latency."""
        self._require_idle()
        if self.state != STATE_POWER_DOWN:
            raise HardwareError(f"wake in state {self.state}")
        self._busy = True

        def ready() -> None:
            self._busy = False
            self._apply(STATE_STANDBY)
            on_ready()

        self.sim.after(WAKEUP_NS, ready)

    def power_down(self) -> None:
        self._require_idle()
        self._apply(STATE_POWER_DOWN)

    # -- operations ----------------------------------------------------------

    def _check_page(self, page: int) -> None:
        if not 0 <= page < PAGE_COUNT:
            raise HardwareError(f"page {page} out of range")

    def program_page(self, page: int, data: bytes,
                     on_done: Callable[[], None]) -> None:
        """Program a page; the chip is busy (WRITE draw) for 3 ms and then
        raises the ready line."""
        self._require_idle()
        if self.state != STATE_STANDBY:
            raise HardwareError(f"program in state {self.state}")
        self._check_page(page)
        if len(data) > PAGE_SIZE:
            raise HardwareError(f"page data too large: {len(data)}")
        self._busy = True
        self.operations += 1
        self._apply(STATE_WRITE)

        def done() -> None:
            self._pages[page] = bytes(data)
            self._busy = False
            self._apply(STATE_STANDBY)
            on_done()

        self.sim.after(PAGE_PROGRAM_NS, done)

    def erase_page(self, page: int, on_done: Callable[[], None]) -> None:
        """Erase a page (10 ms busy at the ERASE draw)."""
        self._require_idle()
        if self.state != STATE_STANDBY:
            raise HardwareError(f"erase in state {self.state}")
        self._check_page(page)
        self._busy = True
        self.operations += 1
        self._apply(STATE_ERASE)

        def done() -> None:
            self._pages.pop(page, None)
            self._busy = False
            self._apply(STATE_STANDBY)
            on_done()

        self.sim.after(PAGE_ERASE_NS, done)

    def read_page(self, page: int, nbytes: int,
                  on_done: Callable[[bytes], None]) -> None:
        """Continuous-array read of ``nbytes`` from a page at wire speed."""
        self._require_idle()
        if self.state != STATE_STANDBY:
            raise HardwareError(f"read in state {self.state}")
        self._check_page(page)
        self._busy = True
        self.operations += 1
        self._apply(STATE_READ)
        stored = self._pages.get(page, b"\xff" * PAGE_SIZE)  # erased = 0xFF
        data = stored[:nbytes].ljust(nbytes, b"\xff")

        def done() -> None:
            self._busy = False
            self._apply(STATE_STANDBY)
            on_done(data)

        self.sim.after(nbytes * BYTE_READ_NS, done)
