"""LED bank: three GPIO-driven LEDs (red, green, blue).

The hardware side is trivial — each LED is a sink that draws its actual
profile current while the pin is low (LEDs on this platform are active-low,
as the paper's Figure 2 comments note).  State-change notifications go to
an optional listener per LED, which is where the instrumented driver plugs
in its ``PowerState.set`` calls.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail

LED_NAMES = ("LED0", "LED1", "LED2")
LED_COLORS = {"LED0": "red", "LED1": "green", "LED2": "blue"}


class Led:
    """A single LED: on/off with ground-truth current bookkeeping."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile, name: str):
        if name not in LED_NAMES:
            raise HardwareError(f"unknown LED {name!r}")
        self.name = name
        self.color = LED_COLORS[name]
        self._sink = rail.register(name)
        self._on_amps = profile.current(name, "ON")
        self._is_on = False
        self._listener: Optional[Callable[[bool], None]] = None
        self.toggle_count = 0

    def set_listener(self, fn: Callable[[bool], None]) -> None:
        """Install the driver's state-change observer (called with the new
        on/off state after every *actual* change)."""
        self._listener = fn

    @property
    def is_on(self) -> bool:
        return self._is_on

    def on(self) -> None:
        if self._is_on:
            return
        self._is_on = True
        self.toggle_count += 1
        self._sink.set_current(self._on_amps)
        if self._listener:
            self._listener(True)

    def off(self) -> None:
        if not self._is_on:
            return
        self._is_on = False
        self.toggle_count += 1
        self._sink.off()
        if self._listener:
            self._listener(False)

    def toggle(self) -> None:
        if self._is_on:
            self.off()
        else:
            self.on()

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: off, tally zeroed, the on-draw re-derived
        for the (possibly re-varied) profile.  Listeners are attached by
        harness code, not platform construction, so they are dropped."""
        if profile is not None:
            self._on_amps = profile.current(self.name, "ON")
        self._is_on = False
        self.toggle_count = 0
        self._listener = None


class LedBank:
    """The platform's three LEDs."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile):
        self.leds = tuple(Led(rail, profile, name) for name in LED_NAMES)

    def led(self, index: int) -> Led:
        try:
            return self.leds[index]
        except IndexError:
            raise HardwareError(f"no LED {index}") from None

    def all_off(self) -> None:
        for led in self.leds:
            led.off()

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset of all three LEDs."""
        for led in self.leds:
            led.reset(profile)
