"""CC2420-class 802.15.4 radio model.

State machine (times from the CC2420 datasheet, rounded to the values the
TinyOS stack uses):

    OFF --vreg_on (580 us)--> VREG --osc_on (860 us)--> IDLE
    IDLE --rx calibrate (192 us)--> RX (listen / receive)
    IDLE or RX --tx calibrate (192 us)--> TX (preamble+SFD, payload) --> RX

Ground-truth sinks: the regulator, the control path (oscillator/bias,
drawn in any powered state past VREG), the RX path (drawn in RX and during
calibration), and the TX path (drawn while transmitting).

The radio talks to a :class:`~repro.net.channel.RadioChannel` for actual
frame exchange, CCA, and interference.  Interrupt lines (SFD capture,
RX-FIFO threshold) are plain callables installed by the driver layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail
from repro.sim.engine import Event, Simulator
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.channel import RadioChannel

#: 802.15.4 wire speed: 250 kbit/s = 32 us per byte.
SYMBOL_BYTE_NS = us(32)

#: Synchronization header: 4 preamble bytes + 1 SFD byte.
PREAMBLE_BYTES = 5
PREAMBLE_NS = PREAMBLE_BYTES * SYMBOL_BYTE_NS

VREG_DELAY_NS = us(580)
OSC_DELAY_NS = us(860)
CALIBRATION_NS = us(192)

#: CCA needs 8 symbol periods of RX before the reading is valid.
CCA_VALID_NS = us(128)

STATE_OFF = "OFF"
STATE_VREG = "VREG"
STATE_IDLE = "IDLE"
STATE_RX_CALIB = "RX_CALIB"
STATE_RX = "RX"
STATE_TX_CALIB = "TX_CALIB"
STATE_TX = "TX"

#: TX power register settings -> (dBm label, tx-path state name).
TX_POWER_STATES = {
    0: "TX_0dBm",
    -1: "TX_-1dBm",
    -3: "TX_-3dBm",
    -5: "TX_-5dBm",
    -7: "TX_-7dBm",
    -10: "TX_-10dBm",
    -15: "TX_-15dBm",
    -25: "TX_-25dBm",
}


@dataclass
class Frame:
    """An over-the-air 802.15.4 frame (Active Message payload inside).

    ``activity`` is Quanto's hidden 16-bit label field — part of the frame
    body, invisible to the application (Section 3.3 of the paper).
    """

    src: int
    dst: int
    am_type: int
    payload: bytes
    activity: int = 0
    seqno: int = 0

    @property
    def length(self) -> int:
        """Frame length on the wire: 11 header bytes (FCF, seq, addresses,
        AM type), the hidden 2-byte activity field, payload, 2-byte CRC."""
        return 11 + 2 + len(self.payload) + 2

    def airtime_ns(self) -> int:
        """Time on air after the SFD, i.e. length byte + body."""
        return (1 + self.length) * SYMBOL_BYTE_NS


class Radio:
    """The radio chip: power states, FIFOs, and channel interaction."""

    def __init__(
        self,
        sim: Simulator,
        rail: PowerRail,
        profile: ActualDrawProfile,
        node_id: int,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.profile = profile
        self._vreg = rail.register("RadioRegulator")
        self._control = rail.register("RadioControlPath")
        self._rx_path = rail.register("RadioRxPath")
        self._tx_path = rail.register("RadioTxPath")
        self._battery_monitor = rail.register("RadioBatteryMonitor")
        self.battery_monitor_enabled = False
        self.state = STATE_OFF
        self.channel: Optional["RadioChannel"] = None
        self.freq_channel = 26  # 802.15.4 channel number (11..26)
        self.tx_power_dbm = 0
        # Interrupt lines, installed by the driver.
        self.on_sfd: Optional[Callable[[], None]] = None
        self.on_rx_done: Optional[Callable[[], None]] = None
        self.on_tx_sfd: Optional[Callable[[], None]] = None
        self.on_tx_done: Optional[Callable[[], None]] = None
        self._state_listener: Optional[Callable[[str], None]] = None
        self.tx_fifo: Optional[Frame] = None
        self.rx_fifo: list[Frame] = []
        self._rx_in_progress: Optional[Frame] = None
        self._pending: Optional[Event] = None
        self.frames_sent = 0
        self.frames_received = 0
        # Per-state current lookup tables: the radio transitions states
        # on every frame (calibrate, TX, fall back to RX), so the four
        # sink draws per (state, tx-power) pair are interned once and a
        # transition becomes a dict hit, not four catalog walks.
        self._state_currents: dict[tuple[str, int],
                                   tuple[float, float, float, float]] = {}
        self._vreg.set_current(profile.current("RadioRegulator", "OFF"))

    # -- warm-start reset -------------------------------------------------

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Return to the post-construction state (OFF, FIFOs empty,
        tallies zeroed), re-deriving the per-state draw LUT when the
        profile was re-varied.

        Only supported for a detached radio (no channel): a node wired
        into a network cannot be warm-reset in isolation.
        """
        if self.channel is not None:
            raise HardwareError("cannot reset a radio attached to a channel")
        if profile is not None:
            self.profile = profile
        self._state_currents.clear()
        self.battery_monitor_enabled = False
        self.state = STATE_OFF
        self.tx_power_dbm = 0
        self.tx_fifo = None
        self.rx_fifo.clear()
        self._rx_in_progress = None
        self._pending = None
        self.frames_sent = 0
        self.frames_received = 0
        self._vreg.set_current(self.profile.current("RadioRegulator", "OFF"))

    # -- wiring ---------------------------------------------------------

    def attach(self, channel: "RadioChannel") -> None:
        """Connect to a channel (done by the network assembly)."""
        self.channel = channel
        channel.register(self)

    def set_state_listener(self, fn: Callable[[str], None]) -> None:
        """Driver hook: observe every radio power-state transition."""
        self._state_listener = fn

    def set_channel_number(self, freq_channel: int) -> None:
        if not 11 <= freq_channel <= 26:
            raise HardwareError(f"bad 802.15.4 channel {freq_channel}")
        self.freq_channel = freq_channel

    def battery_monitor_enable(self) -> None:
        """Enable the on-chip battery monitor (Table 1: 30 uA while
        enabled).  Needs the regulator up."""
        if self.state == STATE_OFF:
            raise HardwareError("battery monitor needs the regulator on")
        self.battery_monitor_enabled = True
        self._battery_monitor.set_current(
            self.profile.current("RadioBatteryMonitor", "ENABLED"))

    def battery_monitor_disable(self) -> None:
        self.battery_monitor_enabled = False
        self._battery_monitor.off()

    # -- ground-truth plumbing -------------------------------------------

    def _state_draws(self, state: str) -> tuple[float, float, float, float]:
        """(vreg, control, rx, tx) amps for one (state, tx-power) pair —
        computed once from the profile, then a dict hit."""
        key = (state, self.tx_power_dbm)
        draws = self._state_currents.get(key)
        if draws is None:
            vreg_state = "OFF" if state == STATE_OFF else "ON"
            control_on = state not in (STATE_OFF, STATE_VREG)
            rx_on = state in (STATE_RX, STATE_RX_CALIB)
            tx_on = state in (STATE_TX, STATE_TX_CALIB)
            tx_state = TX_POWER_STATES.get(self.tx_power_dbm, "TX_0dBm")
            draws = (
                self.profile.current("RadioRegulator", vreg_state),
                self.profile.current("RadioControlPath", "IDLE")
                if control_on else 0.0,
                self.profile.current("RadioRxPath", "RX_LISTEN")
                if rx_on else 0.0,
                self.profile.current("RadioTxPath", tx_state)
                if tx_on else 0.0,
            )
            self._state_currents[key] = draws
        return draws

    def _enter(self, state: str) -> None:
        self.state = state
        vreg, control, rx, tx = self._state_draws(state)
        self._vreg.set_current(vreg)
        self._control.set_current(control)
        self._rx_path.set_current(rx)
        self._tx_path.set_current(tx)
        if self._state_listener:
            self._state_listener(state)

    # -- power control -----------------------------------------------------

    def vreg_on(self, on_done: Callable[[], None]) -> None:
        """Turn the voltage regulator on; callback after the ramp."""
        if self.state != STATE_OFF:
            raise HardwareError(f"vreg_on in state {self.state}")
        self._enter(STATE_VREG)
        self.sim.after(VREG_DELAY_NS, on_done)

    def vreg_off(self) -> None:
        """Kill the regulator from any state (also aborts RX/TX)."""
        self._cancel_pending()
        self._rx_in_progress = None
        if self.channel is not None:
            self.channel.radio_stopped_listening(self)
        self.battery_monitor_disable()
        self._enter(STATE_OFF)

    def osc_on(self, on_done: Callable[[], None]) -> None:
        """Start the crystal oscillator; callback when stable (IDLE)."""
        if self.state != STATE_VREG:
            raise HardwareError(f"osc_on in state {self.state}")

        def stable() -> None:
            self._enter(STATE_IDLE)
            on_done()

        self.sim.after(OSC_DELAY_NS, stable)

    def rx_on(self, on_ready: Optional[Callable[[], None]] = None) -> None:
        """Strobe SRXON: calibrate then listen."""
        if self.state not in (STATE_IDLE, STATE_RX):
            raise HardwareError(f"rx_on in state {self.state}")
        if self.state == STATE_RX:
            if on_ready:
                self.sim.call_now(on_ready)
            return
        self._enter(STATE_RX_CALIB)

        def calibrated() -> None:
            self._enter(STATE_RX)
            if self.channel is not None:
                self.channel.radio_started_listening(self)
            if on_ready:
                on_ready()

        self._pending = self.sim.after(CALIBRATION_NS, calibrated)

    def rf_off(self) -> None:
        """Strobe SRFOFF: back to IDLE (oscillator stays on)."""
        if self.state in (STATE_OFF, STATE_VREG):
            raise HardwareError(f"rf_off in state {self.state}")
        self._cancel_pending()
        if self.state in (STATE_RX, STATE_RX_CALIB) and self.channel is not None:
            self.channel.radio_stopped_listening(self)
        self._rx_in_progress = None
        self._enter(STATE_IDLE)

    def _cancel_pending(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    # -- transmit ------------------------------------------------------------

    def load_tx_fifo(self, frame: Frame) -> None:
        """Latch the frame the SPI transfer deposited (driver calls this
        when the FIFO write completes)."""
        self.tx_fifo = frame

    def strobe_tx(self) -> None:
        """STXON: calibrate, send preamble+SFD, then the frame body."""
        if self.tx_fifo is None:
            raise HardwareError("strobe_tx with empty TXFIFO")
        if self.state not in (STATE_IDLE, STATE_RX):
            raise HardwareError(f"strobe_tx in state {self.state}")
        if self.state in (STATE_RX, STATE_RX_CALIB) and self.channel is not None:
            self.channel.radio_stopped_listening(self)
        frame = self.tx_fifo
        self._enter(STATE_TX_CALIB)

        def calibrated() -> None:
            self._enter(STATE_TX)
            if self.channel is not None:
                self.channel.begin_transmission(self, frame)
            self._pending = self.sim.after(PREAMBLE_NS, sfd_sent)

        def sfd_sent() -> None:
            if self.on_tx_sfd:
                self.on_tx_sfd()
            self._pending = self.sim.after(frame.airtime_ns(), tx_done)

        def tx_done() -> None:
            self.frames_sent += 1
            self.tx_fifo = None
            if self.channel is not None:
                self.channel.end_transmission(self, frame)
            # CC2420 falls back to RX after TX completes.
            self._enter(STATE_RX)
            if self.channel is not None:
                self.channel.radio_started_listening(self)
            if self.on_tx_done:
                self.on_tx_done()

        self._pending = self.sim.after(CALIBRATION_NS, calibrated)

    # -- receive (driven by the channel) ------------------------------------

    def channel_frame_begins(self, frame: Frame) -> None:
        """Channel announces a frame whose preamble just started.  If we are
        listening, lock on: SFD interrupt after the preamble, frame into the
        RXFIFO after the body."""
        if self.state != STATE_RX or self._rx_in_progress is not None:
            return
        self._rx_in_progress = frame

        def sfd() -> None:
            if self._rx_in_progress is not frame:
                return
            if self.on_sfd:
                self.on_sfd()
            self._pending = self.sim.after(frame.airtime_ns(), complete)

        def complete() -> None:
            if self._rx_in_progress is not frame:
                return
            self._rx_in_progress = None
            self.rx_fifo.append(frame)
            self.frames_received += 1
            if self.on_rx_done:
                self.on_rx_done()

        self._pending = self.sim.after(PREAMBLE_NS, sfd)

    def read_rx_fifo(self) -> Frame:
        """Pop the oldest received frame (driver does this over SPI)."""
        if not self.rx_fifo:
            raise HardwareError("RXFIFO empty")
        return self.rx_fifo.pop(0)

    # -- CCA -------------------------------------------------------------

    def cca_clear(self) -> bool:
        """Clear-channel assessment; only valid in RX."""
        if self.state != STATE_RX:
            raise HardwareError(f"CCA in state {self.state}")
        if self.channel is None:
            return True
        return not self.channel.energy_detected(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Radio node={self.node_id} {self.state} ch={self.freq_channel}>"
