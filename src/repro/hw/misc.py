"""Remaining Table 1 microcontroller sinks: internal flash controller,
internal temperature sensor, analog comparator, and the supply supervisor.

These are small but real: the supply supervisor's 15 uA is part of every
node's always-on floor, and internal-flash program/erase shows up whenever
a deployment writes configuration to the MCU's own flash.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import ms, us

#: MSP430 flash: ~ 17 ms segment erase, ~75 us per word program.
SEGMENT_ERASE_NS = ms(17)
WORD_PROGRAM_NS = us(75)


class InternalFlash:
    """The MCU's own flash controller (PROGRAM / ERASE draws)."""

    def __init__(self, sim: Simulator, rail: PowerRail,
                 profile: ActualDrawProfile):
        self.sim = sim
        self.profile = profile
        self._sink = rail.register("InternalFlash")
        self.busy = False
        self._listener: Optional[Callable[[str], None]] = None

    def set_listener(self, fn: Callable[[str], None]) -> None:
        self._listener = fn

    def _begin(self, state: str) -> None:
        self.busy = True
        self._sink.set_current(self.profile.current("InternalFlash", state))
        if self._listener:
            self._listener(state)

    def _end(self) -> None:
        self.busy = False
        self._sink.off()
        if self._listener:
            self._listener("IDLE")

    def program_words(self, count: int, on_done: Callable[[], None]) -> None:
        if self.busy:
            raise HardwareError("internal flash busy")
        if count <= 0:
            raise HardwareError("need at least one word")
        self._begin("PROGRAM")

        def done() -> None:
            self._end()
            on_done()

        self.sim.after(count * WORD_PROGRAM_NS, done)

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: idle, harness listener dropped."""
        if profile is not None:
            self.profile = profile
        self.busy = False
        self._listener = None

    def erase_segment(self, on_done: Callable[[], None]) -> None:
        if self.busy:
            raise HardwareError("internal flash busy")
        self._begin("ERASE")

        def done() -> None:
            self._end()
            on_done()

        self.sim.after(SEGMENT_ERASE_NS, done)


class InternalTempSensor:
    """The MCU-internal temperature sensor (sampled through the ADC)."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile):
        self._sink = rail.register("TemperatureSensor")
        self._amps = profile.current("TemperatureSensor", "SAMPLE")
        self.sampling = False

    def start_sample(self) -> None:
        self.sampling = True
        self._sink.set_current(self._amps)

    def stop_sample(self) -> None:
        self.sampling = False
        self._sink.off()

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: not sampling, draw re-derived."""
        if profile is not None:
            self._amps = profile.current("TemperatureSensor", "SAMPLE")
        self.sampling = False


class AnalogComparator:
    """Comparator_A: draws while enabled."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile):
        self._sink = rail.register("AnalogComparator")
        self._amps = profile.current("AnalogComparator", "COMPARE")
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True
        self._sink.set_current(self._amps)

    def disable(self) -> None:
        self.enabled = False
        self._sink.off()

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Warm-start reset: disabled, draw re-derived."""
        if profile is not None:
            self._amps = profile.current("AnalogComparator", "COMPARE")
        self.enabled = False


class SupplySupervisor:
    """SVS: on by default on this platform; part of the constant floor."""

    def __init__(self, rail: PowerRail, profile: ActualDrawProfile,
                 enabled: bool = True):
        self._sink = rail.register("SupplySupervisor")
        self._amps = profile.current("SupplySupervisor", "ON")
        self.enabled = False
        if enabled:
            self.enable()

    def enable(self) -> None:
        self.enabled = True
        self._sink.set_current(self._amps)

    def disable(self) -> None:
        self.enabled = False
        self._sink.off()

    def reset(self, profile: Optional[ActualDrawProfile] = None,
              enabled: bool = False) -> None:
        """Warm-start reset: draw re-derived, re-enabled when the node
        config folds the supervisor into the always-on floor."""
        if profile is not None:
            self._amps = profile.current("SupplySupervisor", "ON")
        self.enabled = False
        if enabled:
            self.enable()
