"""The SPI/USART bus between the MCU and the radio (and external flash).

Two transfer modes, matching the paper's third case study (Figure 16):

* **Interrupt-driven** — the USART shifts two bytes, raises an RX interrupt
  (``int_UART0RX`` in the paper's traces), and the handler feeds the next
  pair.  Effective throughput is dominated by per-pair interrupt overhead.
* **DMA** — a DMA channel streams the whole buffer at wire speed and raises
  a single completion interrupt (``int_DACDMA`` in the paper's traces).

The bus itself only models timing and busy/idle arbitration; the driver
layer supplies the interrupt continuations and pays CPU cycles for its
handlers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.units import us

#: Wire time to shift one byte (SPI clock ~250 kbit/s effective).
BYTE_TIME_NS = us(32)

#: Bytes moved per interrupt in interrupt-driven mode.
PAIR_SIZE = 2

#: DMA controller setup latency before the burst starts.
DMA_SETUP_NS = us(24)


class SpiBus:
    """A single-master SPI bus with pair-interrupt and DMA transfer modes."""

    def __init__(self, sim: Simulator, byte_time_ns: int = BYTE_TIME_NS):
        self.sim = sim
        self.byte_time_ns = int(byte_time_ns)
        self._busy = False
        self.pair_interrupts = 0
        self.dma_transfers = 0

    @property
    def busy(self) -> bool:
        return self._busy

    def reset(self) -> None:
        """Warm-start reset: idle bus, tallies zeroed."""
        self._busy = False
        self.pair_interrupts = 0
        self.dma_transfers = 0

    def _acquire(self) -> None:
        if self._busy:
            raise HardwareError("SPI bus is busy")
        self._busy = True

    def _release(self) -> None:
        self._busy = False

    # -- interrupt-driven mode ----------------------------------------------

    def shift_pair(self, nbytes: int, on_pair_done: Callable[[], None]) -> None:
        """Shift up to one pair of bytes, then invoke ``on_pair_done`` (the
        hardware-side RX-interrupt line).  The driver's handler calls
        :meth:`shift_pair` again for the next pair; the bus stays held by
        the caller between pairs (release with :meth:`end_transfer`)."""
        if nbytes <= 0:
            raise HardwareError("shift_pair needs at least one byte")
        if not self._busy:
            self._acquire()
        chunk = min(nbytes, PAIR_SIZE)
        self.pair_interrupts += 1
        self.sim.after(chunk * self.byte_time_ns, on_pair_done)

    def end_transfer(self) -> None:
        """Release the bus after an interrupt-driven transfer completes."""
        self._release()

    # -- DMA mode ------------------------------------------------------------

    def dma_transfer(self, nbytes: int, on_done: Callable[[], None]) -> None:
        """Stream ``nbytes`` at wire speed; one completion callback (the
        DMA-done interrupt line).  The bus is released automatically."""
        if nbytes <= 0:
            raise HardwareError("dma_transfer needs at least one byte")
        self._acquire()
        self.dma_transfers += 1
        duration = DMA_SETUP_NS + nbytes * self.byte_time_ns

        def finish() -> None:
            self._release()
            on_done()

        self.sim.after(duration, finish)

    def transfer_time_ns(self, nbytes: int, mode: str,
                         handler_latency_ns: int = 0) -> int:
        """Analytic transfer time for reports: DMA is setup + wire time;
        interrupt mode adds the per-pair handler latency."""
        if mode == "dma":
            return DMA_SETUP_NS + nbytes * self.byte_time_ns
        if mode == "irq":
            pairs = (nbytes + PAIR_SIZE - 1) // PAIR_SIZE
            return nbytes * self.byte_time_ns + pairs * handler_latency_ns
        raise HardwareError(f"unknown SPI mode {mode!r}")
