"""Hardware substrate: ground-truth electrical models of the HydroWatch
platform (MSP430-class MCU, CC2420-class radio, AT45DB-class flash, SHT11-
class sensor, LEDs, hardware timers, SPI bus).

These models maintain *hidden* ground-truth current draws on a shared
:class:`~repro.hw.power.PowerRail`.  The Quanto instrumentation never reads
that state directly — it only sees driver-signalled power-state transitions
and the iCount pulse counter, exactly as on real hardware.
"""

from repro.hw.power import PowerRail, SinkHandle
from repro.hw.catalog import (
    NOMINAL_CATALOG,
    ActualDrawProfile,
    PowerStateSpec,
    SinkSpec,
    default_actual_profile,
)
from repro.hw.platform import HydrowatchPlatform, PlatformConfig

__all__ = [
    "PowerRail",
    "SinkHandle",
    "NOMINAL_CATALOG",
    "SinkSpec",
    "PowerStateSpec",
    "ActualDrawProfile",
    "default_actual_profile",
    "HydrowatchPlatform",
    "PlatformConfig",
]
