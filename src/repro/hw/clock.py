"""The clock subsystem, including the DCO-calibration energy leak.

The paper's second case study (Figure 15) found that TimerA1 fired 16 times
per second to recalibrate the digitally controlled oscillator against the
32 kHz crystal — even in applications that never use asynchronous serial —
because the calibration was unconditionally enabled.  We model that as a
clock-subsystem behaviour: when ``dco_calibration`` is on, TimerA compare
unit 1 is re-armed every 1/16 s and its handler burns a small number of
cycles, exactly the kind of invisible background draw Quanto exposes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hw.hwtimer import TimerBlock
from repro.sim.engine import Simulator
from repro.units import NS_PER_S

#: Calibration rate observed in the paper: 16 Hz.
DCO_CALIBRATION_HZ = 16

#: Cycles the calibration ISR burns per firing (compare, adjust, return).
DCO_CALIBRATION_CYCLES = 80


class ClockSystem:
    """Owns the DCO calibration loop on TimerA1."""

    def __init__(
        self,
        sim: Simulator,
        timer_a: TimerBlock,
        dco_calibration: bool = False,
    ) -> None:
        self.sim = sim
        self.timer_a = timer_a
        self.dco_calibration = dco_calibration
        self._period_ns = NS_PER_S // DCO_CALIBRATION_HZ
        self._isr: Optional[Callable[[], None]] = None
        self.calibration_count = 0

    def start(self, isr: Callable[[], None]) -> None:
        """Begin the calibration loop; ``isr`` is the interrupt-controller
        entry point for TimerA1 (it receives no arguments)."""
        self._isr = isr
        if self.dco_calibration:
            self.timer_a.unit(1).set_handler(self._fire)
            self.timer_a.unit(1).arm(self.sim.now + self._period_ns)

    def _fire(self) -> None:
        self.calibration_count += 1
        if self._isr is not None:
            self._isr()
        self.timer_a.unit(1).arm(self.sim.now + self._period_ns)

    def stop(self) -> None:
        """Disable the calibration loop (what the paper's developers did
        once Quanto surfaced it)."""
        self.dco_calibration = False
        self.timer_a.unit(1).disarm()

    def reset(self, dco_calibration: Optional[bool] = None) -> None:
        """Warm-start reset: zero the tally and, when calibration is
        configured on, re-arm the loop exactly as :meth:`start` did at
        construction (the ISR wiring survives the reset)."""
        if dco_calibration is not None:
            self.dco_calibration = dco_calibration
        self.calibration_count = 0
        if self.dco_calibration and self._isr is not None:
            self.timer_a.unit(1).set_handler(self._fire)
            self.timer_a.unit(1).arm(self.sim.now + self._period_ns)
