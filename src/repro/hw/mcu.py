"""MSP430F1611-class microcontroller model.

The MCU executes *jobs*: run-to-completion blocks of code with declared
cycle costs.  A job's Python callback runs at the instant the job starts;
cycle costs are declared by calling :meth:`Mcu.consume` (e.g. the Quanto
logger charges 102 cycles per record), and the job occupies the CPU for the
total declared cycles at 1 cycle/us (1 MHz clock).  Jobs queued while the
CPU is busy start when the current job's cycles elapse; interrupt jobs
queue ahead of task jobs, which models TinyOS's "async preempts tasks"
semantics with a latency of at most the current job's remaining cycles.

Power: the CPU sink draws its ACTIVE current while any job is running and
its sleep-state current otherwise.  Drivers observe the ACTIVE/sleep
transitions through :meth:`add_power_listener`, which is how the Quanto
instrumentation exposes the CPU power state without touching ground truth.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.catalog import ActualDrawProfile
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator

#: CPU sleep modes, shallowest to deepest (Table 1).
SLEEP_STATES = ("LPM0", "LPM1", "LPM2", "LPM3", "LPM4")


class CpuJob:
    """One run-to-completion block: a callback plus its base cycle cost.

    ``args`` are passed to ``fn`` when the job runs — callers that would
    otherwise build a closure per post (the scheduler and interrupt
    layers post thousands of jobs per run) pass the target and its
    arguments instead.
    """

    __slots__ = ("fn", "args", "base_cycles", "label", "irq")

    def __init__(self, fn: Callable[..., None], base_cycles: int, label: str,
                 irq: bool, args: tuple = ()):
        self.fn = fn
        self.args = args
        self.base_cycles = base_cycles
        self.label = label
        self.irq = irq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "irq" if self.irq else "task"
        return f"<CpuJob {kind} {self.label!r} {self.base_cycles}cy>"


class Mcu:
    """The CPU: job queues, cycle accounting, and power-state transitions."""

    def __init__(
        self,
        sim: Simulator,
        rail: PowerRail,
        profile: ActualDrawProfile,
        cycle_ns: int = 1000,
        sleep_state: str = "LPM3",
    ) -> None:
        if sleep_state not in SLEEP_STATES:
            raise HardwareError(f"unknown sleep state {sleep_state!r}")
        self.sim = sim
        self.cycle_ns = int(cycle_ns)
        self.profile = profile
        self.sleep_state = sleep_state
        # The CPU toggles ACTIVE/sleep on every wakeup; look the two
        # draws up once instead of hitting the catalog per transition.
        self._active_amps = profile.current("CPU", "ACTIVE")
        self._sleep_amps = profile.current("CPU", sleep_state)
        self._sink = rail.register("CPU")
        self._irq_jobs: deque[CpuJob] = deque()
        self._task_jobs: deque[CpuJob] = deque()
        self._active = False
        self._in_job = False
        self._pending_cycles = 0
        self._job_start_ns = 0
        self._power_listeners: list[Callable[[str], None]] = []
        # Statistics for Table 4 / cost accounting.
        self.total_active_cycles = 0
        self.jobs_executed = 0
        self._apply_sleep_current()

    # -- warm-start reset ------------------------------------------------

    def reset(self, profile: Optional[ActualDrawProfile] = None) -> None:
        """Return to the post-construction state (idle, queues empty,
        counters zero), optionally against a new draw profile.

        Part of the warm-start protocol: a re-seeded run re-resolves the
        per-device variation, so the cached ACTIVE/sleep draws must be
        re-derived, not just re-applied.  The caller resets the rail
        first; this re-applies the sleep current on the zeroed sink.
        """
        if profile is not None:
            self.profile = profile
            self._active_amps = profile.current("CPU", "ACTIVE")
            self._sleep_amps = profile.current("CPU", self.sleep_state)
        self._irq_jobs.clear()
        self._task_jobs.clear()
        self._active = False
        self._in_job = False
        self._pending_cycles = 0
        self._job_start_ns = 0
        self.total_active_cycles = 0
        self.jobs_executed = 0
        self._apply_sleep_current()

    # -- power-state plumbing -------------------------------------------

    def add_power_listener(self, fn: Callable[[str], None]) -> None:
        """Subscribe to CPU power-state names ('ACTIVE', 'LPM3', ...).
        This is the observation point the Quanto CPU driver hooks."""
        self._power_listeners.append(fn)

    def _notify_power(self, state: str) -> None:
        for listener in self._power_listeners:
            listener(state)

    def _apply_active_current(self) -> None:
        self._sink.set_current(self._active_amps)

    def _apply_sleep_current(self) -> None:
        self._sink.set_current(self._sleep_amps)

    @property
    def active(self) -> bool:
        """True while the CPU is executing (not sleeping)."""
        return self._active

    # -- job submission ----------------------------------------------------

    def post_irq(self, fn: Callable[..., None], cycles: int = 0,
                 label: str = "irq", args: tuple = ()) -> None:
        """Queue an interrupt-context job (runs ahead of task jobs)."""
        self._post(CpuJob(fn, int(cycles), label, irq=True, args=args))

    def post_task(self, fn: Callable[..., None], cycles: int = 0,
                  label: str = "task", args: tuple = ()) -> None:
        """Queue a task-context job (FIFO among tasks)."""
        self._post(CpuJob(fn, int(cycles), label, irq=False, args=args))

    def _post(self, job: CpuJob) -> None:
        if job.irq:
            self._irq_jobs.append(job)
        else:
            self._task_jobs.append(job)
        if not self._active:
            self._wake()

    def _wake(self) -> None:
        self._active = True
        self._apply_active_current()
        self._notify_power("ACTIVE")
        self.sim.call_now(self._dispatch)

    # -- execution -----------------------------------------------------

    def _dispatch(self) -> None:
        if self._in_job:
            return
        # Inlined _next_job (kept as a method for tests/repr): dispatch
        # runs once per job and the call was pure overhead.
        if self._irq_jobs:
            job = self._irq_jobs.popleft()
        elif self._task_jobs:
            job = self._task_jobs.popleft()
        else:
            self._go_to_sleep()
            return
        sim = self.sim
        self._in_job = True
        self._pending_cycles = job.base_cycles
        self._job_start_ns = sim._now
        self.jobs_executed += 1
        try:
            job.fn(*job.args)
        finally:
            cycles = self._pending_cycles
            self._pending_cycles = 0
            self._in_job = False
            self.total_active_cycles += cycles
            # at() directly: cycles are validated non-negative, so the
            # after() delay check is redundant on this per-job path.
            sim.at(sim._now + cycles * self.cycle_ns, self._dispatch)

    def _next_job(self) -> Optional[CpuJob]:
        if self._irq_jobs:
            return self._irq_jobs.popleft()
        if self._task_jobs:
            return self._task_jobs.popleft()
        return None

    def _go_to_sleep(self) -> None:
        if not self._active:
            return
        self._active = False
        self._apply_sleep_current()
        self._notify_power(self.sleep_state)

    # -- cycle accounting ----------------------------------------------

    def consume(self, cycles: int) -> None:
        """Charge extra cycles to the currently executing job.

        Called from inside a job callback (the Quanto logger does this for
        every record).  Calling it outside a job is an error: cycle costs
        must always be attributable to a job.
        """
        if not self._in_job:
            raise HardwareError("Mcu.consume() called outside a job")
        if cycles < 0:
            raise HardwareError(f"negative cycle cost: {cycles}")
        self._pending_cycles += int(cycles)

    def idle(self) -> bool:
        """True when no jobs are queued or running."""
        return not (self._in_job or self._irq_jobs or self._task_jobs)

    def jobs_pending(self) -> int:
        """Queued (not yet started) jobs — used by the instrumentation to
        decide whether the CPU is about to sleep."""
        return len(self._irq_jobs) + len(self._task_jobs)

    def virtual_now(self) -> int:
        """Cycle-advanced time within the current job.

        A job's Python callback executes at the job's start instant, but
        the cycles it declares occupy real time.  Instrumentation (the
        Quanto logger in particular) timestamps events with this virtual
        clock so consecutive records within one job carry strictly
        increasing times, exactly as a real CPU reading its timer
        mid-execution would see.  Outside a job this is just ``sim.now``.
        """
        if not self._in_job:
            return self.sim._now
        return self._job_start_ns + self._pending_cycles * self.cycle_ns

    @property
    def total_active_time_ns(self) -> int:
        """Total CPU-active time implied by executed cycles."""
        return self.total_active_cycles * self.cycle_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "ACTIVE" if self._active else self.sleep_state
        return (
            f"<Mcu {state} irq={len(self._irq_jobs)} "
            f"tasks={len(self._task_jobs)}>"
        )
