"""SHT11-class humidity/temperature sensor model.

A split-phase device: the CPU issues a measurement command, the sensor
draws its measuring current for a fixed conversion time, then pulls the
data line low to signal completion (an interrupt on real hardware).  The
paper instrumented this driver (Table 5 lists SHT11 at 10 changed lines).

Conversion times follow the datasheet: ~55 ms for 12-bit humidity,
~210 ms for 14-bit temperature.  The measuring draw is 0.55 mA; idle is
0.3 uA (not in the paper's Table 1, which only covers the MCU-internal
sensor — the SHT11 is an external part).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.units import ma, ms, ua

MEASURE_HUMIDITY_NS = ms(55)
MEASURE_TEMPERATURE_NS = ms(210)

IDLE_AMPS = ua(0.3)
MEASURING_AMPS = ma(0.55)

STATE_IDLE = "IDLE"
STATE_MEASURING = "MEASURING"


class Sht11Sensor:
    """The sensor chip: one measurement in flight at a time."""

    def __init__(self, sim: Simulator, rail: PowerRail, rng=None):
        self.sim = sim
        self._sink = rail.register("SHT11")
        self._rng = rng
        self.state = STATE_IDLE
        self._listener: Optional[Callable[[str], None]] = None
        self.measurements = 0
        self._sink.set_current(IDLE_AMPS)

    def set_listener(self, fn: Callable[[str], None]) -> None:
        """Driver hook: observe IDLE/MEASURING transitions."""
        self._listener = fn

    def reset(self) -> None:
        """Warm-start reset: idle, tally zeroed.  The rng stream is
        re-seeded by the factory that owns it."""
        self.state = STATE_IDLE
        self.measurements = 0
        self._sink.set_current(IDLE_AMPS)

    def _apply(self, state: str, amps: float) -> None:
        self.state = state
        self._sink.set_current(amps)
        if self._listener:
            self._listener(state)

    def _measure(self, duration_ns: int, base: float, spread: float,
                 on_done: Callable[[float], None]) -> None:
        if self.state != STATE_IDLE:
            raise HardwareError("sensor is already measuring")
        self._apply(STATE_MEASURING, MEASURING_AMPS)
        self.measurements += 1

        def done() -> None:
            self._apply(STATE_IDLE, IDLE_AMPS)
            value = base
            if self._rng is not None:
                value += self._rng.gauss(0.0, spread)
            on_done(value)

        self.sim.after(duration_ns, done)

    def measure_humidity(self, on_done: Callable[[float], None]) -> None:
        """Start a humidity conversion; ``on_done(percent_rh)`` at the end."""
        self._measure(MEASURE_HUMIDITY_NS, 45.0, 2.0, on_done)

    def measure_temperature(self, on_done: Callable[[float], None]) -> None:
        """Start a temperature conversion; ``on_done(celsius)`` at the end."""
        self._measure(MEASURE_TEMPERATURE_NS, 21.5, 0.5, on_done)
