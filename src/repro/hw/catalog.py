"""The HydroWatch platform catalog (paper Table 1) and actual-draw profiles.

Two distinct data sets live here, and keeping them distinct is the point of
the paper:

* :data:`NOMINAL_CATALOG` — the *datasheet* numbers from Table 1: every
  energy sink, its power states, and the nominal current at 3 V / 1 MHz.
  These are what a model-based profiler (e.g. PowerTOSSIM) would use.

* :class:`ActualDrawProfile` — the draws a *particular physical node*
  actually exhibits, which differ from the datasheet (the paper's scope
  measurements found e.g. LED0 at 2.50 mA against a 4.3 mA nominal).  The
  simulation drives the ground-truth rail from the actual profile; Quanto's
  regression must recover these values from aggregate metering alone.

The default actual profile is calibrated so the headline experiments land
on the paper's measured numbers (Table 2, Table 3b, the 18.46 mA listen
current of Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PowerModelError
from repro.units import ma, ua


@dataclass(frozen=True)
class PowerStateSpec:
    """One row of Table 1: a named power state and its nominal current."""

    name: str
    nominal_amps: float
    note: str = ""


@dataclass(frozen=True)
class SinkSpec:
    """An energy sink (functional unit) and its power states."""

    name: str
    group: str  # "Microcontroller", "Radio", "Flash", "LEDs"
    states: tuple[PowerStateSpec, ...]

    def state(self, name: str) -> PowerStateSpec:
        for spec in self.states:
            if spec.name == name:
                return spec
        raise PowerModelError(f"sink {self.name!r} has no state {name!r}")

    def state_names(self) -> list[str]:
        return [spec.name for spec in self.states]


def _mcu_sinks() -> tuple[SinkSpec, ...]:
    return (
        SinkSpec("CPU", "Microcontroller", (
            PowerStateSpec("ACTIVE", ua(500)),
            PowerStateSpec("LPM0", ua(75)),
            PowerStateSpec("LPM1", ua(75), note="assumed"),
            PowerStateSpec("LPM2", ua(17)),
            PowerStateSpec("LPM3", ua(2.6)),
            PowerStateSpec("LPM4", ua(0.2)),
        )),
        SinkSpec("VoltageReference", "Microcontroller", (
            PowerStateSpec("ON", ua(500)),
        )),
        SinkSpec("ADC", "Microcontroller", (
            PowerStateSpec("CONVERTING", ua(800)),
        )),
        SinkSpec("DAC", "Microcontroller", (
            PowerStateSpec("CONVERTING-2", ua(50)),
            PowerStateSpec("CONVERTING-5", ua(200)),
            PowerStateSpec("CONVERTING-7", ua(700)),
        )),
        SinkSpec("InternalFlash", "Microcontroller", (
            PowerStateSpec("PROGRAM", ma(3)),
            PowerStateSpec("ERASE", ma(3)),
        )),
        SinkSpec("TemperatureSensor", "Microcontroller", (
            PowerStateSpec("SAMPLE", ua(60)),
        )),
        SinkSpec("AnalogComparator", "Microcontroller", (
            PowerStateSpec("COMPARE", ua(45)),
        )),
        SinkSpec("SupplySupervisor", "Microcontroller", (
            PowerStateSpec("ON", ua(15)),
        )),
    )


def _radio_sinks() -> tuple[SinkSpec, ...]:
    return (
        SinkSpec("RadioRegulator", "Radio", (
            PowerStateSpec("OFF", ua(1)),
            PowerStateSpec("ON", ua(22)),
            PowerStateSpec("POWER_DOWN", ua(20)),
        )),
        SinkSpec("RadioBatteryMonitor", "Radio", (
            PowerStateSpec("ENABLED", ua(30)),
        )),
        SinkSpec("RadioControlPath", "Radio", (
            PowerStateSpec("IDLE", ua(426)),
        )),
        SinkSpec("RadioRxPath", "Radio", (
            PowerStateSpec("RX_LISTEN", ma(19.7)),
        )),
        SinkSpec("RadioTxPath", "Radio", (
            PowerStateSpec("TX_0dBm", ma(17.4)),
            PowerStateSpec("TX_-1dBm", ma(16.5)),
            PowerStateSpec("TX_-3dBm", ma(15.2)),
            PowerStateSpec("TX_-5dBm", ma(13.9)),
            PowerStateSpec("TX_-7dBm", ma(12.5)),
            PowerStateSpec("TX_-10dBm", ma(11.2)),
            PowerStateSpec("TX_-15dBm", ma(9.9)),
            PowerStateSpec("TX_-25dBm", ma(8.5)),
        )),
    )


def _flash_and_led_sinks() -> tuple[SinkSpec, ...]:
    return (
        SinkSpec("ExternalFlash", "Flash", (
            PowerStateSpec("POWER_DOWN", ua(9)),
            PowerStateSpec("STANDBY", ua(25)),
            PowerStateSpec("READ", ma(7)),
            PowerStateSpec("WRITE", ma(12)),
            PowerStateSpec("ERASE", ma(12)),
        )),
        SinkSpec("LED0", "LEDs", (PowerStateSpec("ON", ma(4.3), note="red"),)),
        SinkSpec("LED1", "LEDs", (PowerStateSpec("ON", ma(3.7), note="green"),)),
        SinkSpec("LED2", "LEDs", (PowerStateSpec("ON", ma(1.7), note="blue"),)),
    )


#: Table 1, verbatim: nominal draws at 3 V supply and 1 MHz clock.
NOMINAL_CATALOG: tuple[SinkSpec, ...] = (
    _mcu_sinks() + _radio_sinks() + _flash_and_led_sinks()
)


def catalog_sink(name: str) -> SinkSpec:
    """Look up a sink in the nominal catalog by name."""
    for spec in NOMINAL_CATALOG:
        if spec.name == name:
            return spec
    raise PowerModelError(f"no sink named {name!r} in the catalog")


def catalog_power_state_count() -> int:
    """Total number of (sink, state) rows — the paper counts 16 MCU states
    and 14 radio states among these."""
    return sum(len(spec.states) for spec in NOMINAL_CATALOG)


# ---------------------------------------------------------------------------
# Actual (per-node) draw profiles.
# ---------------------------------------------------------------------------


@dataclass
class ActualDrawProfile:
    """The current draws one physical node actually exhibits.

    ``draws`` maps ``(sink_name, state_name)`` to amperes.  Anything not
    present falls back to the nominal catalog value.  ``baseline_amps`` is
    the always-on floor (regulator quiescent draw, supply supervisor, MCU
    sleep leakage) that the paper's regressions report as the "Const."
    term.  ``variation`` applies a deterministic per-node multiplicative
    perturbation to every draw (device-to-device spread); 0.0 disables it.
    """

    draws: dict[tuple[str, str], float] = field(default_factory=dict)
    baseline_amps: float = 0.0
    variation: float = 0.0

    def current(self, sink: str, state: str) -> float:
        key = (sink, state)
        if key in self.draws:
            return self.draws[key]
        return catalog_sink(sink).state(state).nominal_amps

    def with_variation(self, rng) -> "ActualDrawProfile":
        """Return a copy with every draw scaled by a per-entry factor drawn
        uniformly from ``1 ± variation`` (seeded; deterministic)."""
        if not self.variation:
            return self
        perturbed: dict[tuple[str, str], float] = {}
        for spec in NOMINAL_CATALOG:
            for state in spec.states:
                base = self.current(spec.name, state.name)
                factor = 1.0 + rng.uniform(-self.variation, self.variation)
                perturbed[(spec.name, state.name)] = base * factor
        baseline = self.baseline_amps * (
            1.0 + rng.uniform(-self.variation, self.variation)
        )
        return ActualDrawProfile(draws=perturbed, baseline_amps=baseline,
                                 variation=0.0)


def default_actual_profile() -> ActualDrawProfile:
    """The calibrated actual-draw profile used throughout the evaluation.

    Values are chosen so the paper's measured numbers fall out of the
    simulation:

    * LED draws from the paper's oscilloscope regression (Table 2 / 3b):
      LED0 2.50 mA, LED1 2.235 mA, LED2 0.83 mA — well below nominal.
    * CPU ACTIVE adds 1.43 mA over sleep (Table 3b's CPU column).
    * Radio listen path 18.46 mA (Section 4.3's estimate), below the
      nominal 19.7 mA.
    * Baseline floor 0.82 mA: the scope measured 0.74–0.79 mA in the
      all-off state and the Blink regression reported a 0.83 mA constant.
    """
    draws: dict[tuple[str, str], float] = {
        ("LED0", "ON"): ma(2.50),
        ("LED1", "ON"): ma(2.235),
        ("LED2", "ON"): ma(0.83),
        ("CPU", "ACTIVE"): ma(1.43),
        # Sleep-state residuals are part of the baseline floor; keep the
        # per-state deltas tiny so "Const." absorbs them as in the paper.
        ("CPU", "LPM0"): ua(75),
        ("CPU", "LPM1"): ua(75),
        ("CPU", "LPM2"): ua(17),
        ("CPU", "LPM3"): ua(0.0),
        ("CPU", "LPM4"): ua(0.0),
        ("RadioRxPath", "RX_LISTEN"): ma(18.46),
        ("RadioTxPath", "TX_0dBm"): ma(17.1),
        ("RadioControlPath", "IDLE"): ua(426),
        ("RadioRegulator", "OFF"): ua(0.0),
        ("RadioRegulator", "ON"): ua(22),
        ("RadioRegulator", "POWER_DOWN"): ua(20),
        ("ExternalFlash", "POWER_DOWN"): ua(0.0),
    }
    return ActualDrawProfile(draws=draws, baseline_amps=ma(0.82), variation=0.0)


def render_table1() -> str:
    """Render the nominal catalog in the layout of the paper's Table 1."""
    lines = []
    lines.append(f"{'Energy Sink':<22}{'Power State':<18}{'Current':>12}")
    lines.append("-" * 52)
    group = None
    for spec in NOMINAL_CATALOG:
        if spec.group != group:
            group = spec.group
            lines.append(f"[{group}]")
        first = True
        for state in spec.states:
            sink_col = spec.name if first else ""
            first = False
            amps = state.nominal_amps
            if amps >= 1e-3:
                current = f"{amps * 1e3:.1f} mA"
            else:
                current = f"{amps * 1e6:.1f} uA"
            note = f"  ({state.note})" if state.note else ""
            lines.append(f"{sink_col:<22}{state.name:<18}{current:>12}{note}")
    return "\n".join(lines)
