"""Ground-truth power accounting: the "real electrons" of the simulation.

Every hardware model registers one or more *sinks* on the node's
:class:`PowerRail` and sets that sink's instantaneous current draw as its
internal state changes.  The rail integrates ``V * I_total`` exactly over
the piecewise-constant schedule, producing the hidden true energy that the
iCount meter quantizes and the virtual oscilloscope samples.

This module is strictly ground truth.  Quanto's estimation pipeline must
never import it at analysis time — the whole point of the paper is that the
per-sink draws are *recovered* from aggregate observations.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PowerModelError
from repro.sim.engine import Simulator


class SinkHandle:
    """Write handle a hardware model uses to report its true current draw."""

    __slots__ = ("rail", "name", "_amps")

    def __init__(self, rail: "PowerRail", name: str):
        self.rail = rail
        self.name = name
        self._amps = 0.0

    @property
    def amps(self) -> float:
        """The sink's current draw right now, in amperes."""
        return self._amps

    def set_current(self, amps: float) -> None:
        """Set this sink's draw.  Idempotent sets are free."""
        if amps < 0.0:
            raise PowerModelError(f"sink {self.name!r}: negative current {amps}")
        if amps == self._amps:
            return
        self.rail._update(self, amps)

    def off(self) -> None:
        """Convenience for ``set_current(0.0)``."""
        self.set_current(0.0)


class PowerRail:
    """Integrates the aggregate draw of all registered sinks.

    ``energy()`` returns the exact integral of ``voltage * sum(currents)``
    from t=0 to the simulator's current time.  Observers (the oscilloscope,
    plotting code) may subscribe to current *steps* via
    :meth:`add_observer`; each observer is called as
    ``observer(t_ns, new_total_amps)`` after every aggregate change.
    """

    def __init__(self, sim: Simulator, voltage: float = 3.0):
        if voltage <= 0:
            raise PowerModelError(f"voltage must be positive, got {voltage}")
        self.sim = sim
        self.voltage = float(voltage)
        self._sinks: dict[str, SinkHandle] = {}
        # Sinks currently drawing nonzero current: the integration loop
        # runs once per meter read, and most sinks sit at zero (radio
        # off, flash idle), so only the hot ones are walked.
        self._hot: dict[str, SinkHandle] = {}
        self._total_amps = 0.0
        self._energy_j = 0.0
        self._last_update_ns = 0
        self._observers: list[Callable[[int, float], None]] = []
        # Per-sink true energy, for validating the regression against truth.
        self._sink_energy_j: dict[str, float] = {}

    # -- registration ----------------------------------------------------

    def register(self, name: str) -> SinkHandle:
        """Register a named sink.  Names must be unique per rail."""
        if name in self._sinks:
            raise PowerModelError(f"sink {name!r} already registered")
        handle = SinkHandle(self, name)
        self._sinks[name] = handle
        self._sink_energy_j[name] = 0.0
        return handle

    def sink(self, name: str) -> SinkHandle:
        """Look up a registered sink by name."""
        try:
            return self._sinks[name]
        except KeyError:
            raise PowerModelError(f"unknown sink {name!r}") from None

    def sink_names(self) -> list[str]:
        """All registered sink names, in registration order."""
        return list(self._sinks)

    def add_observer(self, fn: Callable[[int, float], None]) -> None:
        """Subscribe to aggregate current steps: ``fn(t_ns, total_amps)``."""
        self._observers.append(fn)

    # -- integration -------------------------------------------------------

    def _integrate_to_now(self) -> None:
        # Every log record reads the rail, so this is one of the hottest
        # loops in a run: only the sinks drawing nonzero current (the
        # _hot set) are walked, and when the aggregate is exactly zero
        # there is nothing to add at all (draws are non-negative, so the
        # accumulators are unchanged either way — x + 0.0 == x for the
        # non-negative totals kept here).
        now = self.sim._now
        dt_ns = now - self._last_update_ns
        if dt_ns > 0:
            total = self._total_amps
            if total:
                dt_s = dt_ns * 1e-9
                voltage = self.voltage
                self._energy_j += voltage * total * dt_s
                sink_energy = self._sink_energy_j
                for name, handle in self._hot.items():
                    sink_energy[name] += voltage * handle._amps * dt_s
            self._last_update_ns = now

    def _update(self, handle: SinkHandle, amps: float) -> None:
        self._integrate_to_now()
        self._total_amps += amps - handle._amps
        if self._total_amps < 0.0:
            # Guard against float drift taking the total slightly negative.
            if self._total_amps < -1e-12:
                raise PowerModelError(
                    f"aggregate current went negative: {self._total_amps}"
                )
            self._total_amps = 0.0
        handle._amps = amps
        if amps:
            self._hot[handle.name] = handle
        else:
            self._hot.pop(handle.name, None)
        for observer in self._observers:
            observer(self.sim.now, self._total_amps)

    # -- warm-start reset --------------------------------------------------

    def reset(self) -> None:
        """Return the rail to its freshly constructed state: every sink at
        zero draw, integrators empty, the clock mark back at t=0.

        Part of the warm-start protocol.  Registered sinks survive (the
        hardware wiring is construction state); observers do not — they
        are attached by measurement harnesses (the oscilloscope), never
        during platform construction, so a reset drops them rather than
        let a previous run's instrument watch the next run.  Callers
        (the platform reset) re-apply the initial currents afterwards.
        """
        for handle in self._sinks.values():
            handle._amps = 0.0
        self._hot.clear()
        self._total_amps = 0.0
        self._energy_j = 0.0
        self._last_update_ns = 0
        self._observers.clear()
        for name in self._sink_energy_j:
            self._sink_energy_j[name] = 0.0

    # -- queries -----------------------------------------------------------

    def energy(self) -> float:
        """True cumulative energy in joules from t=0 to now."""
        self._integrate_to_now()
        return self._energy_j

    def sink_energy(self, name: str) -> float:
        """True cumulative energy of one sink (ground truth for tests)."""
        self._integrate_to_now()
        try:
            return self._sink_energy_j[name]
        except KeyError:
            raise PowerModelError(f"unknown sink {name!r}") from None

    def current(self) -> float:
        """Aggregate current draw right now, in amperes."""
        return self._total_amps

    def power(self) -> float:
        """Aggregate power draw right now, in watts."""
        return self._total_amps * self.voltage

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PowerRail {self.voltage} V, {len(self._sinks)} sinks, "
            f"I={self._total_amps * 1e3:.3f} mA>"
        )
