"""Hardware timer blocks (MSP430 TimerA / TimerB).

Each block owns several *compare units*; arming a compare unit schedules an
interrupt callback at an absolute simulation time.  The TinyOS-like virtual
timer system multiplexes all its software timers onto one compare unit
(TimerB0 on this platform), and the radio uses another for SFD capture
(TimerB1) — matching the interrupt names that appear in the paper's
figures (``int_TIMERB0``, ``int_TIMERB1``, ``int_TIMERA1``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.sim.engine import Event, Simulator


class CompareUnit:
    """One compare register: fires a callback at an absolute time."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._event: Optional[Event] = None
        self._handler: Optional[Callable[[], None]] = None
        self.fire_count = 0

    def set_handler(self, fn: Callable[[], None]) -> None:
        """Install the interrupt handler (the interrupt controller hook)."""
        self._handler = fn

    def arm(self, at_ns: int) -> None:
        """Arm the compare for an absolute time, replacing any prior arm."""
        if self._handler is None:
            raise HardwareError(f"{self.name}: arm() before set_handler()")
        if at_ns < self.sim.now:
            raise HardwareError(
                f"{self.name}: compare time {at_ns} is in the past "
                f"(now={self.sim.now})"
            )
        self.disarm()
        self._event = self.sim.at(at_ns, self._fire)

    def disarm(self) -> None:
        """Cancel a pending compare, if any."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def armed(self) -> bool:
        return self._event is not None and self._event.alive

    def reset(self) -> None:
        """Warm-start reset: forget the pending arm (the simulator reset
        already detached the event) and the fire tally.  The installed
        handler is construction wiring and survives."""
        self._event = None
        self.fire_count = 0

    def _fire(self) -> None:
        self._event = None
        self.fire_count += 1
        assert self._handler is not None
        self._handler()


class TimerBlock:
    """A named timer block with N compare units (TimerA has 3, TimerB 7)."""

    def __init__(self, sim: Simulator, name: str, units: int):
        self.sim = sim
        self.name = name
        self.units = tuple(
            CompareUnit(sim, f"{name}{i}") for i in range(units)
        )

    def unit(self, index: int) -> CompareUnit:
        try:
            return self.units[index]
        except IndexError:
            raise HardwareError(
                f"{self.name} has no compare unit {index}"
            ) from None

    def reset(self) -> None:
        """Warm-start reset of every compare unit in the block."""
        for unit in self.units:
            unit.reset()
