"""Live windowed energy accounting as a service (toward the paper's
"network-wide profiling", §6).

The offline pipeline — 12-byte log, wire decode, timeline stream,
energy accumulator — already runs in one bounded pass; this package
points it at sockets.  Nodes stream their packed logs to a long-running
:class:`~repro.serve.server.IngestServer`; each stream gets a
:class:`~repro.core.logger.WireDecoder` (chunk-boundary-proof decode)
feeding a :class:`~repro.core.accounting.WindowedAccumulator` (live
per-window breakdowns, exact cumulative sums), with bounded queues
backpressuring fast senders.  Query connections read live breakdowns
while streams are in flight; a finished stream's reply carries the
folded map, byte-identical to the offline ``build_energy_map`` of the
same log.

Durability (``--state-dir``): every stream is write-ahead journaled
(:mod:`repro.serve.journal`) and periodically checkpointed, so a
SIGKILLed server restarts, replays the journal tail, and serves maps
bit-identical to an uninterrupted run; clients reconnect with capped
backoff and resume idempotently from the server's acked offset.

Run one with ``python -m repro serve``; stream and watch with
``examples/quanto_top.py --server ADDR``.
"""

from repro.serve.client import (
    final_map,
    hello_for_node,
    open_connection,
    query,
    query_sync,
    stream_node,
    stream_node_sync,
    stream_raw,
)
from repro.serve.journal import NodeJournal
from repro.serve.protocol import Address, make_hello, parse_address
from repro.serve.server import IngestServer, NodeSession

__all__ = [
    "Address",
    "IngestServer",
    "NodeJournal",
    "NodeSession",
    "final_map",
    "hello_for_node",
    "make_hello",
    "open_connection",
    "parse_address",
    "query",
    "query_sync",
    "stream_node",
    "stream_node_sync",
    "stream_raw",
]
