"""Per-node write-ahead journal + checkpoint store for the ingest server.

Durability contract: every raw wire chunk is appended here — framed
length + CRC — **before** it enters the decoder, so the journal is
always at or ahead of the in-memory accounting state.  A checkpoint
(written atomically, tmp + ``os.replace``, the shard-store idiom)
snapshots the :class:`~repro.core.logger.WireDecoder` unwrap state and
the pickled :class:`~repro.core.accounting.WindowedAccumulator` at a
known journal offset.  Restart = load the newest valid checkpoint,
replay the journal's payload tail through the same decode→window path;
the result is bit-identical to an uninterrupted run.

Torn tails are expected, not fatal: a SIGKILL mid-append leaves a short
or CRC-failing record at the end of the journal, and the scan simply
stops at the last whole record — exactly how ``ShardStore._scan_shard``
treats a crashed writer.  Reopening for append truncates the torn bytes
first so new records land on a clean boundary.  A corrupt checkpoint is
discarded (full-journal replay covers it); only a corrupt journal
*header* makes a node unrecoverable.

State-dir layout, one node per journal::

    state-dir/
      node-7.waj          # WAL: magic, hello record, chunk records
      node-7.ckpt         # newest checkpoint (atomic replace)
      node-7.quarantine   # only if quarantined: the error, journal kept

Record framing: ``kind u8 | length u32 | crc32 u32`` then payload.
Kinds: hello (JSON, exactly one, first), chunk (raw wire bytes),
complete (JSON summary, marks a cleanly finished stream).
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import ServeError

JOURNAL_MAGIC = b"QWAJ\x01\x00\x00\x00"
CHECKPOINT_MAGIC = b"QCKP\x01\x00\x00\x00"

#: Record header: kind (u8), payload length (u32), payload crc32 (u32).
RECORD_HEADER = struct.Struct("<BII")

KIND_HELLO = 1
KIND_CHUNK = 2
KIND_COMPLETE = 3

_NODE_FILE = re.compile(r"^node-(\d+)\.waj$")


@dataclass
class JournalContents:
    """One valid-prefix scan of a journal: whole, CRC-clean records up
    to the first torn or corrupt one."""

    hello: Optional[dict] = None
    chunks: list[bytes] = field(default_factory=list)
    payload_bytes: int = 0          # sum of chunk payload lengths
    complete: Optional[dict] = None
    valid_end: int = 0              # file offset of the last whole record

    def replay(self, from_offset: int = 0) -> Iterator[bytes]:
        """Yield chunk payload bytes after skipping the first
        ``from_offset`` payload bytes (a resume point may split a
        journal record; the partial chunk is sliced)."""
        if from_offset < 0 or from_offset > self.payload_bytes:
            raise ServeError(
                f"replay offset {from_offset} outside journal payload "
                f"(0..{self.payload_bytes})")
        skipped = 0
        for chunk in self.chunks:
            if skipped + len(chunk) <= from_offset:
                skipped += len(chunk)
                continue
            start = from_offset - skipped if skipped < from_offset else 0
            skipped += len(chunk)
            yield chunk[start:] if start else chunk


class NodeJournal:
    """The write-ahead journal + checkpoint pair of one node."""

    def __init__(self, state_dir, node_id: int) -> None:
        self.state_dir = Path(state_dir)
        self.node_id = int(node_id)
        stem = f"node-{self.node_id}"
        self.journal_path = self.state_dir / f"{stem}.waj"
        self.checkpoint_path = self.state_dir / f"{stem}.ckpt"
        self.quarantine_path = self.state_dir / f"{stem}.quarantine"
        self.payload_bytes = 0
        self._append = None  # open handle while the session is live

    # -- discovery ----------------------------------------------------------

    @classmethod
    def scan_dir(cls, state_dir) -> list[int]:
        """Node ids with a journal under ``state_dir``, sorted."""
        state_dir = Path(state_dir)
        if not state_dir.is_dir():
            return []
        ids = []
        for name in os.listdir(state_dir):
            match = _NODE_FILE.match(name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    # -- writing ------------------------------------------------------------

    def create(self, hello: dict) -> None:
        """Start a fresh journal: magic + the hello record.  Truncates
        any prior journal for this node (the caller decided the old
        stream is superseded) and clears stale checkpoint/quarantine."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.close()
        for stale in (self.checkpoint_path, self.quarantine_path):
            if stale.exists():
                stale.unlink()
        handle = open(self.journal_path, "wb")
        handle.write(JOURNAL_MAGIC)
        self._write_record(handle, KIND_HELLO,
                           json.dumps(hello).encode("utf-8"))
        handle.flush()
        self._append = handle
        self.payload_bytes = 0

    def reopen_for_append(self, contents: JournalContents) -> None:
        """Position the append handle after a restart: truncate the torn
        tail (if any) so new records start on a whole-record boundary."""
        self.close()
        handle = open(self.journal_path, "r+b")
        handle.truncate(contents.valid_end)
        handle.seek(contents.valid_end)
        self._append = handle
        self.payload_bytes = contents.payload_bytes

    @staticmethod
    def _write_record(handle, kind: int, payload: bytes) -> None:
        handle.write(RECORD_HEADER.pack(kind, len(payload),
                                        zlib.crc32(payload)))
        handle.write(payload)

    def append_chunk(self, chunk: bytes) -> int:
        """Journal one raw wire chunk; returns the total payload bytes
        durably journaled (the stream offset the server may ack)."""
        if self._append is None:
            raise ServeError(
                f"journal for node {self.node_id} is not open for append")
        self._write_record(self._append, KIND_CHUNK, bytes(chunk))
        # flush() pushes to the OS: the bytes survive a SIGKILL of this
        # process (fsync-grade power-loss durability is out of scope).
        self._append.flush()
        self.payload_bytes += len(chunk)
        return self.payload_bytes

    def mark_complete(self, summary: dict) -> None:
        """Append the completion record: this stream ended cleanly and
        its accounting is final."""
        if self._append is None:
            raise ServeError(
                f"journal for node {self.node_id} is not open for append")
        self._write_record(self._append, KIND_COMPLETE,
                           json.dumps(summary).encode("utf-8"))
        self._append.flush()

    def quarantine(self, error: str) -> None:
        """Mark the node quarantined: the journal stays on disk for
        postmortem decode, the marker carries the reason, and restarts
        will not replay it."""
        self.close()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.quarantine_path.with_suffix(".quarantine.tmp")
        tmp.write_text(json.dumps({"node_id": self.node_id,
                                   "error": error}))
        tmp.replace(self.quarantine_path)

    def quarantine_error(self) -> Optional[str]:
        """The quarantine reason, or None if the node is not marked."""
        try:
            return json.loads(self.quarantine_path.read_text())["error"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            return "quarantine marker unreadable"

    def close(self) -> None:
        if self._append is not None:
            try:
                self._append.close()
            finally:
                self._append = None

    # -- checkpoints ---------------------------------------------------------

    def write_checkpoint(self, state: dict) -> None:
        """Atomically replace the node's checkpoint (tmp + ``os.replace``
        — a crash mid-write leaves the previous checkpoint intact)."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = self.checkpoint_path.with_suffix(".ckpt.tmp")
        with open(tmp, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            handle.write(struct.pack("<II", len(payload),
                                     zlib.crc32(payload)))
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)

    def load_checkpoint(self) -> Optional[dict]:
        """The newest checkpoint, or None if absent/corrupt (a corrupt
        checkpoint is not an error — full-journal replay covers it)."""
        try:
            blob = self.checkpoint_path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        header = len(CHECKPOINT_MAGIC) + 8
        if len(blob) < header or not blob.startswith(CHECKPOINT_MAGIC):
            return None
        length, crc = struct.unpack_from("<II", blob, len(CHECKPOINT_MAGIC))
        payload = blob[header:header + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        try:
            state = pickle.loads(payload)
        except Exception:
            return None
        return state if isinstance(state, dict) else None

    # -- reading ------------------------------------------------------------

    def load(self) -> Optional[JournalContents]:
        """Scan the journal's valid prefix.  Returns None when the file
        is missing or its header is unreadable; otherwise every whole,
        CRC-clean record up to the first torn one (the crash tail)."""
        try:
            blob = self.journal_path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        if not blob.startswith(JOURNAL_MAGIC):
            return None
        contents = JournalContents(valid_end=len(JOURNAL_MAGIC))
        at = len(JOURNAL_MAGIC)
        size = len(blob)
        while at + RECORD_HEADER.size <= size:
            kind, length, crc = RECORD_HEADER.unpack_from(blob, at)
            payload_at = at + RECORD_HEADER.size
            if payload_at + length > size:
                break  # torn tail: header landed, payload did not
            payload = blob[payload_at:payload_at + length]
            if zlib.crc32(payload) != crc:
                break  # corrupt record: stop at the last good one
            if kind == KIND_HELLO:
                try:
                    contents.hello = json.loads(payload)
                except ValueError:
                    break
            elif kind == KIND_CHUNK:
                contents.chunks.append(payload)
                contents.payload_bytes += length
            elif kind == KIND_COMPLETE:
                try:
                    contents.complete = json.loads(payload)
                except ValueError:
                    break
            else:
                break  # unknown record kind: treat as corruption
            at = payload_at + length
            contents.valid_end = at
        return contents
