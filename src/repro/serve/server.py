"""The live ingest server: many node streams, one attribution service.

One asyncio event loop owns everything.  Each ``INGEST`` connection gets
a :class:`NodeSession` — a :class:`~repro.core.logger.WireDecoder`
reassembling 12-byte entries from arbitrary chunk boundaries, feeding a
:class:`~repro.core.accounting.WindowedAccumulator` that closes
per-stride windows as the node's virtual time advances.  Chunks flow
through a **bounded** queue between the socket reader and the
accounting consumer: when accounting falls behind, ``queue.put`` blocks
the reader, the TCP window fills, and the node is flow-controlled —
backpressure end to end, no unbounded buffering anywhere.

``QUERY`` connections read the same sessions for live breakdowns; both
run on the loop, so no locks.  Memory per node is the accumulator's
open spans plus the retained window deque — a server holding thousands
of finished nodes keeps only their folded maps.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.accounting import WindowedAccumulator
from repro.core.logger import ENTRY_SIZE, WireDecoder
from repro.errors import ReproError, ServeError
from repro.serve.protocol import (
    INGEST_VERB,
    LINE_LIMIT,
    QUERY_VERB,
    check_hello,
    decode_json_line,
    emap_to_wire,
    encode_json_line,
    pairs_to_wire,
    regression_from_wire,
    registry_from_wire,
    snapshot_to_wire,
)

#: Socket read size for ingest bodies.
READ_CHUNK = 1 << 16

#: End-of-stream sentinel on a session's chunk queue.
_EOF = None


class NodeSession:
    """One streaming node's server-side state: decoder, windowed
    accumulator, counters, and outcome."""

    def __init__(self, hello: dict, *, retain: int) -> None:
        check_hello(hello)
        self.node_id = int(hello["node_id"])
        self.registry = registry_from_wire(hello["registry"])
        self.decoder = WireDecoder()
        self.accumulator = WindowedAccumulator(
            regression_from_wire(hello["regression"]),
            self.registry,
            {int(k): v for k, v in hello["component_names"].items()},
            hello["energy_per_pulse_j"],
            stride_ns=hello["stride_ns"],
            idle_name=hello["idle_name"],
            single_res_ids=hello.get("single_res_ids") or None,
            multi_res_ids=hello.get("multi_res_ids") or None,
            end_time_ns=hello.get("end_time_ns"),
            origin_ns=hello.get("origin_ns"),
            retain=retain,
        )
        self.state = "streaming"
        self.bytes_received = 0
        self.error: Optional[str] = None
        self.final_map = None

    def ingest(self, chunk: bytes) -> None:
        self.bytes_received += len(chunk)
        accumulator = self.accumulator
        for entry in self.decoder.feed(chunk):
            accumulator.feed(entry)

    def finish(self):
        self.decoder.finish()  # a torn tail is a protocol error
        self.final_map = self.accumulator.finish()
        self.state = "done"
        return self.final_map

    def fail(self, message: str) -> None:
        self.state = "error"
        self.error = message

    def describe(self) -> dict:
        return {
            "node_id": self.node_id,
            "state": self.state,
            "error": self.error,
            "bytes": self.bytes_received,
            "entries": self.decoder.entries_decoded,
            "pending_bytes": self.decoder.pending_bytes,
            "windows": self.accumulator.windows_emitted,
        }

    def breakdown(self) -> dict:
        """The node's current attribution: the folded map once done,
        the live cumulative view while streaming."""
        if self.final_map is not None:
            reply = emap_to_wire(self.final_map)
            reply["live"] = False
            return reply
        live = self.accumulator.live_breakdown()
        return {
            "energy_j": pairs_to_wire(live["energy_j"]),
            "time_ns": pairs_to_wire(live["time_ns"]),
            "metered_energy_j": live["metered_energy_j"],
            "reconstructed_energy_j": live["reconstructed_energy_j"],
            "span_ns": live["span_ns"],
            "live": True,
        }


class IngestServer:
    """The long-running service.  ``await start_tcp(...)`` and/or
    ``await start_unix(...)``, then :meth:`serve_forever` (or just keep
    the loop alive); :meth:`close` tears the listeners down."""

    def __init__(self, *, retain: int = 64, queue_depth: int = 32) -> None:
        if queue_depth < 1:
            raise ServeError("queue depth must be at least 1")
        self.retain = retain
        self.queue_depth = queue_depth
        self.sessions: dict[int, NodeSession] = {}
        self.completed = 0
        self._servers: list[asyncio.base_events.Server] = []
        self._done_event = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start_tcp(self, host: str, port: int) -> tuple[str, int]:
        server = await asyncio.start_server(
            self._handle, host, port, limit=LINE_LIMIT)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: str) -> str:
        server = await asyncio.start_unix_server(
            self._handle, path, limit=LINE_LIMIT)
        self._servers.append(server)
        return path

    async def serve_forever(self, stop_after: Optional[int] = None) -> None:
        """Serve until :meth:`request_shutdown` (or, with ``stop_after``,
        until that many node streams have completed — scripted runs,
        smoke tests).  On a requested shutdown this drains gracefully
        via :meth:`shutdown` before returning."""
        stop_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            while not self._shutdown.is_set():
                if stop_after is not None and self.completed >= stop_after:
                    return
                self._done_event.clear()
                done_task = asyncio.ensure_future(self._done_event.wait())
                try:
                    await asyncio.wait(
                        {done_task, stop_task},
                        return_when=asyncio.FIRST_COMPLETED)
                finally:
                    done_task.cancel()
        finally:
            stop_task.cancel()
        await self.shutdown()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe: just sets an
        event on the loop).  Listeners stop accepting, streaming nodes'
        queues drain, decoders with no partial entry finish cleanly and
        get their final map; a node caught mid-frame is marked failed
        rather than folded torn."""
        self._shutdown.set()

    async def shutdown(self, grace_s: float = 5.0) -> None:
        """Stop accepting, then wait up to ``grace_s`` for the open
        connection handlers to drain and reply; stragglers past the
        grace period are cancelled."""
        self._shutdown.set()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        pending = {task for task in self._handlers if not task.done()}
        if pending:
            _done, late = await asyncio.wait(pending, timeout=grace_s)
            for task in late:
                task.cancel()
            if late:
                await asyncio.gather(*late, return_exceptions=True)

    async def close(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()

    def final_stats_lines(self) -> list[str]:
        """Per-node summary lines for the shutdown log."""
        lines = []
        for node_id in sorted(self.sessions):
            session = self.sessions[node_id]
            desc = session.describe()
            detail = f" ({desc['error']})" if desc["error"] else ""
            lines.append(
                f"node {node_id}: {desc['state']}{detail}, "
                f"{desc['entries']} entries, {desc['windows']} windows, "
                f"{desc['bytes']} bytes")
        lines.append(
            f"total: {len(self.sessions)} sessions, "
            f"{self.completed} completed streams")
        return lines

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            line = await reader.readline()
            if not line:
                return
            verb, _, payload = line.strip().partition(b" ")
            verb_name = verb.decode("ascii", "replace")
            if verb_name == INGEST_VERB:
                await self._handle_ingest(payload, reader, writer)
            elif verb_name == QUERY_VERB:
                await self._handle_query(payload, writer)
            else:
                writer.write(encode_json_line(
                    {"ok": False,
                     "error": f"unknown verb {verb_name!r}"}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; its session (if any) is marked failed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_ingest(self, payload: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            session = NodeSession(decode_json_line(payload, "ingest hello"),
                                  retain=self.retain)
        except ReproError as exc:
            writer.write(encode_json_line({"ok": False, "error": str(exc)}))
            await writer.drain()
            return
        self.sessions[session.node_id] = session
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        consumer = asyncio.ensure_future(self._consume(session, queue))
        eof_clean = False
        stopped = False
        stop_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            while True:
                read_task = asyncio.ensure_future(reader.read(READ_CHUNK))
                done, _ = await asyncio.wait(
                    {read_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED)
                if read_task not in done:
                    # Graceful shutdown: stop reading; the queue drains
                    # below and the decoder decides clean vs mid-frame.
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, ConnectionError,
                            asyncio.IncompleteReadError):
                        pass
                    stopped = True
                    break
                chunk = read_task.result()
                if not chunk:
                    eof_clean = True
                    break
                # Bounded hand-off: accounting lag blocks this put, which
                # stops the reads, which flow-controls the sender.
                await queue.put(chunk)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # eof_clean stays False -> the stream is marked failed
        finally:
            stop_task.cancel()
            await queue.put(_EOF)
        try:
            await consumer
            if stopped and not eof_clean:
                # Queue drained; a decoder holding a partial entry was
                # cut mid-frame, everything else ends as a clean stream.
                if session.decoder.pending_bytes:
                    raise ServeError("server shutdown mid-frame")
                eof_clean = True
            if not eof_clean:
                raise ServeError("connection lost mid-stream")
            final = session.finish()
            reply = {
                "ok": True,
                "node_id": session.node_id,
                "entries": session.decoder.entries_decoded,
                "windows": session.accumulator.windows_emitted,
                "energy_map": emap_to_wire(final),
            }
            if stopped:
                reply["shutdown"] = True
        except ReproError as exc:
            session.fail(str(exc))
            reply = {"ok": False, "node_id": session.node_id,
                     "error": str(exc)}
        self.completed += 1
        self._done_event.set()
        writer.write(encode_json_line(reply))
        await writer.drain()

    async def _consume(self, session: NodeSession,
                       queue: asyncio.Queue) -> None:
        """Drain one session's chunk queue into its accumulator.  Runs
        as a task so decoding keeps pace with (and backpressures) the
        socket reads; yields to the loop between chunks to keep query
        connections responsive under a fast-flowing stream."""
        while True:
            chunk = await queue.get()
            if chunk is _EOF:
                return
            session.ingest(chunk)

    # -- queries -------------------------------------------------------------

    async def _handle_query(self, payload: bytes,
                            writer: asyncio.StreamWriter) -> None:
        try:
            query = decode_json_line(payload, "query")
            reply = self._answer(query)
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc)}
        writer.write(encode_json_line(reply))
        await writer.drain()

    def _session_for(self, query: dict) -> NodeSession:
        node_id = query.get("node_id")
        session = self.sessions.get(node_id)
        if session is None:
            known = sorted(self.sessions)
            raise ServeError(f"unknown node {node_id!r}; known: {known}")
        return session

    def _answer(self, query: dict) -> dict:
        if not isinstance(query, dict):
            raise ServeError("query is not a JSON object")
        command = query.get("cmd")
        if command == "nodes":
            return {"ok": True, "nodes": [
                self.sessions[node_id].describe()
                for node_id in sorted(self.sessions)
            ]}
        if command == "breakdown":
            session = self._session_for(query)
            reply = session.breakdown()
            reply.update(ok=True, node_id=session.node_id,
                         state=session.state)
            return reply
        if command == "windows":
            session = self._session_for(query)
            last = int(query.get("last", 8))
            recent = list(session.accumulator.windows)[-last:]
            return {
                "ok": True,
                "node_id": session.node_id,
                "stride_ns": session.accumulator.stride_ns,
                "emitted": session.accumulator.windows_emitted,
                "windows": [snapshot_to_wire(s) for s in recent],
            }
        if command == "stats":
            return {
                "ok": True,
                "sessions": len(self.sessions),
                "streaming": sum(1 for s in self.sessions.values()
                                 if s.state == "streaming"),
                "completed": self.completed,
                "entries": sum(s.decoder.entries_decoded
                               for s in self.sessions.values()),
                "bytes": sum(s.bytes_received
                             for s in self.sessions.values()),
                "entry_size": ENTRY_SIZE,
            }
        raise ServeError(
            f"unknown query cmd {command!r}; "
            "known: nodes, breakdown, windows, stats"
        )
