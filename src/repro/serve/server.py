"""The live ingest server: many node streams, one attribution service.

One asyncio event loop owns everything.  Each ``INGEST`` connection gets
a :class:`NodeSession` — a :class:`~repro.core.logger.WireDecoder`
reassembling 12-byte entries from arbitrary chunk boundaries, feeding a
:class:`~repro.core.accounting.WindowedAccumulator` that closes
per-stride windows as the node's virtual time advances.  Chunks flow
through a **bounded** queue between the socket reader and the
accounting consumer: when accounting falls behind, ``queue.put`` blocks
the reader, the TCP window fills, and the node is flow-controlled —
backpressure end to end, no unbounded buffering anywhere.

``QUERY`` connections read the same sessions for live breakdowns; both
run on the loop, so no locks.  Memory per node is the accumulator's
open spans plus the retained window deque — a server holding thousands
of finished nodes keeps only their folded maps.

**Durability** (``state_dir``): every raw chunk is appended to the
node's write-ahead journal (:mod:`repro.serve.journal`) *before* it
enters the decoder, and checkpoints snapshot the decoder + accumulator
atomically every ``checkpoint_bytes`` of stream.  A restarted server
restores each journal — newest checkpoint, then replay of the journal
tail through the same decode→window path — and resumes sessions
bit-identical to an uninterrupted run.  Clients speaking the resume
handshake (hello ``"ack": true``) learn the server's journaled offset
on connect and replay idempotently from there.

**Degradation**: a stream whose *content* breaks decode/accounting
quarantines that one node — journal preserved for postmortem, session
map and server untouched.  Past ``max_streams`` concurrent streams the
server sheds new nodes with an explicit retryable NACK instead of
buffering without bound.
"""

from __future__ import annotations

import asyncio
import os
import stat
from typing import Optional

from repro.core.accounting import WindowedAccumulator
from repro.core.logger import ENTRY_SIZE, WireDecoder
from repro.errors import ReproError, ServeError
from repro.serve.journal import NodeJournal
from repro.serve.protocol import (
    INGEST_VERB,
    LINE_LIMIT,
    QUERY_VERB,
    check_hello,
    decode_json_line,
    emap_to_wire,
    encode_json_line,
    pairs_to_wire,
    regression_from_wire,
    registry_from_wire,
    snapshot_to_wire,
)
from repro.sim.faultinject import fire

#: Socket read size for ingest bodies.
READ_CHUNK = 1 << 16

#: Default checkpoint cadence: snapshot decoder+accumulator after this
#: many journaled stream bytes (plus once at stream completion).
CHECKPOINT_BYTES = 1 << 16

#: Default ack cadence for resume-capable clients.
ACK_BYTES = 1 << 14

#: End-of-stream sentinel on a session's chunk queue.
_EOF = None


class _StreamFault(ServeError):
    """Stream *content* broke decode/accounting: quarantine the node."""


class NodeSession:
    """One streaming node's server-side state: decoder, windowed
    accumulator, counters, journal, and outcome.

    ``state`` walks ``streaming`` → ``done`` | ``error`` |
    ``quarantined``, with ``suspended`` for a resumable stream whose
    connection (or server) went away mid-flight.
    """

    def __init__(self, hello: dict, *, retain: int,
                 journal: Optional[NodeJournal] = None) -> None:
        check_hello(hello)
        self.hello = hello
        self.node_id = int(hello["node_id"])
        self.registry = registry_from_wire(hello["registry"])
        self.decoder = WireDecoder()
        self.accumulator = WindowedAccumulator(
            regression_from_wire(hello["regression"]),
            self.registry,
            {int(k): v for k, v in hello["component_names"].items()},
            hello["energy_per_pulse_j"],
            stride_ns=hello["stride_ns"],
            idle_name=hello["idle_name"],
            single_res_ids=hello.get("single_res_ids") or None,
            multi_res_ids=hello.get("multi_res_ids") or None,
            end_time_ns=hello.get("end_time_ns"),
            origin_ns=hello.get("origin_ns"),
            retain=retain,
        )
        self.state = "streaming"
        self.bytes_received = 0
        self.error: Optional[str] = None
        self.final_map = None
        self.journal = journal
        self.attached = False       # a live connection is streaming now
        self.resumable = False      # client speaks the ack handshake
        self.checkpointed_bytes = 0
        self.last_ack_bytes = 0

    def ingest(self, chunk: bytes) -> None:
        self.bytes_received += len(chunk)
        accumulator = self.accumulator
        for entry in self.decoder.feed(chunk):
            accumulator.feed(entry)

    def finish(self):
        self.decoder.finish()  # a torn tail is a protocol error
        self.final_map = self.accumulator.finish()
        self.state = "done"
        return self.final_map

    def fail(self, message: str) -> None:
        self.state = "error"
        self.error = message

    def set_quarantined(self, message: str) -> None:
        """Park the node: its stream content is untrustworthy, but its
        journal survives for postmortem and the server carries on."""
        self.state = "quarantined"
        self.error = message
        self.attached = False
        if self.journal is not None:
            self.journal.quarantine(message)

    def checkpoint_state(self, complete: bool = False) -> dict:
        return {
            "schema": 1,
            "node_id": self.node_id,
            "journal_offset": self.bytes_received,
            "decoder": self.decoder.snapshot(),
            "accumulator": self.accumulator.snapshot(),
            "complete": complete,
        }

    def final_reply(self) -> dict:
        return {
            "ok": True,
            "node_id": self.node_id,
            "entries": self.decoder.entries_decoded,
            "windows": self.accumulator.windows_emitted,
            "energy_map": emap_to_wire(self.final_map),
        }

    @classmethod
    def restore(cls, state_dir, node_id: int, *,
                retain: int) -> Optional["NodeSession"]:
        """Rebuild a session from its journal: newest valid checkpoint,
        then the journal tail replayed through the same decode→window
        path — bit-identical to having never crashed.  Returns None for
        an unrecoverable (headerless) journal."""
        journal = NodeJournal(state_dir, node_id)
        contents = journal.load()
        if contents is None or contents.hello is None:
            return None
        session = cls(contents.hello, retain=retain, journal=journal)
        quarantined = journal.quarantine_error()
        if quarantined is not None:
            session.state = "quarantined"
            session.error = quarantined
            return session
        start = 0
        state = journal.load_checkpoint()
        if (state is not None and state.get("schema") == 1
                and isinstance(state.get("journal_offset"), int)
                and 0 <= state["journal_offset"] <= contents.payload_bytes):
            try:
                decoder = WireDecoder.from_snapshot(state["decoder"])
                accumulator = WindowedAccumulator.restore(
                    state["accumulator"])
            except ReproError:
                pass  # corrupt snapshot: full-journal replay covers it
            else:
                session.decoder = decoder
                session.accumulator = accumulator
                start = state["journal_offset"]
        session.bytes_received = start
        session.resumable = True
        for chunk in contents.replay(start):
            session.ingest(chunk)
        session.checkpointed_bytes = session.bytes_received
        session.last_ack_bytes = session.bytes_received
        if contents.complete is not None:
            session.finish()
        else:
            session.state = "suspended"
            journal.reopen_for_append(contents)
        return session

    def describe(self) -> dict:
        return {
            "node_id": self.node_id,
            "state": self.state,
            "error": self.error,
            "bytes": self.bytes_received,
            "entries": self.decoder.entries_decoded,
            "pending_bytes": self.decoder.pending_bytes,
            "windows": self.accumulator.windows_emitted,
            "attached": self.attached,
            "resumable": self.resumable,
            "journaled": self.journal is not None,
        }

    def breakdown(self) -> dict:
        """The node's current attribution: the folded map once done,
        the live cumulative view while streaming."""
        if self.final_map is not None:
            reply = emap_to_wire(self.final_map)
            reply["live"] = False
            return reply
        live = self.accumulator.live_breakdown()
        return {
            "energy_j": pairs_to_wire(live["energy_j"]),
            "time_ns": pairs_to_wire(live["time_ns"]),
            "metered_energy_j": live["metered_energy_j"],
            "reconstructed_energy_j": live["reconstructed_energy_j"],
            "span_ns": live["span_ns"],
            "live": True,
        }


class IngestServer:
    """The long-running service.  ``await start_tcp(...)`` and/or
    ``await start_unix(...)``, then :meth:`serve_forever` (or just keep
    the loop alive); :meth:`close` tears the listeners down.  With
    ``state_dir`` every stream is journaled and checkpointed, and
    construction restores whatever a previous process left behind."""

    def __init__(self, *, retain: int = 64, queue_depth: int = 32,
                 state_dir=None, checkpoint_bytes: int = CHECKPOINT_BYTES,
                 ack_bytes: int = ACK_BYTES,
                 max_streams: Optional[int] = None) -> None:
        if queue_depth < 1:
            raise ServeError("queue depth must be at least 1")
        if checkpoint_bytes < 1:
            raise ServeError("checkpoint cadence must be at least 1 byte")
        self.retain = retain
        self.queue_depth = queue_depth
        self.state_dir = state_dir
        self.checkpoint_bytes = checkpoint_bytes
        self.ack_bytes = max(1, ack_bytes)
        self.max_streams = max_streams
        self.sessions: dict[int, NodeSession] = {}
        self.completed = 0
        self.restored = 0
        self._servers: list[asyncio.base_events.Server] = []
        self._done_event = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()
        if self.state_dir is not None:
            self._restore_all()

    # -- durability ---------------------------------------------------------

    def _restore_all(self) -> None:
        """Rebuild every journaled session from ``state_dir``.  A node
        whose replay itself fails is quarantined — one bad journal never
        stops the server from coming back."""
        for node_id in NodeJournal.scan_dir(self.state_dir):
            fire("serve-restore", node_id)
            try:
                session = NodeSession.restore(
                    self.state_dir, node_id, retain=self.retain)
            except Exception as exc:
                journal = NodeJournal(self.state_dir, node_id)
                contents = journal.load()
                if contents is None or contents.hello is None:
                    continue
                session = NodeSession(contents.hello, retain=self.retain,
                                      journal=journal)
                session.set_quarantined(f"restore failed: {exc}")
            if session is None:
                continue
            self.sessions[session.node_id] = session
            self.restored += 1
            if session.state in ("done", "quarantined"):
                # Concluded either way; `--expect-nodes` counts it.
                self.completed += 1

    def _checkpoint(self, session: NodeSession,
                    complete: bool = False) -> None:
        if session.journal is None:
            return
        fire("serve-checkpoint", session.node_id)
        session.journal.write_checkpoint(
            session.checkpoint_state(complete))
        session.checkpointed_bytes = session.bytes_received

    def _suspend(self, session: NodeSession) -> None:
        """Park a resumable stream whose connection went away: the
        session keeps its live decoder/accumulator (and checkpoint, if
        journaled) and waits for the client to reconnect."""
        session.state = "suspended"
        session.attached = False
        try:
            self._checkpoint(session)
        except OSError:
            pass  # the journal itself still covers the bytes

    def _finalize(self, session: NodeSession) -> None:
        """Completion durability: final checkpoint (finished
        accumulator) + the journal's complete record."""
        if session.journal is None:
            return
        try:
            self._checkpoint(session, complete=True)
            session.journal.mark_complete({
                "entries": session.decoder.entries_decoded,
                "windows": session.accumulator.windows_emitted,
            })
            session.journal.close()
        except OSError:
            pass  # reply still stands; a restart replays the journal

    # -- lifecycle ----------------------------------------------------------

    async def start_tcp(self, host: str, port: int) -> tuple[str, int]:
        server = await asyncio.start_server(
            self._handle, host, port, limit=LINE_LIMIT)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: str) -> str:
        try:
            # A SIGKILLed predecessor leaves its socket file behind;
            # binding would fail on it.  One server per path is the
            # deployment contract, so a stale socket is safe to clear.
            if stat.S_ISSOCK(os.stat(path).st_mode):
                os.unlink(path)
        except (FileNotFoundError, OSError):
            pass
        server = await asyncio.start_unix_server(
            self._handle, path, limit=LINE_LIMIT)
        self._servers.append(server)
        return path

    async def serve_forever(self, stop_after: Optional[int] = None) -> None:
        """Serve until :meth:`request_shutdown` (or, with ``stop_after``,
        until that many node streams have completed — scripted runs,
        smoke tests).  On a requested shutdown this drains gracefully
        via :meth:`shutdown` before returning."""
        stop_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            while not self._shutdown.is_set():
                if stop_after is not None and self.completed >= stop_after:
                    return
                self._done_event.clear()
                done_task = asyncio.ensure_future(self._done_event.wait())
                try:
                    await asyncio.wait(
                        {done_task, stop_task},
                        return_when=asyncio.FIRST_COMPLETED)
                finally:
                    done_task.cancel()
        finally:
            stop_task.cancel()
        await self.shutdown()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe: just sets an
        event on the loop).  Listeners stop accepting, streaming nodes'
        queues drain, decoders with no partial entry finish cleanly and
        get their final map; a node caught mid-frame is marked failed
        rather than folded torn — unless it is resumable, in which case
        it is checkpointed and told to reconnect."""
        self._shutdown.set()

    async def shutdown(self, grace_s: float = 5.0) -> None:
        """Stop accepting, then wait up to ``grace_s`` for the open
        connection handlers to drain and reply; stragglers past the
        grace period are cancelled.  Unconcluded journaled sessions get
        a parting checkpoint so the restart resumes exactly here."""
        self._shutdown.set()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        pending = {task for task in self._handlers if not task.done()}
        if pending:
            _done, late = await asyncio.wait(pending, timeout=grace_s)
            for task in late:
                task.cancel()
            if late:
                await asyncio.gather(*late, return_exceptions=True)
        for session in self.sessions.values():
            if session.state in ("streaming", "suspended"):
                try:
                    self._checkpoint(session)
                except OSError:
                    pass

    async def close(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for session in self.sessions.values():
            if session.journal is not None:
                session.journal.close()

    def final_stats_lines(self) -> list[str]:
        """Per-node summary lines for the shutdown log."""
        lines = []
        for node_id in sorted(self.sessions):
            session = self.sessions[node_id]
            desc = session.describe()
            detail = f" ({desc['error']})" if desc["error"] else ""
            lines.append(
                f"node {node_id}: {desc['state']}{detail}, "
                f"{desc['entries']} entries, {desc['windows']} windows, "
                f"{desc['bytes']} bytes")
        lines.append(
            f"total: {len(self.sessions)} sessions, "
            f"{self.completed} completed streams")
        return lines

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            line = await reader.readline()
            if not line:
                return
            verb, _, payload = line.strip().partition(b" ")
            verb_name = verb.decode("ascii", "replace")
            if verb_name == INGEST_VERB:
                await self._handle_ingest(payload, reader, writer)
            elif verb_name == QUERY_VERB:
                await self._handle_query(payload, writer)
            else:
                writer.write(encode_json_line(
                    {"ok": False,
                     "error": f"unknown verb {verb_name!r}"}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; its session (if any) is marked failed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reject(self, writer: asyncio.StreamWriter,
                      error: str, **extra) -> None:
        reply = {"ok": False, "error": error}
        reply.update(extra)
        writer.write(encode_json_line(reply))
        await writer.drain()

    async def _route_ingest(self, hello: dict,
                            writer: asyncio.StreamWriter):
        """Map an ingest hello to its session: resume an existing one
        (ack handshake), shed past the stream cap, or create fresh.
        Returns ``(session, resumed)`` — ``(None, _)`` when a rejection
        was already written."""
        node_id = int(hello["node_id"])
        want_ack = bool(hello.get("ack"))
        existing = self.sessions.get(node_id)
        if want_ack and existing is not None:
            if existing.state == "quarantined":
                await self._reject(
                    writer,
                    f"node {node_id} is quarantined: {existing.error}")
                return None, False
            if existing.attached:
                await self._reject(
                    writer, f"node {node_id} is already streaming")
                return None, False
            # done / suspended / streaming-detached / error: resume.
            return existing, True
        active = sum(1 for s in self.sessions.values() if s.attached)
        if self.max_streams is not None and active >= self.max_streams:
            # Shed, don't buffer: an explicit retryable NACK beats an
            # unbounded backlog the accounting can never catch up on.
            await self._reject(
                writer,
                f"server overloaded: {active} streams at the "
                f"{self.max_streams}-stream cap",
                retry=True, shed=True)
            return None, False
        session = NodeSession(hello, retain=self.retain)
        if self.state_dir is not None:
            journal = NodeJournal(self.state_dir, node_id)
            journal.create(hello)
            session.journal = journal
        self.sessions[node_id] = session
        return session, False

    async def _handle_ingest(self, payload: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            hello = check_hello(decode_json_line(payload, "ingest hello"))
            session, resumed = await self._route_ingest(hello, writer)
        except (ReproError, OSError) as exc:
            await self._reject(writer, str(exc))
            return
        if session is None:
            return
        want_ack = bool(hello.get("ack"))
        if want_ack:
            session.resumable = True
            writer.write(encode_json_line(
                {"ok": True, "node_id": session.node_id,
                 "offset": session.bytes_received, "resumed": resumed}))
            await writer.drain()
        if session.state == "done":
            # A reconnect after completion: the handshake told the
            # client to fast-forward to EOF; re-deliver the stored map.
            while await reader.read(READ_CHUNK):
                pass
            writer.write(encode_json_line(session.final_reply()))
            await writer.drain()
            return
        session.attached = True
        session.state = "streaming"
        session.error = None
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_depth)
        consumer = asyncio.ensure_future(
            self._consume(session, queue, writer, want_ack))
        eof_clean = False
        stopped = False
        stop_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            while True:
                read_task = asyncio.ensure_future(reader.read(READ_CHUNK))
                done, _ = await asyncio.wait(
                    {read_task, stop_task, consumer},
                    return_when=asyncio.FIRST_COMPLETED)
                if read_task not in done:
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, ConnectionError,
                            asyncio.IncompleteReadError):
                        pass
                    if consumer in done:
                        break  # accounting died; surfaces at the await
                    # Graceful shutdown: stop reading; the queue drains
                    # below and the decoder decides clean vs mid-frame.
                    stopped = True
                    break
                chunk = read_task.result()
                if not chunk:
                    eof_clean = True
                    break
                # Bounded hand-off: accounting lag blocks this put, which
                # stops the reads, which flow-controls the sender.  A dead
                # consumer must break the wait, not deadlock it.
                put_task = asyncio.ensure_future(queue.put(chunk))
                done, _ = await asyncio.wait(
                    {put_task, consumer},
                    return_when=asyncio.FIRST_COMPLETED)
                if put_task not in done:
                    put_task.cancel()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # eof_clean stays False -> failed or suspended below
        finally:
            stop_task.cancel()
            if not consumer.done():
                await queue.put(_EOF)
        try:
            await consumer
        except _StreamFault as exc:
            # Malformed stream content: this node is quarantined, the
            # journal is preserved for postmortem, the server sails on.
            session.set_quarantined(str(exc))
            reply = {"ok": False, "node_id": session.node_id,
                     "error": str(exc), "quarantined": True}
        except (ReproError, OSError) as exc:
            session.fail(str(exc))
            session.attached = False
            reply = {"ok": False, "node_id": session.node_id,
                     "error": str(exc)}
        else:
            if not eof_clean and session.resumable:
                # The stream will be back: park it, don't fail it.
                self._suspend(session)
                if not stopped:
                    return  # peer is gone; nothing to reply to
                reply = {"ok": False, "node_id": session.node_id,
                         "error": "server shutting down mid-stream",
                         "retry": True}
                writer.write(encode_json_line(reply))
                await writer.drain()
                return
            try:
                if stopped and not eof_clean:
                    # Queue drained; a decoder holding a partial entry
                    # was cut mid-frame, everything else ends cleanly.
                    if session.decoder.pending_bytes:
                        raise ServeError("server shutdown mid-frame")
                    eof_clean = True
                if not eof_clean:
                    raise ServeError("connection lost mid-stream")
                session.finish()
                self._finalize(session)
                session.attached = False
                reply = session.final_reply()
                if stopped:
                    reply["shutdown"] = True
            except ReproError as exc:
                session.fail(str(exc))
                session.attached = False
                reply = {"ok": False, "node_id": session.node_id,
                         "error": str(exc)}
        self.completed += 1
        self._done_event.set()
        writer.write(encode_json_line(reply))
        await writer.drain()

    async def _consume(self, session: NodeSession, queue: asyncio.Queue,
                       writer: asyncio.StreamWriter,
                       want_acks: bool) -> None:
        """Drain one session's chunk queue: journal first (write-ahead),
        then decode into the accumulator, checkpointing and acking on
        their byte cadences.  Runs as a task so decoding keeps pace with
        (and backpressures) the socket reads; yields to the loop between
        chunks to keep query connections responsive."""
        while True:
            chunk = await queue.get()
            if chunk is _EOF:
                return
            if session.journal is not None:
                fire("serve-journal", session.node_id)
                session.journal.append_chunk(chunk)
            try:
                session.ingest(chunk)
            except Exception as exc:
                raise _StreamFault(
                    f"node {session.node_id} stream is malformed: {exc}"
                ) from exc
            if session.journal is not None and (
                    session.bytes_received - session.checkpointed_bytes
                    >= self.checkpoint_bytes):
                self._checkpoint(session)
            if want_acks and (session.bytes_received
                              - session.last_ack_bytes >= self.ack_bytes):
                session.last_ack_bytes = session.bytes_received
                writer.write(encode_json_line(
                    {"ack": session.bytes_received}))

    # -- queries -------------------------------------------------------------

    async def _handle_query(self, payload: bytes,
                            writer: asyncio.StreamWriter) -> None:
        try:
            query = decode_json_line(payload, "query")
            reply = self._answer(query)
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc)}
        writer.write(encode_json_line(reply))
        await writer.drain()

    def _session_for(self, query: dict) -> NodeSession:
        node_id = query.get("node_id")
        session = self.sessions.get(node_id)
        if session is None:
            known = sorted(self.sessions)
            raise ServeError(f"unknown node {node_id!r}; known: {known}")
        return session

    def _answer(self, query: dict) -> dict:
        if not isinstance(query, dict):
            raise ServeError("query is not a JSON object")
        command = query.get("cmd")
        if command == "nodes":
            return {"ok": True, "nodes": [
                self.sessions[node_id].describe()
                for node_id in sorted(self.sessions)
            ]}
        if command == "breakdown":
            session = self._session_for(query)
            reply = session.breakdown()
            reply.update(ok=True, node_id=session.node_id,
                         state=session.state)
            return reply
        if command == "windows":
            session = self._session_for(query)
            last = int(query.get("last", 8))
            recent = list(session.accumulator.windows)[-last:]
            return {
                "ok": True,
                "node_id": session.node_id,
                "stride_ns": session.accumulator.stride_ns,
                "emitted": session.accumulator.windows_emitted,
                "windows": [snapshot_to_wire(s) for s in recent],
            }
        if command == "stats":
            return {
                "ok": True,
                "sessions": len(self.sessions),
                "streaming": sum(1 for s in self.sessions.values()
                                 if s.state == "streaming"),
                "completed": self.completed,
                "restored": self.restored,
                "entries": sum(s.decoder.entries_decoded
                               for s in self.sessions.values()),
                "bytes": sum(s.bytes_received
                             for s in self.sessions.values()),
                "entry_size": ENTRY_SIZE,
            }
        raise ServeError(
            f"unknown query cmd {command!r}; "
            "known: nodes, breakdown, windows, stats"
        )
