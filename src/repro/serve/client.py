"""Client side of the ingest service: stream a node's log, ask questions.

:func:`stream_node` is the whole node-agent loop in one call — build
the hello from a :class:`~repro.tos.node.QuantoNode`, open the
connection, push the packed log in transport-sized chunks, half-close,
and hand back the server's final folded map.  :func:`query` opens a
one-shot control connection.  Both have synchronous wrappers for
scripts and the CLI.

The chunking is deliberately adversarial by default (a prime chunk
size, so entry boundaries drift through every offset): the server-side
:class:`~repro.core.logger.WireDecoder` must not care, and the smoke
tests lean on that.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.errors import ServeError
from repro.serve.protocol import (
    Address,
    INGEST_VERB,
    LINE_LIMIT,
    QUERY_VERB,
    decode_json_line,
    emap_from_wire,
    encode_json_line,
    make_hello,
)

#: Default ingest chunk size: prime, smaller than one TCP segment, and
#: not a multiple of the 12-byte entry — every partial-entry offset gets
#: exercised in the first few chunks of any real log.
DEFAULT_CHUNK = 1021


async def open_connection(address: Address):
    """Open a stream to ``address`` (``(host, port)`` or a unix path)."""
    if isinstance(address, str):
        return await asyncio.open_unix_connection(address, limit=LINE_LIMIT)
    host, port = address
    return await asyncio.open_connection(host, port, limit=LINE_LIMIT)


def hello_for_node(node, *, stride_ns: int, timeline=None, regression=None,
                   origin_ns: Optional[int] = None) -> dict:
    """The ingest hello for a simulated node: capture its timeline and
    regression (if not provided) and pack the accounting inputs."""
    from repro.tos.node import COMPONENT_NAMES, RES_TIMERB

    if timeline is None:
        timeline = node.timeline()
    if regression is None:
        regression = node.regression(timeline)
    return make_hello(
        node_id=node.node_id,
        registry=node.registry,
        component_names=COMPONENT_NAMES,
        regression=regression,
        energy_per_pulse_j=node.platform.icount.nominal_energy_per_pulse_j,
        idle_name=node.registry.name_of(node.idle),
        stride_ns=stride_ns,
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        end_time_ns=timeline.end_time_ns,
        origin_ns=origin_ns,
    )


async def stream_raw(address: Address, hello: dict, raw: bytes,
                     *, chunk_size: int = DEFAULT_CHUNK,
                     on_chunk=None) -> dict:
    """Stream pre-packed log bytes under an explicit hello; returns the
    server's final reply (the folded map under ``"energy_map"``).

    ``on_chunk(sent_bytes, total_bytes)`` — awaited after every chunk if
    given — is the hook interactive clients (quanto-top) use to
    interleave queries with a stream still in flight.
    """
    if chunk_size < 1:
        raise ServeError("chunk size must be at least 1")
    reader, writer = await open_connection(address)
    try:
        writer.write(INGEST_VERB.encode() + b" " + encode_json_line(hello))
        total = len(raw)
        for offset in range(0, total, chunk_size):
            writer.write(raw[offset:offset + chunk_size])
            await writer.drain()
            if on_chunk is not None:
                await on_chunk(min(offset + chunk_size, total), total)
        writer.write_eof()  # half-close: "the log is complete"
        line = await reader.readline()
        if not line:
            raise ServeError("server closed without a final reply")
        reply = decode_json_line(line, "ingest reply")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    if not reply.get("ok"):
        raise ServeError(
            f"ingest rejected: {reply.get('error', 'unknown error')}")
    return reply


async def stream_node(address: Address, node, *, stride_ns: int,
                      chunk_size: int = DEFAULT_CHUNK,
                      on_chunk=None) -> dict:
    """Stream one simulated node's full log to the server."""
    hello = hello_for_node(node, stride_ns=stride_ns)
    raw = node.logger.raw_bytes()
    return await stream_raw(address, hello, raw, chunk_size=chunk_size,
                            on_chunk=on_chunk)


async def query(address: Address, payload: dict) -> dict:
    """One control query; returns the server's reply object."""
    reader, writer = await open_connection(address)
    try:
        writer.write(QUERY_VERB.encode() + b" " + encode_json_line(payload))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ServeError("server closed without a query reply")
        return decode_json_line(line, "query reply")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def final_map(reply: dict):
    """The folded :class:`~repro.core.accounting.EnergyMap` out of an
    ingest reply."""
    return emap_from_wire(reply["energy_map"])


def stream_node_sync(address: Address, node, *, stride_ns: int,
                     chunk_size: int = DEFAULT_CHUNK) -> dict:
    return asyncio.run(stream_node(address, node, stride_ns=stride_ns,
                                   chunk_size=chunk_size))


def query_sync(address: Address, payload: dict) -> dict:
    return asyncio.run(query(address, payload))
