"""Client side of the ingest service: stream a node's log, ask questions.

:func:`stream_node` is the whole node-agent loop in one call — build
the hello from a :class:`~repro.tos.node.QuantoNode`, open the
connection, push the packed log in transport-sized chunks, half-close,
and hand back the server's final folded map.  :func:`query` opens a
one-shot control connection.  Both have synchronous wrappers for
scripts and the CLI.

The chunking is deliberately adversarial by default (a prime chunk
size, so entry boundaries drift through every offset): the server-side
:class:`~repro.core.logger.WireDecoder` must not care, and the smoke
tests lean on that.

**Reconnect-with-resume**: by default the client speaks the ack
handshake (hello ``"ack": true``) — the server answers with the stream
offset it already holds (journaled across restarts), the client seeks
its log there and replays idempotently.  A dropped connection, a
bounced server, or an explicit retryable NACK (overload shed, graceful
drain) costs a capped-exponential-backoff reconnect, nothing more; the
final map is byte-identical to an uninterrupted stream.  Connection
failures that outlive the retry budget surface as a typed
:class:`~repro.errors.ServeError` naming the node, never a bare
``OSError``.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.errors import ServeError
from repro.serve.protocol import (
    Address,
    INGEST_VERB,
    LINE_LIMIT,
    QUERY_VERB,
    decode_json_line,
    emap_from_wire,
    encode_json_line,
    is_ack_line,
    make_hello,
)

#: Default ingest chunk size: prime, smaller than one TCP segment, and
#: not a multiple of the 12-byte entry — every partial-entry offset gets
#: exercised in the first few chunks of any real log.
DEFAULT_CHUNK = 1021

#: Reconnect budget: how many times a dropped connection / retryable
#: NACK is retried before the stream is declared failed.
DEFAULT_RETRIES = 5

#: Capped exponential backoff between reconnect attempts.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


async def open_connection(address: Address):
    """Open a stream to ``address`` (``(host, port)`` or a unix path)."""
    if isinstance(address, str):
        return await asyncio.open_unix_connection(address, limit=LINE_LIMIT)
    host, port = address
    return await asyncio.open_connection(host, port, limit=LINE_LIMIT)


def hello_for_node(node, *, stride_ns: int, timeline=None, regression=None,
                   origin_ns: Optional[int] = None) -> dict:
    """The ingest hello for a simulated node: capture its timeline and
    regression (if not provided) and pack the accounting inputs."""
    from repro.tos.node import COMPONENT_NAMES, RES_TIMERB

    if timeline is None:
        timeline = node.timeline()
    if regression is None:
        regression = node.regression(timeline)
    return make_hello(
        node_id=node.node_id,
        registry=node.registry,
        component_names=COMPONENT_NAMES,
        regression=regression,
        energy_per_pulse_j=node.platform.icount.nominal_energy_per_pulse_j,
        idle_name=node.registry.name_of(node.idle),
        stride_ns=stride_ns,
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        end_time_ns=timeline.end_time_ns,
        origin_ns=origin_ns,
    )


async def _stream_once(address: Address, hello: dict, raw: bytes, *,
                       chunk_size: int, on_chunk, resume: bool) -> dict:
    """One connection attempt.  Raises ``ConnectionError`` family for
    transport failures (retryable by the caller) and :class:`ServeError`
    for server rejections (``exc.retryable`` says whether to back off
    and try again)."""
    reader, writer = await open_connection(address)
    try:
        wire_hello = dict(hello)
        if resume:
            wire_hello["ack"] = True
        writer.write(INGEST_VERB.encode() + b" "
                     + encode_json_line(wire_hello))
        await writer.drain()
        offset = 0
        if resume:
            line = await reader.readline()
            if not line:
                raise ConnectionResetError(
                    "server closed during the resume handshake")
            handshake = decode_json_line(line, "ingest handshake")
            if not handshake.get("ok"):
                exc = ServeError(
                    f"ingest rejected: "
                    f"{handshake.get('error', 'unknown error')}")
                exc.retryable = bool(handshake.get("retry")
                                     or handshake.get("shed"))
                raise exc
            offset = int(handshake.get("offset", 0))
            if offset > len(raw):
                raise ServeError(
                    f"server holds {offset} bytes but the log is only "
                    f"{len(raw)} — node identity reused?")
        total = len(raw)
        for at in range(offset, total, chunk_size):
            writer.write(raw[at:at + chunk_size])
            await writer.drain()
            if on_chunk is not None:
                await on_chunk(min(at + chunk_size, total), total)
        writer.write_eof()  # half-close: "the log is complete"
        while True:
            line = await reader.readline()
            if not line:
                raise ConnectionResetError(
                    "server closed without a final reply")
            reply = decode_json_line(line, "ingest reply")
            if not is_ack_line(reply):
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    if not reply.get("ok"):
        exc = ServeError(
            f"ingest rejected: {reply.get('error', 'unknown error')}")
        exc.retryable = bool(reply.get("retry"))
        raise exc
    reply["client"] = {"resumed_from": offset}
    return reply


async def stream_raw(address: Address, hello: dict, raw: bytes,
                     *, chunk_size: int = DEFAULT_CHUNK,
                     on_chunk=None, resume: bool = True,
                     retries: int = DEFAULT_RETRIES,
                     backoff_base_s: float = BACKOFF_BASE_S,
                     backoff_cap_s: float = BACKOFF_CAP_S) -> dict:
    """Stream pre-packed log bytes under an explicit hello; returns the
    server's final reply (the folded map under ``"energy_map"``, plus a
    ``"client"`` dict recording reconnects and the resume offset).

    ``on_chunk(sent_bytes, total_bytes)`` — awaited after every chunk if
    given — is the hook interactive clients (quanto-top) use to
    interleave queries with a stream still in flight.

    With ``resume`` (default) each attempt handshakes for the server's
    acked offset and replays only the tail, so retries are idempotent;
    ``resume=False`` speaks the original one-reply protocol and never
    retries.
    """
    if chunk_size < 1:
        raise ServeError("chunk size must be at least 1")
    node_id = hello.get("node_id")
    budget = retries if resume else 0
    attempt = 0
    while True:
        try:
            reply = await _stream_once(
                address, hello, raw, chunk_size=chunk_size,
                on_chunk=on_chunk, resume=resume)
            reply["client"]["reconnects"] = attempt
            return reply
        except ServeError as exc:
            if not getattr(exc, "retryable", False) or attempt >= budget:
                raise
        except (ConnectionError, asyncio.IncompleteReadError,
                OSError) as exc:
            # Bounced server, dropped socket, refused reconnect window.
            if attempt >= budget:
                raise ServeError(
                    f"node {node_id}: connection lost after {attempt} "
                    f"reconnect attempts: {exc}") from exc
        attempt += 1
        await asyncio.sleep(
            min(backoff_cap_s, backoff_base_s * (2 ** (attempt - 1))))


async def stream_node(address: Address, node, *, stride_ns: int,
                      chunk_size: int = DEFAULT_CHUNK,
                      on_chunk=None, resume: bool = True,
                      retries: int = DEFAULT_RETRIES,
                      backoff_base_s: float = BACKOFF_BASE_S,
                      backoff_cap_s: float = BACKOFF_CAP_S) -> dict:
    """Stream one simulated node's full log to the server."""
    hello = hello_for_node(node, stride_ns=stride_ns)
    raw = node.logger.raw_bytes()
    return await stream_raw(address, hello, raw, chunk_size=chunk_size,
                            on_chunk=on_chunk, resume=resume,
                            retries=retries,
                            backoff_base_s=backoff_base_s,
                            backoff_cap_s=backoff_cap_s)


async def query(address: Address, payload: dict) -> dict:
    """One control query; returns the server's reply object."""
    reader, writer = await open_connection(address)
    try:
        writer.write(QUERY_VERB.encode() + b" " + encode_json_line(payload))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ServeError("server closed without a query reply")
        return decode_json_line(line, "query reply")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def final_map(reply: dict):
    """The folded :class:`~repro.core.accounting.EnergyMap` out of an
    ingest reply."""
    return emap_from_wire(reply["energy_map"])


def stream_node_sync(address: Address, node, *, stride_ns: int,
                     chunk_size: int = DEFAULT_CHUNK, **kwargs) -> dict:
    try:
        return asyncio.run(stream_node(address, node, stride_ns=stride_ns,
                                       chunk_size=chunk_size, **kwargs))
    except ConnectionResetError as exc:
        raise ServeError(
            f"node {node.node_id}: connection reset by server: {exc}"
        ) from exc
    except (asyncio.IncompleteReadError, OSError) as exc:
        # OSError covers the whole transport family: refused, missing
        # socket path, broken pipe.  The caller gets one typed error.
        raise ServeError(
            f"node {node.node_id}: connection failed: {exc}") from exc


def query_sync(address: Address, payload: dict) -> dict:
    try:
        return asyncio.run(query(address, payload))
    except ConnectionResetError as exc:
        raise ServeError(
            f"query to {address!r}: connection reset by server: {exc}"
        ) from exc
    except (asyncio.IncompleteReadError, OSError) as exc:
        raise ServeError(
            f"query to {address!r}: connection failed: {exc}") from exc
