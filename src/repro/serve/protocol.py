"""Wire protocol of the live ingest service.

A connection opens with exactly one ASCII line that names its role:

* ``INGEST <json>\\n`` — a node stream.  The JSON *hello* carries
  everything the server needs to account the node without seeing the
  simulation: the solved regression (columns, draws, constant floor),
  the activity registry contents, device declarations, component names,
  the pulse energy, and the window parameters.  After the hello the
  connection body is **raw packed log entries** — the same 12-byte
  frames the on-node logger writes (see :mod:`repro.core.logger`), in
  any chunking the transport produces.  The client half-closes when the
  log is done; the server replies with one JSON line holding the final
  folded energy map, then closes.
* ``QUERY <json>\\n`` — a control query.  The server answers with one
  JSON line and closes.  Commands: ``nodes`` (session states),
  ``breakdown`` (live or final per-node map), ``windows`` (recent
  window snapshots), ``stats`` (server totals).

**Resume extension** (the durable-ingest handshake): a hello carrying
``"ack": true`` opts into acked offsets.  The server answers the hello
*immediately* with one handshake line ``{"ok": true, "offset": N,
"resumed": ...}`` where ``N`` is the count of stream payload bytes it
already holds for this node (journaled across restarts; 0 for a new
stream) — the client seeks its log to ``N`` and streams from there, so
replay after a reconnect is idempotent.  While the body streams, the
server interleaves ack lines ``{"ack": N}`` (no ``"ok"`` key — the
final reply always has one, which is how the client tells them apart).
A rejected hello may carry ``"retry": true`` (server draining or
overloaded — back off and reconnect) or not (permanent: quarantined
node, malformed hello).  Hellos without ``"ack"`` get the original
one-reply protocol unchanged.

Everything JSON is one line, UTF-8, ``\\n``-terminated.  Energy-map
dicts are serialized as ``[[component, activity, value], ...]`` triple
lists: JSON objects cannot key on the (component, activity) tuples and
a triple list preserves the map's insertion order, which is part of the
determinism contract.  Floats survive the round trip exactly —
``json`` emits ``repr`` shortest-roundtrip forms — so a client can
compare a served map against an offline one for bit-equality.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.accounting import EnergyMap, WindowSnapshot
from repro.core.labels import ActivityRegistry
from repro.core.regression import RegressionResult, SinkColumn
from repro.errors import ServeError

#: Connection-role line prefixes.
INGEST_VERB = "INGEST"
QUERY_VERB = "QUERY"

#: Stream buffer limit for the JSON lines (the hello dominates; a
#: registry of 256 names fits in a few KiB).
LINE_LIMIT = 1 << 20

#: An address is ``(host, port)`` for TCP or a filesystem path for a
#: unix-domain socket.
Address = Union[tuple[str, int], str]


def parse_address(spec: str) -> Address:
    """Parse a CLI address: ``unix:/path``, ``host:port``, or ``:port``
    (localhost)."""
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ServeError(f"empty unix socket path in {spec!r}")
        return path
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ServeError(
            f"bad address {spec!r}; expected unix:/path, host:port, or :port"
        )
    return (host or "127.0.0.1", int(port))


def encode_json_line(obj) -> bytes:
    """One compact JSON line, ready to write."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_json_line(line: bytes, what: str):
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ServeError(f"bad {what} JSON: {exc}") from None


def is_ack_line(reply: dict) -> bool:
    """True for the server's interleaved ``{"ack": N}`` offset lines
    (every handshake/final reply carries an ``"ok"`` key; acks don't)."""
    return isinstance(reply, dict) and "ack" in reply and "ok" not in reply


# -- (component, activity) keyed dicts --------------------------------------


def pairs_to_wire(mapping: dict) -> list:
    """``{(component, activity): value}`` → ordered triple list."""
    return [[component, activity, value]
            for (component, activity), value in mapping.items()]


def pairs_from_wire(triples: Sequence) -> dict:
    """Ordered triple list → ``{(component, activity): value}``."""
    return {(component, activity): value
            for component, activity, value in triples}


def emap_to_wire(emap: EnergyMap) -> dict:
    return {
        "energy_j": pairs_to_wire(emap.energy_j),
        "time_ns": pairs_to_wire(emap.time_ns),
        "metered_energy_j": emap.metered_energy_j,
        "reconstructed_energy_j": emap.reconstructed_energy_j,
        "span_ns": emap.span_ns,
    }


def emap_from_wire(obj: dict) -> EnergyMap:
    return EnergyMap(
        time_ns=pairs_from_wire(obj["time_ns"]),
        energy_j=pairs_from_wire(obj["energy_j"]),
        metered_energy_j=obj["metered_energy_j"],
        reconstructed_energy_j=obj["reconstructed_energy_j"],
        span_ns=obj["span_ns"],
    )


def snapshot_to_wire(snapshot: WindowSnapshot) -> dict:
    """A window snapshot for query replies: the display deltas plus the
    window's cumulative totals (the full cumulative dicts stay
    server-side; queries are for dashboards, the exactness contract is
    settled in the final ingest reply)."""
    return {
        "index": snapshot.index,
        "t0_ns": snapshot.t0_ns,
        "t1_ns": snapshot.t1_ns,
        "intervals": snapshot.intervals,
        "energy_j": pairs_to_wire(snapshot.energy_j),
        "time_ns": pairs_to_wire(snapshot.time_ns),
        "reconstructed_energy_j": snapshot.reconstructed_energy_j,
        "metered_energy_j": snapshot.metered_energy_j,
        "final": snapshot.final,
    }


# -- regression / registry ---------------------------------------------------


def regression_to_wire(regression: RegressionResult) -> dict:
    """The accounting-relevant slice of a solved regression: the column
    layout, the per-column draws, and the constant floor.  The solver
    diagnostics (residuals, groups, weights) stay home."""
    return {
        "columns": [[c.res_id, c.value, c.name] for c in regression.columns],
        "power_w": dict(regression.power_w),
        "const_power_w": regression.const_power_w,
        "voltage": regression.voltage,
    }


def regression_from_wire(obj: dict) -> RegressionResult:
    """Rebuild a :class:`RegressionResult` good enough for accounting
    (empty diagnostic arrays; the accumulator reads only columns,
    ``power_w``, and ``const_power_w``)."""
    empty = np.zeros(0)
    return RegressionResult(
        columns=[SinkColumn(res_id=r, value=v, name=n)
                 for r, v, n in obj["columns"]],
        power_w=dict(obj["power_w"]),
        const_power_w=obj["const_power_w"],
        voltage=obj.get("voltage", 0.0),
        y=empty, y_hat=empty, weights=empty,
        group_states=[], group_time_ns=[], group_energy_j=[],
    )


def registry_to_wire(registry: ActivityRegistry) -> dict:
    """aid → name, every registration included (builtins too, so the
    rebuilt registry renders identically)."""
    return {str(aid): name for aid, name in registry.known_ids().items()}


def registry_from_wire(obj: dict) -> ActivityRegistry:
    """A real registry restored from the wire names — ``name_of``
    renders exactly as the sending node's registry does (including the
    ``actN`` fallback for ids the sender never named)."""
    names = {int(aid): name for aid, name in obj.items()}
    registry = ActivityRegistry()
    next_id = max(names, default=0) + 1
    registry.restore_state((names, next_id))
    return registry


# -- the ingest hello --------------------------------------------------------

_HELLO_REQUIRED = (
    "node_id", "registry", "component_names", "regression",
    "energy_per_pulse_j", "idle_name", "stride_ns",
)


def make_hello(
    *,
    node_id: int,
    registry: ActivityRegistry,
    component_names: dict[int, str],
    regression: RegressionResult,
    energy_per_pulse_j: float,
    idle_name: str,
    stride_ns: int,
    single_res_ids: Optional[Sequence[int]] = None,
    multi_res_ids: Optional[Sequence[int]] = None,
    end_time_ns: Optional[int] = None,
    origin_ns: Optional[int] = None,
) -> dict:
    return {
        "node_id": node_id,
        "registry": registry_to_wire(registry),
        "component_names": {str(k): v for k, v in component_names.items()},
        "regression": regression_to_wire(regression),
        "energy_per_pulse_j": energy_per_pulse_j,
        "idle_name": idle_name,
        "stride_ns": stride_ns,
        "single_res_ids": list(single_res_ids or ()),
        "multi_res_ids": list(multi_res_ids or ()),
        "end_time_ns": end_time_ns,
        "origin_ns": origin_ns,
    }


def check_hello(hello: dict) -> dict:
    """Validate an ingest hello's shape; returns it for chaining."""
    if not isinstance(hello, dict):
        raise ServeError("ingest hello is not a JSON object")
    missing = [key for key in _HELLO_REQUIRED if key not in hello]
    if missing:
        raise ServeError(f"ingest hello missing {', '.join(missing)}")
    return hello
