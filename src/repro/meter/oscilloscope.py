"""A virtual oscilloscope: ground truth for calibrating Quanto.

The paper calibrates against a Tektronix MSO4104 watching the voltage
across a 10-ohm shunt between the iCount regulator and the mote.  Our
scope subscribes to the hidden :class:`~repro.hw.power.PowerRail` step
trace and records the aggregate current exactly.  For presentation
(Figure 10) it can also synthesize the switching-regulator ripple that the
real scope sees — a sawtooth at the iCount pulse frequency around the mean
current — and it can apply measurement noise so that calibration tables
show realistic residuals (the paper's Table 2 closes with a 0.83 % relative
error, not zero).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.hw.power import PowerRail
from repro.units import to_s


@dataclass
class ScopeTrace:
    """A piecewise-constant record of aggregate current.

    ``times_ns[i]`` is when the current stepped to ``amps[i]``; the level
    holds until the next step (or ``end_ns``).
    """

    times_ns: list[int] = field(default_factory=list)
    amps: list[float] = field(default_factory=list)
    end_ns: int = 0

    def level_at(self, t_ns: int) -> float:
        """Current level at an instant (0 before the first step)."""
        # Binary search over step times.
        lo, hi = 0, len(self.times_ns)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.times_ns[mid] <= t_ns:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0.0
        return self.amps[lo - 1]

    def mean_current(self, t0_ns: int, t1_ns: int) -> float:
        """Time-weighted mean current over [t0, t1] in amperes."""
        if t1_ns <= t0_ns:
            raise ValueError("empty window")
        total = 0.0
        prev_t = t0_ns
        prev_level = self.level_at(t0_ns)
        for t, level in zip(self.times_ns, self.amps):
            if t <= t0_ns:
                continue
            if t >= t1_ns:
                break
            total += prev_level * (t - prev_t)
            prev_t, prev_level = t, level
        total += prev_level * (t1_ns - prev_t)
        return total / (t1_ns - t0_ns)

    def energy(self, t0_ns: int, t1_ns: int, voltage: float) -> float:
        """Energy over the window in joules, from the exact step trace."""
        return self.mean_current(t0_ns, t1_ns) * voltage * to_s(t1_ns - t0_ns)

    def steps_in(self, t0_ns: int, t1_ns: int) -> list[tuple[int, float]]:
        """The (time, level) steps inside a window."""
        return [
            (t, a)
            for t, a in zip(self.times_ns, self.amps)
            if t0_ns <= t < t1_ns
        ]


class Oscilloscope:
    """Records the rail's aggregate current and produces sampled views."""

    def __init__(
        self,
        rail: PowerRail,
        noise_fraction: float = 0.0,
        rng=None,
    ) -> None:
        self.rail = rail
        self.noise_fraction = float(noise_fraction)
        self._rng = rng
        self.trace = ScopeTrace()
        rail.add_observer(self._on_step)
        # Record the initial level so windows before the first change work.
        self.trace.times_ns.append(rail.sim.now)
        self.trace.amps.append(rail.current())

    def _on_step(self, t_ns: int, amps: float) -> None:
        self.trace.times_ns.append(t_ns)
        self.trace.amps.append(amps)
        self.trace.end_ns = t_ns

    # -- measurement API ---------------------------------------------------

    def measure_mean_current(self, t0_ns: int, t1_ns: int) -> float:
        """Mean current over a window, with optional measurement noise —
        this is what feeds the Table 2 calibration regression."""
        mean = self.trace.mean_current(t0_ns, t1_ns)
        if self.noise_fraction and self._rng is not None:
            mean *= 1.0 + self._rng.gauss(0.0, self.noise_fraction)
        return max(mean, 0.0)

    def sample(
        self,
        t0_ns: int,
        t1_ns: int,
        sample_period_ns: int,
        ripple: bool = False,
        energy_per_pulse_j: float = 8.33e-6,
    ) -> tuple[list[int], list[float]]:
        """Sampled current waveform over a window.

        With ``ripple=True`` a sawtooth at the iCount switching frequency is
        superimposed on each constant segment, reproducing the waveform the
        paper's Figure 10 shows (the regulator dumping charge packets).  The
        sawtooth is shaped so its mean equals the segment's true current.
        """
        times: list[int] = []
        values: list[float] = []
        voltage = self.rail.voltage
        t = t0_ns
        while t < t1_ns:
            level = self.trace.level_at(t)
            value = level
            if ripple and level > 0:
                i_ma = level * 1e3
                f_khz = (i_ma + 0.05) / 2.77
                freq_hz = max(f_khz * 1e3, 1.0)
                phase = (to_s(t) * freq_hz) % 1.0
                # Sawtooth between 1.6x and 0.4x of the mean, mean-preserving.
                value = level * (1.6 - 1.2 * phase)
            if self.noise_fraction and self._rng is not None:
                value += level * self._rng.gauss(0.0, self.noise_fraction)
            times.append(t)
            values.append(max(value, 0.0))
            t += sample_period_ns
        return times, values

    def measure_energy(self, t0_ns: int, t1_ns: int) -> float:
        """Energy over the window (J), with measurement noise applied."""
        return self.measure_mean_current(t0_ns, t1_ns) * self.rail.voltage * to_s(
            t1_ns - t0_ns
        )
