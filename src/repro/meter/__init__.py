"""Energy metering: the iCount switching-regulator meter (what Quanto reads
at runtime) and a virtual oscilloscope (ground truth for calibration)."""

from repro.meter.icount import ICountMeter
from repro.meter.oscilloscope import Oscilloscope, ScopeTrace

__all__ = ["ICountMeter", "Oscilloscope", "ScopeTrace"]
