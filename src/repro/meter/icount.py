"""The iCount energy meter (Dutta et al., IPSN'08), as Quanto sees it.

iCount rides on the node's switching regulator: every regulator switch
cycle transfers a fixed quantum of energy, so counting switch pulses meters
cumulative energy.  The paper's calibration (Section 4.1) found, for the
HydroWatch at 3 V:

* pulse frequency linear in load current: ``I_avg(mA) = 2.77 f(kHz) - 0.05``
  with R^2 = 0.99995, i.e. one pulse corresponds to about **8.33 uJ**;
* maximum error around +/-15 % over five decades of current;
* a read latency of 24 instruction cycles;
* an energy resolution of roughly 1 uJ.

Our model integrates the hidden ground-truth rail energy exactly and
quantizes it at the pulse quantum.  Optional error knobs reproduce the
meter's non-idealities: a per-node *gain error* (the dominant term in the
+/-15 % spec — a fixed miscalibration of the effective uJ/pulse) and a
small white *jitter* on each read (pulse-edge phase noise).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.hw.power import PowerRail

#: Energy per regulator pulse at 3.0 V, from the paper's calibration.
DEFAULT_ENERGY_PER_PULSE_J = 8.33e-6

#: Cost charged to the CPU for reading the counter (Table 4: 24 cycles).
READ_COST_CYCLES = 24


class ICountMeter:
    """Quantized, optionally noisy view of the rail's cumulative energy.

    ``read()`` returns the pulse count — a ``uint32``-style monotone counter
    — without charging any CPU time; the caller (the Quanto logger) charges
    the 24-cycle read cost, mirroring how the real OS pays for the read.
    """

    def __init__(
        self,
        rail: PowerRail,
        energy_per_pulse_j: float = DEFAULT_ENERGY_PER_PULSE_J,
        gain_error: float = 0.0,
        jitter_pulses: float = 0.0,
        rng=None,
    ) -> None:
        if energy_per_pulse_j <= 0:
            raise ValueError("energy_per_pulse_j must be positive")
        if gain_error and rng is None and gain_error != 0.0:
            # gain error is deterministic once chosen; rng only needed for jitter
            pass
        self.rail = rail
        self.nominal_energy_per_pulse_j = float(energy_per_pulse_j)
        # A gain error of g means the meter behaves as if each pulse carried
        # (1+g)x the nominal energy: the count reads low for g > 0.
        self.gain_error = float(gain_error)
        self.jitter_pulses = float(jitter_pulses)
        self._rng = rng
        self._last_count = 0
        # Both constants are fixed at construction; read() runs once per
        # log record, so the derived per-pulse energy is computed once.
        self._effective_j = (
            self.nominal_energy_per_pulse_j * (1.0 + self.gain_error)
        )
        # read() is the log's per-record cost: the jitter draw is a
        # closure replica of ``random.Random.gauss(0.0, sigma)`` with the
        # uniform source, sigma, and libm functions bound once (the
        # stream object is stable — warm-start reseeds it in place).
        # The cached-pair state lives in ``_jitter_state`` so reset()
        # can clear it exactly like ``seed()`` clears ``gauss_next``.
        self._jitter_state: list[Optional[float]] = [None]
        if self.jitter_pulses and rng is not None:
            self._gauss = self._make_jitter(
                rng, self.jitter_pulses, self._jitter_state)
        else:
            self._gauss = None

    @staticmethod
    def _make_jitter(
        rng, sigma: float, state: list
    ) -> "Callable[[], float]":
        """Bit-identical closure form of ``rng.gauss(0.0, sigma)``:
        same polar-pair recurrence over the same uniform stream, same
        ``mu + z*sigma`` arithmetic (``mu = 0.0`` kept explicit so the
        signed-zero behavior matches), with the spare draw cached in
        ``state[0]`` instead of ``rng.gauss_next``."""
        uniform = rng.random
        cos = math.cos
        sin = math.sin
        log = math.log
        sqrt = math.sqrt
        twopi = 2.0 * math.pi

        def draw() -> float:
            z = state[0]
            state[0] = None
            if z is None:
                x2pi = uniform() * twopi
                g2rad = sqrt(-2.0 * log(1.0 - uniform()))
                z = cos(x2pi) * g2rad
                state[0] = sin(x2pi) * g2rad
            return 0.0 + z * sigma

        return draw

    @property
    def effective_energy_per_pulse_j(self) -> float:
        """The true joules per counted pulse including gain error."""
        return self._effective_j

    def reset(self) -> None:
        """Warm-start reset: rewind the monotone counter clamp.  The rng
        stream is re-seeded by the factory, and the calibration constants
        are per-config, so nothing else here is run state.  The cached
        jitter pair is cleared because the factory's in-place ``seed()``
        clears ``gauss_next`` on the real generator."""
        self._last_count = 0
        self._jitter_state[0] = None

    def read(self, at_ns: Optional[int] = None) -> int:
        """Current pulse count (monotone, uint32 semantics handled by the
        logger's 32-bit field).

        ``at_ns`` — read as of a near-future instant within the current
        CPU job (the logger passes the cycle-advanced virtual time).  The
        rail's draw is constant for the remainder of the executing job, so
        the energy is extrapolated at the present aggregate power; this
        mirrors the real meter being read mid-execution rather than at the
        event-loop boundary.
        """
        # Inlined rail.energy()/rail.power() *and* the integrate step:
        # one read per log record makes the method-call overhead of the
        # polite accessors real money (the arithmetic, its grouping, and
        # the per-sink accumulation order are exactly
        # PowerRail._integrate_to_now's).
        rail = self.rail
        now = rail.sim._now
        dt_ns = now - rail._last_update_ns
        if dt_ns > 0:
            total = rail._total_amps
            if total:
                dt_s = dt_ns * 1e-9
                voltage = rail.voltage
                rail._energy_j += voltage * total * dt_s
                sink_energy = rail._sink_energy_j
                for name, handle in rail._hot.items():
                    sink_energy[name] += voltage * handle._amps * dt_s
            rail._last_update_ns = now
        energy = rail._energy_j
        if at_ns is not None:
            ahead_ns = at_ns - now
            if ahead_ns > 0:
                energy += rail._total_amps * rail.voltage * ahead_ns * 1e-9
        count = energy / self._effective_j
        if self._gauss is not None:
            count += self._gauss()
        pulses = math.floor(count)
        if pulses < self._last_count:
            # Jitter must never make the counter run backwards.
            pulses = self._last_count
        self._last_count = pulses
        return pulses

    def pulses_to_joules(self, pulses: int) -> float:
        """Convert a pulse delta to joules using the *nominal* calibration
        constant — this is what the offline analysis does, so a gain error
        propagates into the estimate exactly as on real hardware."""
        return pulses * self.nominal_energy_per_pulse_j

    def frequency_for_current(self, amps: float) -> float:
        """Switch frequency (Hz) at a given load, from the paper's linear
        fit ``I_avg(mA) = 2.77 f(kHz) - 0.05`` — used to synthesize the
        switching ripple in Figure 10 renderings."""
        i_ma = amps * 1e3
        f_khz = (i_ma + 0.05) / 2.77
        return max(f_khz, 0.0) * 1e3
