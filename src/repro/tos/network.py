"""A network of Quanto nodes sharing one simulator and one radio channel.

The network owns the shared :class:`~repro.core.labels.ActivityRegistry`
(activity ids are a network-wide namespace in the paper's deployments),
the channel, and any interference sources.  It is the setup surface for
the multi-node experiments (Bounce, flood) and for the network-wide
energy merge in :mod:`repro.core.netmerge`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.labels import ActivityRegistry
from repro.errors import NetworkError
from repro.net.channel import RadioChannel
from repro.net.interference import Wifi80211Interferer, WifiTrafficConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode


class Network:
    """A shared simulation with multiple nodes on one channel."""

    def __init__(self, seed: int = 0):
        self.sim = Simulator()
        self.rng = RngFactory(seed)
        self.registry = ActivityRegistry()
        self.channel = RadioChannel(self.sim)
        self.nodes: dict[int, QuantoNode] = {}
        self.interferers: list[Wifi80211Interferer] = []

    def add_node(self, config: NodeConfig) -> QuantoNode:
        """Create a node attached to the shared channel and registry."""
        if config.node_id in self.nodes:
            raise NetworkError(f"duplicate node id {config.node_id}")
        node = QuantoNode(
            self.sim, config, registry=self.registry, channel=self.channel,
            rng_factory=self.rng,
        )
        self.nodes[config.node_id] = node
        return node

    def add_wifi_interferer(
        self, config: Optional[WifiTrafficConfig] = None,
        name: str = "wifi",
        audible_to: Optional[set[int]] = None,
    ) -> Wifi80211Interferer:
        """Attach an 802.11 interference source to the shared channel.
        ``audible_to`` restricts which nodes hear it (a source near only
        part of the deployment); None means everyone."""
        interferer = Wifi80211Interferer(
            self.sim, config or WifiTrafficConfig(),
            self.rng.stream(f"interferer.{name}"),
        )
        self.channel.add_interferer(interferer, audible_to=audible_to)
        self.interferers.append(interferer)
        return interferer

    def boot_all(
        self,
        apps: dict[int, Callable[[QuantoNode], None]],
    ) -> None:
        """Boot every node with its application start hook."""
        for node_id, node in self.nodes.items():
            node.boot(apps.get(node_id))

    def run(self, until_ns: int) -> None:
        for interferer in self.interferers:
            interferer.start()
        self.sim.run(until=until_ns)

    def node(self, node_id: int) -> QuantoNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"no node {node_id}") from None
