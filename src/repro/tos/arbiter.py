"""Resource arbiters (Klues et al., SOSP'07), instrumented for Quanto.

An arbiter serializes access to a shared resource (the SPI bus, the sensor
bus).  Quanto's instrumentation (paper §3.3, Table 5 "Arbiter"):
**activity labels transfer to and from the managed device automatically**
— when a client is granted the resource, the resource's activity device is
painted with the activity the client carried at request time; on release
it reverts to idle.

Grants are delivered in task context (as in TinyOS), so a queued client's
grant callback runs under the activity it held when it requested.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.errors import SimulationError
from repro.tos.scheduler import Scheduler

#: Cycles for queue management per request/release.
ARBITER_CYCLES = 9


class Arbiter:
    """A FIFO arbiter over one shared resource."""

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        resource_activity: Optional[SingleActivityDevice] = None,
        idle_label: Optional[ActivityLabel] = None,
    ) -> None:
        self.name = name
        self.scheduler = scheduler
        self.resource_activity = resource_activity
        self.idle_label = idle_label
        self._owner: Optional[str] = None
        self._queue: deque[tuple[str, Callable[[], None], ActivityLabel]] = \
            deque()
        self.grants = 0

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    def reset(self) -> None:
        """Warm-start reset: no owner, empty queue, zero tally."""
        self._owner = None
        self._queue.clear()
        self.grants = 0

    def request(self, client: str, on_granted: Callable[[], None]) -> None:
        """Request the resource; ``on_granted`` runs (in task context,
        under the requester's activity) when it is this client's turn."""
        activity = self.scheduler.cpu_activity.get()
        if self.scheduler.mcu._in_job:
            self.scheduler.mcu.consume(ARBITER_CYCLES)
        self._queue.append((client, on_granted, activity))
        if self._owner is None:
            self._grant_next()

    def release(self, client: str) -> None:
        """Release the resource; the next queued client is granted."""
        if self._owner != client:
            raise SimulationError(
                f"arbiter {self.name}: {client!r} released but owner is "
                f"{self._owner!r}"
            )
        if self.scheduler.mcu._in_job:
            self.scheduler.mcu.consume(ARBITER_CYCLES)
        self._owner = None
        if self.resource_activity is not None and self.idle_label is not None:
            self.resource_activity.set(self.idle_label)
        if self._queue:
            self._grant_next()

    def _grant_next(self) -> None:
        client, on_granted, activity = self._queue.popleft()
        self._owner = client
        self.grants += 1

        def granted() -> None:
            # Automatic label transfer: the resource now works on behalf
            # of the granted client's activity.
            if self.resource_activity is not None:
                self.resource_activity.set(activity)
            on_granted()

        self.scheduler.post_function(
            granted, cycles=ARBITER_CYCLES,
            label=f"arbiter:{self.name}", activity=activity,
        )
