"""The LED driver (paper Figure 2): the simplest instrumented driver.

Each LED has a binary power-state variable, set immediately before the
pin flips — exactly the paper's example.  ``paint`` copies the CPU's
current activity onto an LED's activity device (the pattern of the
Blink application: "each LED, when on, gets labeled with the respective
activity by the CPU").
"""

from __future__ import annotations

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.core.powerstate import PowerStateVar
from repro.hw.leds import LedBank
from repro.hw.mcu import Mcu

#: Cycles to flip a GPIO pin.
PIN_CYCLES = 3


class LedsDriver:
    """Instrumented access to the three LEDs."""

    def __init__(
        self,
        mcu: Mcu,
        bank: LedBank,
        powerstates: list[PowerStateVar],
        activities: list[SingleActivityDevice],
        cpu_activity: SingleActivityDevice,
        idle_label: ActivityLabel,
    ) -> None:
        if len(powerstates) != 3 or len(activities) != 3:
            raise ValueError("need exactly three LED powerstates/activities")
        self.mcu = mcu
        self.bank = bank
        self.powerstates = powerstates
        self.activities = activities
        self.cpu_activity = cpu_activity
        self.idle_label = idle_label

    def led_on(self, index: int) -> None:
        """Turn an LED on, signalling the power state first (Figure 2)."""
        self.powerstates[index].set(1)
        self.mcu.consume(PIN_CYCLES)
        self.bank.led(index).on()

    def led_off(self, index: int) -> None:
        self.powerstates[index].set(0)
        self.mcu.consume(PIN_CYCLES)
        self.bank.led(index).off()

    def led_toggle(self, index: int) -> None:
        if self.bank.led(index).is_on:
            self.led_off(index)
        else:
            self.led_on(index)

    def paint(self, index: int, label: ActivityLabel | None = None) -> None:
        """Paint an LED's activity device — with the CPU's current
        activity by default (how applications color LED usage)."""
        target = label if label is not None else self.cpu_activity.get()
        self.activities[index].set(target)

    def unpaint(self, index: int) -> None:
        """Return an LED's activity to idle."""
        self.activities[index].set(self.idle_label)

    def is_on(self, index: int) -> bool:
        return self.bank.led(index).is_on
