"""Instrumented device drivers.

Each driver does the two things the paper asks of device drivers:

1. expose the hardware's power states through the PowerState interface
   (including *shadowed* states the CPU does not control directly, like
   the flash ready/busy handshake);
2. transfer activity labels between the CPU and the device it manages,
   storing the label across split-phase operations so completion
   interrupts can bind their proxy activity to the right owner.
"""

from repro.tos.drivers.leds import LedsDriver
from repro.tos.drivers.radio import RadioDriver
from repro.tos.drivers.flash import FlashDriver
from repro.tos.drivers.sensor import SensorDriver

__all__ = ["LedsDriver", "RadioDriver", "FlashDriver", "SensorDriver"]
