"""The SHT11 sensor driver (paper Table 5: 3 files, 10 lines changed).

Split-phase reads: the requesting activity is stored at command time, the
sensor's activity device is painted with it for the conversion, and the
data-ready interrupt binds its proxy back to the stored activity before
posting the readDone task — the standard Quanto driver pattern.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activity import ProxyActivitySet, SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.core.powerstate import PowerStateVar
from repro.hw.mcu import Mcu
from repro.hw.sensor import Sht11Sensor
from repro.tos.arbiter import Arbiter
from repro.tos.interrupts import InterruptController
from repro.tos.scheduler import Scheduler

PS_IDLE = 0
PS_SAMPLE = 1

SENSOR_STATE_NAMES = {PS_IDLE: "IDLE", PS_SAMPLE: "SAMPLE"}

COMMAND_CYCLES = 30
READY_CYCLES = 15


class SensorDriver:
    """Instrumented humidity/temperature reads."""

    def __init__(
        self,
        mcu: Mcu,
        scheduler: Scheduler,
        interrupts: InterruptController,
        arbiter: Arbiter,
        sensor: Sht11Sensor,
        powerstate: PowerStateVar,
        sensor_activity: SingleActivityDevice,
        cpu_activity: SingleActivityDevice,
        proxies: ProxyActivitySet,
        idle_label: ActivityLabel,
    ) -> None:
        self.mcu = mcu
        self.scheduler = scheduler
        self.arbiter = arbiter
        self.sensor = sensor
        self.powerstate = powerstate
        self.sensor_activity = sensor_activity
        self.cpu_activity = cpu_activity
        self.idle_label = idle_label
        self._op_activity: Optional[ActivityLabel] = None
        self._op_done: Optional[Callable[[float], None]] = None
        self._result: Optional[float] = None
        self.reads = 0
        self._ready_irq = interrupts.wire(
            "int_SENSOR", self._data_ready, body_cycles=READY_CYCLES)

    def reset(self) -> None:
        """Warm-start reset: no read in flight, tallies zero (wiring
        survives)."""
        self._op_activity = None
        self._op_done = None
        self._result = None
        self.reads = 0
        self.arbiter.reset()

    def read_humidity(self, on_done: Callable[[float], None]) -> None:
        """Start a humidity conversion; ``on_done(percent)`` in task
        context under the requester's activity."""
        self._read(self.sensor.measure_humidity, on_done)

    def read_temperature(self, on_done: Callable[[float], None]) -> None:
        """Start a temperature conversion; ``on_done(celsius)``."""
        self._read(self.sensor.measure_temperature, on_done)

    def _read(self, hw_measure, on_done: Callable[[float], None]) -> None:
        activity = self.cpu_activity.get()

        def granted() -> None:
            self.mcu.consume(COMMAND_CYCLES)
            self._op_activity = activity
            self._op_done = on_done
            self.reads += 1
            self.sensor_activity.set(activity)
            self.powerstate.set(PS_SAMPLE)

            def hw_done(value: float) -> None:
                self._result = value
                self._ready_irq()

            hw_measure(hw_done)

        self.arbiter.request("sht11", granted)

    def _data_ready(self) -> None:
        """Data-ready interrupt: bind the proxy to the stored activity and
        post the readDone task."""
        if self._op_activity is not None:
            self.cpu_activity.bind(self._op_activity)
        self.powerstate.set(PS_IDLE)
        self.sensor_activity.set(self.idle_label)
        callback = self._op_done
        value = self._result
        activity = self._op_activity
        self._op_done = None
        self._op_activity = None
        self._result = None
        client = self.arbiter.owner
        if callback is None:
            return

        def completion() -> None:
            if client is not None:
                self.arbiter.release(client)
            callback(value if value is not None else 0.0)

        self.scheduler.post_function(
            completion, cycles=10, label="sensor-done", activity=activity,
        )
