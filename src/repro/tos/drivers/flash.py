"""The external-flash driver: the paper's shadowed-power-state example.

Flash power states change outside direct CPU control (Section 2.4's
walk-through): the chip goes busy when an operation starts and signals
ready by a handshake line.  The driver *shadows* those transitions into
the power-state variable from the ready-line events, and stores the
requesting activity so the completion interrupt can bind its proxy to it.

Access is serialized through an arbiter (the shared bus), which also
transfers activity labels to the flash automatically on grant.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activity import ProxyActivitySet, SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.core.powerstate import PowerStateVar
from repro.hw.flash import ExternalFlash
from repro.hw.mcu import Mcu
from repro.tos.arbiter import Arbiter
from repro.tos.interrupts import InterruptController
from repro.tos.scheduler import Scheduler

# Power-state variable values (match hw state order).
PS_POWER_DOWN = 0
PS_STANDBY = 1
PS_READ = 2
PS_WRITE = 3
PS_ERASE = 4

FLASH_STATE_NAMES = {
    PS_POWER_DOWN: "POWER_DOWN", PS_STANDBY: "STANDBY",
    PS_READ: "READ", PS_WRITE: "WRITE", PS_ERASE: "ERASE",
}

_STATE_TO_PS = {
    "POWER_DOWN": PS_POWER_DOWN,
    "STANDBY": PS_STANDBY,
    "READ": PS_READ,
    "WRITE": PS_WRITE,
    "ERASE": PS_ERASE,
}

COMMAND_CYCLES = 35
READY_CYCLES = 18


class FlashDriver:
    """Split-phase read/write/erase with shadowed power states."""

    def __init__(
        self,
        mcu: Mcu,
        scheduler: Scheduler,
        interrupts: InterruptController,
        arbiter: Arbiter,
        flash: ExternalFlash,
        powerstate: PowerStateVar,
        flash_activity: SingleActivityDevice,
        cpu_activity: SingleActivityDevice,
        proxies: ProxyActivitySet,
        idle_label: ActivityLabel,
    ) -> None:
        self.mcu = mcu
        self.scheduler = scheduler
        self.arbiter = arbiter
        self.flash = flash
        self.powerstate = powerstate
        self.flash_activity = flash_activity
        self.cpu_activity = cpu_activity
        self.idle_label = idle_label
        self._op_activity: Optional[ActivityLabel] = None
        self._op_done: Optional[Callable] = None
        self._after_wake: Optional[Callable[[], None]] = None
        self.operations = 0
        self._last_hw_state = flash.state
        self._ready_irq = interrupts.wire(
            "int_FLASH", self._ready, body_cycles=READY_CYCLES)
        # Shadow the handshake: every hardware transition updates the
        # power-state variable from the (interrupt-context) observer.
        flash.set_ready_listener(self._shadow_state)
        self._pending_result = None

    def reset(self) -> None:
        """Warm-start reset: no operation in flight, the shadowed state
        back to the (reset) chip's power-down state, tallies zero.  The
        interrupt wiring and ready-listener hook survive."""
        self._op_activity = None
        self._op_done = None
        self._after_wake = None
        self.operations = 0
        self._last_hw_state = self.flash.state
        self._pending_result = None
        self.arbiter.reset()

    def _shadow_state(self, state: str, busy: bool) -> None:
        """Hardware moved; remember it so the next CPU-context touchpoint
        records the shadowed state.  Ready-line edges (busy falling while
        an operation is in flight) raise the interrupt through which the
        state becomes visible to Quanto."""
        self._last_hw_state = state
        if not busy and (self._op_done is not None
                         or self._after_wake is not None):
            self._ready_irq()

    # -- operations ----------------------------------------------------------

    def write(self, page: int, data: bytes,
              on_done: Callable[[], None]) -> None:
        """Arbitrate, wake if needed, program a page, signal completion."""
        activity = self.cpu_activity.get()

        def granted() -> None:
            self._begin_op(activity, on_done)
            self._start_or_wake(lambda: self._do_write(page, data))

        self.arbiter.request(f"flash-write-{page}", granted)

    def _start_or_wake(self, operation: Callable[[], None]) -> None:
        """Run the operation now, or after the wake-up ready interrupt if
        the chip is in deep power-down."""
        if self.flash.state == "POWER_DOWN":
            self._after_wake = operation
            self.flash.wake(lambda: None)  # completion observed via IRQ
        else:
            operation()

    def _do_write(self, page: int, data: bytes) -> None:
        self.mcu.consume(COMMAND_CYCLES)
        self.powerstate.set(PS_WRITE)
        self.flash.program_page(page, data, lambda: None)

    def read(self, page: int, nbytes: int,
             on_done: Callable[[bytes], None]) -> None:
        """Arbitrate and read ``nbytes`` from a page."""
        activity = self.cpu_activity.get()

        def granted() -> None:
            self._begin_op(activity, on_done)
            self._start_or_wake(lambda: self._do_read(page, nbytes))

        self.arbiter.request(f"flash-read-{page}", granted)

    def _do_read(self, page: int, nbytes: int) -> None:
        self.mcu.consume(COMMAND_CYCLES)
        self.powerstate.set(PS_READ)

        def hw_done(data: bytes) -> None:
            self._pending_result = data

        self.flash.read_page(page, nbytes, hw_done)

    def erase(self, page: int, on_done: Callable[[], None]) -> None:
        activity = self.cpu_activity.get()

        def granted() -> None:
            self._begin_op(activity, on_done)
            self._start_or_wake(lambda: self._do_erase(page))

        self.arbiter.request(f"flash-erase-{page}", granted)

    def _do_erase(self, page: int) -> None:
        self.mcu.consume(COMMAND_CYCLES)
        self.powerstate.set(PS_ERASE)
        self.flash.erase_page(page, lambda: None)

    # -- completion -----------------------------------------------------------

    def _begin_op(self, activity: ActivityLabel, on_done: Callable) -> None:
        self._op_activity = activity
        self._op_done = on_done
        self.operations += 1
        self.flash_activity.set(activity)

    def _ready(self) -> None:
        """The ready-line interrupt: bind the proxy to the stored activity,
        record the shadowed state, and either start the deferred operation
        (after a wake) or complete the in-flight one."""
        if self._op_activity is not None:
            self.cpu_activity.bind(self._op_activity)
        self.powerstate.set(_STATE_TO_PS.get(self._last_hw_state, PS_STANDBY))
        if self._after_wake is not None:
            operation = self._after_wake
            self._after_wake = None
            operation()
            return
        callback = self._op_done
        result = self._pending_result
        if callback is None:
            return
        self._op_done = None
        self._pending_result = None
        self.flash_activity.set(self.idle_label)
        activity = self._op_activity
        self._op_activity = None
        client = self.arbiter.owner

        def completion() -> None:
            if client is not None:
                self.arbiter.release(client)
            if result is not None:
                callback(result)
            else:
                callback()

        self.scheduler.post_function(
            completion, cycles=12, label="flash-done", activity=activity,
        )
