"""The CC2420 radio driver: the paper's most involved instrumentation
target (Table 5: 11 files, 105 lines).

Responsibilities and their Quanto hooks:

* **Power control** — vreg / oscillator / RX / TX transitions exposed
  through one multi-valued power-state variable.
* **TX path** — ``send`` paints the radio with the CPU's current activity
  (paper Figure 8's ``loadTXFIFO``), loads the TXFIFO over SPI (interrupt-
  per-pair or DMA, the Figure 16 comparison), backs off, optionally checks
  CCA, strobes TX.  The driver stores the sending activity so the SFD and
  TX-done interrupts can bind their proxies to it — the paper's "device
  driver will have stored locally ... the activity to which this
  processing should be assigned".
* **RX path** — SFD capture (``int_TIMERB1``), then the FIFO drain under
  the ``pxy_RX`` proxy with per-pair ``int_UART0RX`` interrupts, then a
  decode task that hands the frame to the AM layer, which binds the proxy
  to the label in the packet.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activity import ProxyActivitySet, SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.core.powerstate import PowerStateVar
from repro.hw.mcu import Mcu
from repro.hw.radio import Frame, Radio
from repro.hw.spi import SpiBus
from repro.tos.am import encode_frame
from repro.tos.interrupts import InterruptController
from repro.tos.scheduler import Scheduler
from repro.tos.vtimer import VirtualTimerSystem
from repro.units import ms, us

# Power-state variable values for the radio sink.
PS_OFF = 0
PS_VREG = 1
PS_IDLE = 2
PS_RX = 3
PS_TX = 4

RADIO_STATE_NAMES = {
    PS_OFF: "OFF", PS_VREG: "VREG", PS_IDLE: "IDLE",
    PS_RX: "RX", PS_TX: "TX",
}

#: Initial CSMA backoff window (uniform), congestion backoff window.
INITIAL_BACKOFF_NS = (ms(0.6), ms(3.2))
CONGESTION_BACKOFF_NS = (ms(0.6), ms(2.4))
MAX_BACKOFFS = 8

#: Handler costs (cycles).
UART_PAIR_CYCLES = 28
SFD_CYCLES = 16
TXDONE_CYCLES = 24
FIFOP_CYCLES = 40
DECODE_TASK_CYCLES = 80
DMA_SETUP_CYCLES = 34


class SendError(Exception):
    """Raised when a send is attempted while one is already in flight."""


class RadioDriver:
    """The instrumented radio stack below the AM layer."""

    def __init__(
        self,
        mcu: Mcu,
        scheduler: Scheduler,
        interrupts: InterruptController,
        vtimers: VirtualTimerSystem,
        spi: SpiBus,
        radio: Radio,
        powerstate: PowerStateVar,
        radio_activity: SingleActivityDevice,
        cpu_activity: SingleActivityDevice,
        proxies: ProxyActivitySet,
        idle_label: ActivityLabel,
        rng,
        spi_mode: str = "irq",
    ) -> None:
        self.mcu = mcu
        self.scheduler = scheduler
        self.vtimers = vtimers
        self.spi = spi
        self.radio = radio
        self.powerstate = powerstate
        self.radio_activity = radio_activity
        self.cpu_activity = cpu_activity
        self.proxies = proxies
        self.idle_label = idle_label
        self.rng = rng
        self.spi_mode = spi_mode
        self._receive_fn: Optional[Callable[[Frame], None]] = None
        # TX state.
        self._tx_frame: Optional[Frame] = None
        self._tx_done_cb: Optional[Callable[[Frame], None]] = None
        self._tx_activity: Optional[ActivityLabel] = None
        self._tx_remaining = 0
        self._tx_backoffs = 0
        self.sends_completed = 0
        self.backoff_count = 0
        # RX state.
        self._rx_frame: Optional[Frame] = None
        self._rx_remaining = 0
        self._rx_proxy = proxies.label("pxy_RX")
        # Start-up state.
        self._start_cb: Optional[Callable[[], None]] = None
        self._start_activity: Optional[ActivityLabel] = None
        # Interrupt wiring.
        self._vreg_done_irq = interrupts.wire(
            "int_RADIO", self._vreg_done, body_cycles=12)
        self._osc_done_irq = interrupts.wire(
            "int_RADIO", self._osc_done, body_cycles=12)
        self._tx_uart_irq = interrupts.wire(
            "int_UART0RX", self._tx_pair_done, body_cycles=UART_PAIR_CYCLES)
        self._tx_dma_irq = interrupts.wire(
            "int_DACDMA", self._tx_load_done, body_cycles=DMA_SETUP_CYCLES)
        self._sfd_irq = interrupts.wire(
            "int_TIMERB1", self._sfd_capture, body_cycles=SFD_CYCLES)
        self._txdone_irq = interrupts.wire(
            "int_RADIO", self._tx_complete, body_cycles=TXDONE_CYCLES)
        self._fifop_irq = interrupts.wire(
            "pxy_RX", self._rx_frame_ready, body_cycles=FIFOP_CYCLES)
        self._rx_uart_irq = interrupts.wire(
            "int_UART0RX", self._rx_pair_done, body_cycles=UART_PAIR_CYCLES)
        radio.on_sfd = self._sfd_irq
        radio.on_tx_sfd = self._sfd_irq
        radio.on_tx_done = self._txdone_irq
        radio.on_rx_done = self._fifop_irq

    # -- control ---------------------------------------------------------

    def set_receive(self, fn: Callable[[Frame], None]) -> None:
        """Install the upper layer's (AM's) frame handler."""
        self._receive_fn = fn

    def start(self, on_started: Callable[[], None]) -> None:
        """Power the radio up to IDLE (vreg, then oscillator)."""
        self._start_cb = on_started
        self._start_activity = self.cpu_activity.get()
        self.powerstate.set(PS_VREG)
        self.radio.vreg_on(self._vreg_done_irq)

    def _vreg_done(self) -> None:
        if self._start_activity is not None:
            self.cpu_activity.bind(self._start_activity)
        self.radio.osc_on(self._osc_done_irq)

    def _osc_done(self) -> None:
        if self._start_activity is not None:
            self.cpu_activity.bind(self._start_activity)
        self.powerstate.set(PS_IDLE)
        callback = self._start_cb
        self._start_cb = None
        if callback is not None:
            self.scheduler.post_function(
                callback, cycles=8, label="radio-started",
                activity=self._start_activity,
            )

    def rx_enable(self) -> None:
        """Strobe RX on (the driver signals the state at command time; the
        192 us calibration draw is close enough to the listen draw that
        this is the fidelity the real instrumentation achieves)."""
        self.powerstate.set(PS_RX)
        self.radio.rx_on()

    def rx_disable(self) -> None:
        self.powerstate.set(PS_IDLE)
        self.radio.rf_off()

    def stop(self) -> None:
        """Kill the regulator from any state."""
        self.powerstate.set(PS_OFF)
        self.radio.vreg_off()

    def cca_clear(self) -> bool:
        self.mcu.consume(8)
        return self.radio.cca_clear()

    def set_tx_power(self, dbm: int) -> None:
        """Program the PA level (one of the Table 1 TX settings)."""
        from repro.hw.radio import TX_POWER_STATES

        if dbm not in TX_POWER_STATES:
            raise ValueError(f"unsupported TX power {dbm} dBm")
        self.mcu.consume(10)
        self.radio.tx_power_dbm = dbm

    @property
    def is_listening(self) -> bool:
        return self.radio.state == "RX"

    # -- transmit path ----------------------------------------------------

    def send(self, frame: Frame, on_done: Optional[Callable[[Frame], None]],
             use_cca: bool = True) -> None:
        """Load and transmit one frame.  Called in CPU context; the
        caller's activity colors the whole operation."""
        if self._tx_frame is not None:
            raise SendError("send already in progress")
        self._tx_frame = frame
        self._tx_done_cb = on_done
        self._tx_activity = self.cpu_activity.get()
        self._tx_use_cca = use_cca
        self._tx_backoffs = 0
        # Figure 8: paint the radio with the CPU's current activity before
        # loading the TXFIFO.
        self.radio_activity.set(self._tx_activity)
        nbytes = len(encode_frame(frame)) + 1  # +1 for the length byte
        if self.spi_mode == "dma":
            self.mcu.consume(DMA_SETUP_CYCLES)
            self.spi.dma_transfer(nbytes, self._tx_dma_irq)
        else:
            self._tx_remaining = nbytes
            self.spi.shift_pair(self._tx_remaining, self._tx_uart_irq)

    def _tx_pair_done(self) -> None:
        """One SPI pair landed (interrupt mode): bind to the sender's
        activity and feed the next pair."""
        if self._tx_activity is not None:
            self.cpu_activity.bind(self._tx_activity)
        self._tx_remaining -= 2
        if self._tx_remaining > 0:
            self.spi.shift_pair(self._tx_remaining, self._tx_uart_irq)
        else:
            self.spi.end_transfer()
            self._tx_load_done()

    def _tx_load_done(self) -> None:
        """TXFIFO loaded (last pair or the DMA-done interrupt)."""
        if self._tx_activity is not None:
            self.cpu_activity.bind(self._tx_activity)
        assert self._tx_frame is not None
        self.radio.load_tx_fifo(self._tx_frame)
        self._schedule_backoff(INITIAL_BACKOFF_NS)

    def _schedule_backoff(self, window: tuple[int, int]) -> None:
        self.backoff_count += 1
        delay = self.rng.randint(window[0], window[1])
        self.vtimers.start_oneshot(
            self._backoff_fired, delay, name="csma-backoff",
            activity=self._tx_activity,
        )

    def _backoff_fired(self) -> None:
        """Backoff expired (task context, under the sender's activity):
        check the channel and strobe TX."""
        self.mcu.consume(12)
        if self._tx_use_cca and self.radio.state == "RX":
            if not self.radio.cca_clear():
                self._tx_backoffs += 1
                if self._tx_backoffs >= MAX_BACKOFFS:
                    self._finish_send()  # give up; counted as completed
                    return
                self._schedule_backoff(CONGESTION_BACKOFF_NS)
                return
        self.powerstate.set(PS_TX)
        self.radio.strobe_tx()

    def _sfd_capture(self) -> None:
        """SFD edge (TX or RX): timestamp capture on TimerB1."""
        if self._tx_frame is not None and self._tx_activity is not None:
            self.cpu_activity.bind(self._tx_activity)

    def _tx_complete(self) -> None:
        """TX done: hardware fell back to RX."""
        if self._tx_activity is not None:
            self.cpu_activity.bind(self._tx_activity)
        self.powerstate.set(PS_RX)
        self._finish_send()

    def _finish_send(self) -> None:
        frame, callback, activity = (
            self._tx_frame, self._tx_done_cb, self._tx_activity
        )
        self._tx_frame = None
        self._tx_done_cb = None
        self.sends_completed += 1
        self.radio_activity.set(self.idle_label)
        if callback is not None and frame is not None:
            self.scheduler.post_function(
                lambda: callback(frame), cycles=10,
                label="sendDone", activity=activity,
            )

    # -- receive path ----------------------------------------------------

    def _rx_frame_ready(self) -> None:
        """FIFOP: a complete frame sits in the RXFIFO.  Runs under the
        pxy_RX proxy; start draining the FIFO over SPI."""
        if self._rx_frame is not None or self.spi.busy:
            # A drain or a TX load is in flight; retry shortly.
            self.vtimers.start_oneshot(
                self._retry_rx, us(400), name="rx-retry",
                activity=self._rx_proxy,
            )
            return
        if not self.radio.rx_fifo:
            return
        self._rx_frame = self.radio.read_rx_fifo()
        self._rx_remaining = len(encode_frame(self._rx_frame)) + 1
        self.spi.shift_pair(self._rx_remaining, self._rx_uart_irq)

    def _retry_rx(self) -> None:
        self.mcu.consume(8)
        if self.radio.rx_fifo and self._rx_frame is None and not self.spi.busy:
            self._rx_frame_ready()

    def _rx_pair_done(self) -> None:
        """One SPI pair drained: charge to the reception proxy."""
        self.cpu_activity.bind(self._rx_proxy)
        self._rx_remaining -= 2
        if self._rx_remaining > 0:
            self.spi.shift_pair(self._rx_remaining, self._rx_uart_irq)
            return
        self.spi.end_transfer()
        frame = self._rx_frame
        self._rx_frame = None
        # Decode in task context, still under the proxy; the AM layer will
        # bind the proxy to the label carried in the packet.
        self.scheduler.post_function(
            lambda: self._decode(frame), cycles=DECODE_TASK_CYCLES,
            label="radio-decode", activity=self._rx_proxy,
        )

    def _decode(self, frame: Optional[Frame]) -> None:
        if frame is None:
            return
        # Wire-format round trip: what the stack hands up is what the
        # bytes say, hidden field included.
        decoded = frame
        raw = encode_frame(frame)
        from repro.tos.am import decode_frame  # local import: layer above
        decoded = decode_frame(raw)
        if self._receive_fn is not None:
            self._receive_fn(decoded)
