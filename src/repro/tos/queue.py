"""Instrumented forwarding queues (paper §3.3).

"There are other less general structures that effectively defer
processing of an activity, such as forwarding queues in protocols, and we
have to instrument these to also store and restore the CPU activity
associated with the queue entry."

A :class:`ForwardingQueue` stores the CPU's current activity alongside
each enqueued item and restores it when the item is processed, so a
multihop protocol that queues packets from several origins charges each
forwarding operation to the right remote activity even when the radio is
busy and service is deferred arbitrarily.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Optional, TypeVar

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.errors import SimulationError

T = TypeVar("T")

#: Cycles for queue bookkeeping per operation.
QUEUE_CYCLES = 7


class ForwardingQueue(Generic[T]):
    """A bounded FIFO that preserves activity labels across deferral."""

    def __init__(
        self,
        name: str,
        cpu_activity: SingleActivityDevice,
        mcu,
        capacity: int = 8,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("queue capacity must be positive")
        self.name = name
        self.cpu_activity = cpu_activity
        self.mcu = mcu
        self.capacity = capacity
        self._items: deque[tuple[T, ActivityLabel]] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def enqueue(self, item: T) -> bool:
        """Store the item with the CPU's current activity.  Returns False
        (drop-tail) when the queue is full — queue losses are a real
        sensornet failure mode worth modelling."""
        if self.mcu._in_job:
            self.mcu.consume(QUEUE_CYCLES)
        if self.full:
            self.dropped += 1
            return False
        self._items.append((item, self.cpu_activity.get()))
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[T]:
        """Pop the oldest item, *restoring its saved activity* onto the
        CPU — the instrumentation point the paper calls out."""
        if not self._items:
            return None
        if self.mcu._in_job:
            self.mcu.consume(QUEUE_CYCLES)
        item, activity = self._items.popleft()
        self.cpu_activity.set(activity)
        self.dequeued += 1
        return item

    def peek_activity(self) -> Optional[ActivityLabel]:
        """The saved activity of the head item (for schedulers that want
        to make activity-aware service decisions)."""
        if not self._items:
            return None
        return self._items[0][1]
