"""The interrupt layer: static proxy activities per vector (paper §3.3).

TinyOS on the MSP430 has no reentrant interrupts, so Quanto statically
assigns each interrupt routine a fixed proxy activity.  ``wire`` produces
the hardware-side trigger for a vector: when the hardware fires it, an
interrupt-context job is queued on the MCU whose wrapper

1. saves the CPU's current activity,
2. paints the CPU with the vector's proxy activity,
3. runs the driver-supplied handler body (which may ``bind`` the proxy to
   a real activity once it figures out what the interrupt was about),
4. restores the saved activity (returning to the interrupted context) and
   runs the sleep epilogue.

If the body bound the proxy, the restore still happens — the bind resolved
*past* proxy usage; the interrupted context continues unaffected.
"""

from __future__ import annotations

from typing import Callable

from repro.core.activity import ProxyActivitySet, SingleActivityDevice
from repro.hw.mcu import Mcu
from repro.tos.context import CpuContext


class InterruptController:
    """Wires hardware interrupt lines to instrumented handler jobs."""

    def __init__(
        self,
        mcu: Mcu,
        context: CpuContext,
        cpu_activity: SingleActivityDevice,
        proxies: ProxyActivitySet,
    ) -> None:
        self.mcu = mcu
        self.context = context
        self.cpu_activity = cpu_activity
        self.proxies = proxies
        self.dispatch_counts: dict[str, int] = {}

    def wire(
        self,
        vector: str,
        handler: Callable[[], None],
        body_cycles: int = 20,
    ) -> Callable[[], None]:
        """Return the trigger for ``vector``; hardware calls it to raise
        the interrupt.  ``body_cycles`` is the handler's base cost (the
        handler may consume more as it works)."""
        proxy_label = self.proxies.label(vector)

        def body() -> None:
            self.dispatch_counts[vector] = self.dispatch_counts.get(vector, 0) + 1
            saved = self.cpu_activity.get()
            self.cpu_activity.set(proxy_label)
            self.mcu.consume(body_cycles)
            try:
                handler()
            finally:
                self.cpu_activity.set(saved)

        run_wrapped = self.context.run_wrapped
        post_irq = self.mcu.post_irq

        def trigger() -> None:
            # No per-trigger closure: the wrapper and body ride as args.
            post_irq(run_wrapped, label=vector, args=(body,))

        return trigger

    def count(self, vector: str) -> int:
        """How many times a vector has dispatched (Figure 15's evidence)."""
        return self.dispatch_counts.get(vector, 0)

    def reset(self) -> None:
        """Warm-start reset: zero the dispatch tallies (wired vectors
        survive — wiring is construction state)."""
        self.dispatch_counts.clear()
