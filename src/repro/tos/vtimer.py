"""Virtual timers multiplexed on one hardware compare unit (TimerB0).

TinyOS applications use many logical timers; the timer subsystem keeps
them in a deadline list and programs the single compare register for the
earliest one.  Quanto's instrumentation (paper §3.3, Table 5 "Timers"):

* each started timer **saves the CPU activity**; when it fires, its
  callback task **restores** that activity — so deferral through time
  keeps labels intact;
* the subsystem's own bookkeeping (scanning deadlines, re-arming the
  compare) runs under a dedicated **VTimer activity**, which is what shows
  up as ``1:VTimer`` in every figure of the paper;
* the hardware timer is a **multi-activity device**: it is concurrently
  "working for" every scheduled timer's activity, so started timers add
  their label to it and stopped/expired ones remove it (paper Figure 6's
  canonical example).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activity import MultiActivityDevice, SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.errors import SimulationError
from repro.hw.hwtimer import CompareUnit
from repro.hw.mcu import Mcu
from repro.tos.interrupts import InterruptController
from repro.tos.scheduler import Scheduler

#: Bookkeeping cycles per dispatch: deadline scan, 32-bit deadline
#: arithmetic on a 16-bit MCU, compare re-arm.  Calibrated so Blink's
#: VTimer CPU share lands near the paper's Table 3(a).
DISPATCH_CYCLES = 560
#: Cycles per expired timer processed in one dispatch.
PER_TIMER_CYCLES = 90


class VirtualTimer:
    """One logical timer."""

    __slots__ = ("callback", "period_ns", "deadline_ns", "saved_activity",
                 "running", "name", "fire_count")

    def __init__(self, callback: Callable[[], None], name: str):
        self.callback = callback
        self.period_ns = 0
        self.deadline_ns = 0
        self.saved_activity: Optional[ActivityLabel] = None
        self.running = False
        self.name = name
        self.fire_count = 0


class VirtualTimerSystem:
    """The timer multiplexer."""

    def __init__(
        self,
        mcu: Mcu,
        scheduler: Scheduler,
        interrupts: InterruptController,
        compare: CompareUnit,
        cpu_activity: SingleActivityDevice,
        timer_device: MultiActivityDevice,
        vtimer_activity: ActivityLabel,
    ) -> None:
        self.mcu = mcu
        self.scheduler = scheduler
        self.compare = compare
        self.cpu_activity = cpu_activity
        self.timer_device = timer_device
        self.vtimer_activity = vtimer_activity
        self._timers: list[VirtualTimer] = []
        self.dispatches = 0
        trigger = interrupts.wire("int_TIMERB0", self._dispatch,
                                  body_cycles=70)
        compare.set_handler(trigger)

    # -- starting and stopping ------------------------------------------------

    def start_periodic(
        self,
        callback: Callable[[], None],
        period_ns: int,
        name: str = "timer",
        activity: Optional[ActivityLabel] = None,
    ) -> VirtualTimer:
        """Start a periodic timer.  The current CPU activity (or the
        explicit ``activity``) is saved and restored around every firing."""
        return self._start(callback, period_ns, period_ns, name, activity)

    def start_oneshot(
        self,
        callback: Callable[[], None],
        delay_ns: int,
        name: str = "timer",
        activity: Optional[ActivityLabel] = None,
    ) -> VirtualTimer:
        """Start a one-shot timer."""
        return self._start(callback, delay_ns, 0, name, activity)

    def _start(
        self,
        callback: Callable[[], None],
        delay_ns: int,
        period_ns: int,
        name: str,
        activity: Optional[ActivityLabel],
    ) -> VirtualTimer:
        if delay_ns <= 0:
            raise SimulationError(f"timer delay must be positive: {delay_ns}")
        timer = VirtualTimer(callback, name)
        timer.period_ns = period_ns
        timer.deadline_ns = self.mcu.sim.now + delay_ns
        timer.saved_activity = (
            activity if activity is not None else self.cpu_activity.get()
        )
        timer.running = True
        self._timers.append(timer)
        # The hardware timer now also works on behalf of this activity.
        self.timer_device.add(timer.saved_activity)
        self._rearm()
        return timer

    def stop(self, timer: VirtualTimer) -> None:
        if not timer.running:
            return
        timer.running = False
        if timer in self._timers:
            self._timers.remove(timer)
        if timer.saved_activity is not None:
            self.timer_device.remove(timer.saved_activity)
        self._rearm()

    # -- dispatch ------------------------------------------------------------

    def _rearm(self) -> None:
        # Single pass over the (small) timer list: find the earliest
        # running deadline without materializing the pending list.  One
        # compare arm per wakeup keeps the engine's event count
        # O(wakeups), however fine the underlying timer granularity —
        # tests/test_vtimer.py pins that property on a Blink run.
        next_deadline = None
        for timer in self._timers:
            if timer.running and (next_deadline is None
                                  or timer.deadline_ns < next_deadline):
                next_deadline = timer.deadline_ns
        if next_deadline is None:
            self.compare.disarm()
            return
        now = self.mcu.sim.now
        self.compare.arm(next_deadline if next_deadline > now else now)

    def _dispatch(self) -> None:
        """The TimerB0 handler body (already under the int_TIMERB0 proxy):
        switch to the VTimer activity, fire expired timers as tasks, and
        re-arm the compare unit."""
        self.dispatches += 1
        self.cpu_activity.set(self.vtimer_activity)
        self.mcu.consume(DISPATCH_CYCLES)
        now = self.mcu.sim.now
        expired = [t for t in self._timers if t.running and t.deadline_ns <= now]
        for timer in expired:
            self.mcu.consume(PER_TIMER_CYCLES)
            timer.fire_count += 1
            if timer.period_ns > 0:
                timer.deadline_ns += timer.period_ns
            else:
                timer.running = False
                self._timers.remove(timer)
                if timer.saved_activity is not None:
                    self.timer_device.remove(timer.saved_activity)
            # The callback runs as a task that restores the timer's saved
            # activity — deferral keeps the label.
            self.scheduler.post_function(
                timer.callback,
                cycles=0,
                label=f"vtimer:{timer.name}",
                activity=timer.saved_activity,
            )
        self._rearm()

    def active_timers(self) -> int:
        return sum(1 for t in self._timers if t.running)

    def reset(self) -> None:
        """Warm-start reset: drop every logical timer and the dispatch
        tally.  The compare unit and its interrupt wiring survive (the
        unit itself is reset with its timer block)."""
        self._timers.clear()
        self.dispatches = 0
