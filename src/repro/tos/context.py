"""CPU job instrumentation shared by the scheduler and interrupt layer.

Every job that runs on the MCU — task or interrupt handler — is wrapped so
that:

* the CPU power-state variable is set to ACTIVE when the job begins (the
  first job after a sleep records the wake transition; subsequent sets are
  idempotent and free);
* if the job leaves the run queues empty, the CPU activity is reset to the
  idle activity and the power-state variable records the sleep transition
  (this is the McuSleep path in real TinyOS — code that runs on the CPU on
  the way into sleep).
"""

from __future__ import annotations

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.core.powerstate import PowerStateVar
from repro.errors import HardwareError
from repro.hw.mcu import Mcu

#: CPU power-state variable values.
CPU_PS_SLEEP = 0
CPU_PS_ACTIVE = 1

#: Cycles for the wrapper itself (interrupt entry/exit, context push/pop).
WRAPPER_CYCLES = 12


class CpuContext:
    """Binds the MCU to its Quanto CPU instrumentation."""

    def __init__(
        self,
        mcu: Mcu,
        cpu_activity: SingleActivityDevice,
        cpu_powerstate: PowerStateVar,
        idle_label: ActivityLabel,
    ) -> None:
        self.mcu = mcu
        self.cpu_activity = cpu_activity
        self.cpu_powerstate = cpu_powerstate
        self.idle_label = idle_label

    def prologue(self) -> None:
        """Run at the top of every job: record the wake if there was one."""
        self.mcu.consume(WRAPPER_CYCLES)
        self.cpu_powerstate.set(CPU_PS_ACTIVE)

    def epilogue(self) -> None:
        """Run at the end of every job: if nothing else is queued, the CPU
        is about to sleep — reset the activity and record the transition."""
        if self.mcu.jobs_pending() == 0:
            self.cpu_activity.set(self.idle_label)
            self.cpu_powerstate.set(CPU_PS_SLEEP)

    def run_wrapped(self, body, *args) -> None:
        """Execute ``body(*args)`` between prologue and epilogue
        (exception-safe: a crashing job still records the sleep
        transition).  Extra arguments let posters pass the target
        directly instead of wrapping it in a closure per post.

        The prologue/epilogue bodies are inlined here — this wrapper
        runs once per CPU job, and two method calls per job are real
        overhead at fleet scale; the standalone methods above remain the
        spec (and the entry points instrumentation tests drive).
        """
        mcu = self.mcu
        if not mcu._in_job:  # pragma: no cover - wrapper always in-job
            raise HardwareError("Mcu.consume() called outside a job")
        mcu._pending_cycles += WRAPPER_CYCLES
        self.cpu_powerstate.set(CPU_PS_ACTIVE)
        try:
            body(*args)
        finally:
            # jobs_pending() == 0: only the queues — the wrapper itself
            # still runs inside its job.
            if not (mcu._irq_jobs or mcu._task_jobs):
                self.cpu_activity.set(self.idle_label)
                self.cpu_powerstate.set(CPU_PS_SLEEP)
