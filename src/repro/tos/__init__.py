"""A TinyOS-like operating system layer, instrumented for Quanto.

The abstractions the paper modified (its Table 5) all exist here with the
same semantics and the same instrumentation points:

* **Tasks** (:mod:`repro.tos.scheduler`) — run-to-completion, FIFO; the
  scheduler saves the CPU activity at post time and restores it at run.
* **Timers** (:mod:`repro.tos.vtimer`) — virtual timers multiplexed on one
  hardware compare unit; each timer saves and restores its activity.
* **Arbiters** (:mod:`repro.tos.arbiter`) — shared-resource locks that
  transfer activity labels to the granted resource automatically.
* **Interrupts** (:mod:`repro.tos.interrupts`) — every vector has a static
  proxy activity; handlers run under it until bound to a real activity.
* **Active Messages** (:mod:`repro.tos.am`) — the link layer, with the
  hidden 16-bit activity field in every packet.
* **Device drivers** (:mod:`repro.tos.drivers`) — expose hardware power
  states via the PowerState interface and transfer activity labels between
  the CPU and the devices they manage.

:mod:`repro.tos.node` assembles a platform, the Quanto core, and these
services into a bootable node; :mod:`repro.tos.network` wires several
nodes to one channel.
"""

from repro.tos.node import NodeConfig, QuantoNode
from repro.tos.network import Network

__all__ = ["QuantoNode", "NodeConfig", "Network"]
