"""Active Messages: the link layer with Quanto's hidden activity field.

The paper adds a hidden 16-bit field to the TinyOS Active Message
implementation (Table 5 lists it at 8 changed lines):

* on **send**, the field is set to the CPU's then-current activity, so a
  packet is "colored" by the activity that submitted it;
* on **receive**, once the AM layer decodes the packet it reads the field
  and **binds** the reception proxy activity to the label it carries —
  from that moment the receiving node's work is charged to the *remote*
  activity.

This module also owns the wire codec.  Frames are serialized to real
bytes — an 11-byte 802.15.4/AM header, the hidden 2-byte activity field,
the payload, and a 2-byte CRC — so field widths and byte counts (which
drive SPI transfer timing) are honest.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.errors import NetworkError
from repro.hw.radio import Frame

#: Broadcast destination address.
AM_BROADCAST = 0xFFFF

#: Header layout: FCF(2) DSN(1) dest-PAN(2) dst(2) src(2) AM-type(1)
#: length(1) = 11 bytes, then the hidden activity field (2 bytes).
_HEADER = struct.Struct("<HBHHHBB")
_ACTIVITY = struct.Struct("<H")
_CRC = struct.Struct("<H")
_FCF_DATA = 0x8841

#: Decode/dispatch cost charged when the AM layer handles a packet.
DECODE_CYCLES = 60


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to its on-air bytes (header + hidden activity
    field + payload + CRC)."""
    header = _HEADER.pack(
        _FCF_DATA,
        frame.seqno & 0xFF,
        0xFFFF,
        frame.dst & 0xFFFF,
        frame.src & 0xFFFF,
        frame.am_type & 0xFF,
        len(frame.payload) & 0xFF,
    )
    body = header + _ACTIVITY.pack(frame.activity & 0xFFFF) + frame.payload
    crc = _crc16(body)
    return body + _CRC.pack(crc)


def decode_frame(raw: bytes) -> Frame:
    """Parse on-air bytes back into a frame, verifying the CRC."""
    if len(raw) < _HEADER.size + _ACTIVITY.size + _CRC.size:
        raise NetworkError(f"frame too short: {len(raw)} bytes")
    body, crc_bytes = raw[:-2], raw[-2:]
    (crc,) = _CRC.unpack(crc_bytes)
    if crc != _crc16(body):
        raise NetworkError("frame CRC mismatch")
    fcf, dsn, _pan, dst, src, am_type, length = _HEADER.unpack_from(body, 0)
    if fcf != _FCF_DATA:
        raise NetworkError(f"unexpected FCF 0x{fcf:04x}")
    (activity,) = _ACTIVITY.unpack_from(body, _HEADER.size)
    payload = body[_HEADER.size + _ACTIVITY.size:]
    if len(payload) != length:
        raise NetworkError(
            f"length field {length} does not match payload {len(payload)}"
        )
    return Frame(src=src, dst=dst, am_type=am_type, payload=payload,
                 activity=activity, seqno=dsn)


def _crc16(data: bytes) -> int:
    """CRC-16/CCITT as used by 802.15.4 FCS."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
    return crc & 0xFFFF


class ActiveMessageLayer:
    """Send/receive dispatch with activity-label transfer across nodes."""

    def __init__(
        self,
        node_id: int,
        mac,
        cpu_activity: SingleActivityDevice,
        mcu,
    ) -> None:
        self.node_id = node_id
        self.mac = mac
        self.cpu_activity = cpu_activity
        self.mcu = mcu
        self._receivers: dict[int, Callable[[Frame], None]] = {}
        self._default_receiver: Optional[Callable[[Frame], None]] = None
        self._seqno = 0
        self.sent = 0
        self.received = 0
        mac.set_receive(self._on_frame)

    # -- sending --------------------------------------------------------

    def send(
        self,
        dst: int,
        am_type: int,
        payload: bytes,
        on_send_done: Optional[Callable[[Frame], None]] = None,
        activity: Optional[ActivityLabel] = None,
    ) -> Frame:
        """Submit a packet.  The hidden activity field is stamped with the
        CPU's current activity (paper §3.3) unless overridden."""
        label = activity if activity is not None else self.cpu_activity.get()
        self._seqno = (self._seqno + 1) & 0xFF
        frame = Frame(
            src=self.node_id,
            dst=dst,
            am_type=am_type,
            payload=bytes(payload),
            activity=label.encode(),
            seqno=self._seqno,
        )
        self.sent += 1
        self.mac.send(frame, on_send_done)
        return frame

    # -- receiving -------------------------------------------------------

    def register_receiver(self, am_type: int,
                          fn: Callable[[Frame], None]) -> None:
        """Register the handler for one AM type."""
        self._receivers[am_type] = fn

    def set_default_receiver(self, fn: Callable[[Frame], None]) -> None:
        self._default_receiver = fn

    def _on_frame(self, frame: Frame) -> None:
        """Called by the radio stack in task context, still under the
        reception proxy activity.  Decoding the hidden field terminates
        the proxy by binding it to the originating activity."""
        if frame.dst not in (self.node_id, AM_BROADCAST):
            return
        self.mcu.consume(DECODE_CYCLES)
        remote = ActivityLabel.decode(frame.activity)
        self.cpu_activity.bind(remote)
        self.received += 1
        receiver = self._receivers.get(frame.am_type, self._default_receiver)
        if receiver is not None:
            receiver(frame)
