"""A bootable Quanto node: platform + instrumentation + OS services.

``QuantoNode`` is the top of the substrate stack and the main entry point
for applications and experiments.  It assembles:

* the :class:`~repro.hw.platform.HydrowatchPlatform` hardware,
* the Quanto core — activity devices, power-state variables, the logger,
* the OS — interrupt controller, scheduler, virtual timers, arbiters,
  instrumented drivers, a MAC, and the Active Message layer,

and exposes the offline-analysis conveniences (decode the log, rebuild
the timeline, run the regression, build the energy map).

Resource ids are fixed per the table below so logs are comparable across
nodes and runs:

====  ==========
res   device
====  ==========
0     CPU
1–3   LED0–LED2
4     Radio
5     External flash
6     SHT11 sensor
7     ADC
8     Voltage reference
9     Hardware timer B (multi-activity)
====  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.accounting import (
    EnergyMap,
    build_energy_map,
    columnar_energy_map,
    resolve_analysis_backend,
)
from repro.core.activity import (
    MultiActivityDevice,
    ProxyActivitySet,
    SingleActivityDevice,
)
from repro.core.counters import CounterAccountant
from repro.core.labels import (
    PROXY_IDS,
    QUANTO_ID,
    ActivityLabel,
    ActivityRegistry,
    idle_label,
)
from repro.core.logger import QuantoLogger
from repro.core.powerstate import PowerStateTracker
from repro.core.regression import (
    RegressionResult,
    layout_from_tracker,
    solve_breakdown,
    solve_grouped,
)
from repro.core.timeline import ColumnarTimeline, TimelineBuilder
from repro.hw.platform import HydrowatchPlatform, PlatformConfig
from repro.net.channel import RadioChannel
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.am import ActiveMessageLayer
from repro.tos.arbiter import Arbiter
from repro.tos.context import CpuContext
from repro.tos.drivers.flash import FLASH_STATE_NAMES, FlashDriver
from repro.tos.drivers.leds import LedsDriver
from repro.tos.drivers.radio import RADIO_STATE_NAMES, RadioDriver
from repro.tos.drivers.sensor import SENSOR_STATE_NAMES, SensorDriver
from repro.tos.interrupts import InterruptController
from repro.tos.mac import CsmaMac, LplConfig, LplMac
from repro.tos.scheduler import Scheduler
from repro.tos.vtimer import VirtualTimerSystem

# Fixed resource ids.
RES_CPU = 0
RES_LED0 = 1
RES_LED1 = 2
RES_LED2 = 3
RES_RADIO = 4
RES_FLASH = 5
RES_SENSOR = 6
RES_ADC = 7
RES_VREF = 8
RES_TIMERB = 9

COMPONENT_NAMES = {
    RES_CPU: "CPU",
    RES_LED0: "LED0",
    RES_LED1: "LED1",
    RES_LED2: "LED2",
    RES_RADIO: "Radio",
    RES_FLASH: "Flash",
    RES_SENSOR: "Sensor",
    RES_ADC: "ADC",
    RES_VREF: "VRef",
    RES_TIMERB: "TimerB",
}


@dataclass
class NodeConfig:
    """Everything configurable about one node."""

    node_id: int = 1
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    logger_mode: str = "ram"
    logger_buffer_entries: int = 200_000
    logger_auto_dump: bool = False
    mac: str = "csma"  # 'csma', 'lpl', or 'none'
    lpl: LplConfig = field(default_factory=LplConfig)
    radio_channel_number: int = 26
    enable_counters: bool = False

    def __post_init__(self) -> None:
        self.platform.node_id = self.node_id


class QuantoNode:
    """One instrumented node."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NodeConfig] = None,
        registry: Optional[ActivityRegistry] = None,
        channel: Optional[RadioChannel] = None,
        rng_factory: Optional[RngFactory] = None,
    ) -> None:
        self.sim = sim
        self.config = config or NodeConfig()
        self.node_id = self.config.node_id
        self.registry = registry or ActivityRegistry()
        self.rng = rng_factory or RngFactory(0)
        self.platform = HydrowatchPlatform(sim, self.config.platform, self.rng)

        # ---- Quanto core -------------------------------------------------
        self.idle = idle_label(self.node_id)
        self.proxies = ProxyActivitySet(self.node_id, PROXY_IDS)
        self.quanto_label = ActivityLabel(self.node_id, QUANTO_ID)
        self.vtimer_label = self.registry.label(self.node_id, "VTimer")

        self.tracker = PowerStateTracker()
        mcu_sleep = self.config.platform.sleep_state
        self.cpu_powerstate = self.tracker.create(
            "CPU", RES_CPU, {0: mcu_sleep, 1: "ACTIVE"}, baseline_value=0)
        self.led_powerstates = [
            self.tracker.create(f"LED{i}", RES_LED0 + i, {0: "OFF", 1: "ON"})
            for i in range(3)
        ]
        self.radio_powerstate = self.tracker.create(
            "Radio", RES_RADIO, RADIO_STATE_NAMES, baseline_value=0)
        self.flash_powerstate = self.tracker.create(
            "Flash", RES_FLASH, FLASH_STATE_NAMES, baseline_value=0)
        self.sensor_powerstate = self.tracker.create(
            "Sensor", RES_SENSOR, SENSOR_STATE_NAMES, baseline_value=0)
        self.adc_powerstate = self.tracker.create(
            "ADC", RES_ADC, {0: "OFF", 1: "CONVERTING"}, baseline_value=0)
        self.vref_powerstate = self.tracker.create(
            "VRef", RES_VREF, {0: "OFF", 1: "ON"}, baseline_value=0)

        self.cpu_activity = SingleActivityDevice("CPU", RES_CPU, self.idle)
        self.led_activities = [
            SingleActivityDevice(f"LED{i}", RES_LED0 + i, self.idle)
            for i in range(3)
        ]
        self.radio_activity = SingleActivityDevice(
            "Radio", RES_RADIO, self.idle)
        self.flash_activity = SingleActivityDevice(
            "Flash", RES_FLASH, self.idle)
        self.sensor_activity = SingleActivityDevice(
            "Sensor", RES_SENSOR, self.idle)
        self.timer_activity = MultiActivityDevice("TimerB", RES_TIMERB)

        self.logger = QuantoLogger(
            self.platform.mcu,
            self.platform.icount,
            mode=self.config.logger_mode,
            buffer_entries=self.config.logger_buffer_entries,
            auto_dump=self.config.logger_auto_dump,
            quanto_activity=self.quanto_label,
            cpu_activity=self.cpu_activity,
            scheduler=None,  # patched below once the scheduler exists
        )
        self.tracker.add_listener(self.logger.on_powerstate)
        for device in self._single_devices():
            device.add_tracker(self.logger.on_single_activity)
        self.timer_activity.add_tracker(self.logger.on_multi_activity)

        # ---- OS services --------------------------------------------------
        self.context = CpuContext(
            self.platform.mcu, self.cpu_activity, self.cpu_powerstate,
            self.idle)
        self.interrupts = InterruptController(
            self.platform.mcu, self.context, self.cpu_activity, self.proxies)
        self.scheduler = Scheduler(
            self.platform.mcu, self.context, self.cpu_activity)
        self.logger.scheduler = self.scheduler
        self.vtimers = VirtualTimerSystem(
            self.platform.mcu, self.scheduler, self.interrupts,
            self.platform.timer_b.unit(0), self.cpu_activity,
            self.timer_activity, self.vtimer_label)
        self.bus_arbiter = Arbiter(
            "bus", self.scheduler, resource_activity=None,
            idle_label=self.idle)

        self.leds = LedsDriver(
            self.platform.mcu, self.platform.leds, self.led_powerstates,
            self.led_activities, self.cpu_activity, self.idle)
        self.flash = FlashDriver(
            self.platform.mcu, self.scheduler, self.interrupts,
            self.bus_arbiter, self.platform.flash, self.flash_powerstate,
            self.flash_activity, self.cpu_activity, self.proxies, self.idle)
        self.sensor = SensorDriver(
            self.platform.mcu, self.scheduler, self.interrupts,
            Arbiter("sht11", self.scheduler), self.platform.sensor,
            self.sensor_powerstate, self.sensor_activity, self.cpu_activity,
            self.proxies, self.idle)

        self.channel = channel
        self.radio_driver: Optional[RadioDriver] = None
        self.mac = None
        self.am: Optional[ActiveMessageLayer] = None
        if channel is not None:
            self.platform.radio.set_channel_number(
                self.config.radio_channel_number)
            self.platform.radio.attach(channel)
            self.radio_driver = RadioDriver(
                self.platform.mcu, self.scheduler, self.interrupts,
                self.vtimers, self.platform.spi, self.platform.radio,
                self.radio_powerstate, self.radio_activity,
                self.cpu_activity, self.proxies, self.idle,
                self.rng.stream(f"node{self.node_id}.mac"),
                spi_mode=self.config.platform.spi_mode)
            if self.config.mac == "csma":
                self.mac = CsmaMac(self.radio_driver)
            elif self.config.mac == "lpl":
                self.mac = LplMac(
                    self.radio_driver, self.vtimers, self.cpu_activity,
                    self.vtimer_label, self.proxies.label("pxy_RX"),
                    self.idle, self.config.lpl)
            if self.mac is not None:
                self.am = ActiveMessageLayer(
                    self.node_id, self.mac, self.cpu_activity,
                    self.platform.mcu)

        # The DCO-calibration leak, if configured (Figure 15).
        dco_trigger = self.interrupts.wire(
            "int_TIMERA1", self._dco_calibrate, body_cycles=20)
        self.platform.clock.start(dco_trigger)

        self.counters: Optional[CounterAccountant] = None
        if self.config.enable_counters:
            self.counters = CounterAccountant(
                sim, self.platform.icount, mcu=self.platform.mcu)
            self.cpu_activity.add_tracker(self.counters.on_single_activity)

        self._booted = False
        self._log_end_mark_ns = -1
        # Memoized columnar reconstruction, keyed by (record count,
        # end time): regression + accounting reuse one decode.
        self._columnar_cache: Optional[tuple[int, int, ColumnarTimeline]] = \
            None
        # Warm-start snapshot: the registration/observer state as of the
        # end of construction, so reset() can drop anything attached or
        # registered by a previous run (app activities, test trackers).
        self._pristine_registry = self.registry.snapshot_state()
        self._pristine_hook_counts = (
            len(self.tracker._listeners),
            tuple(len(d._trackers) for d in self._single_devices()),
            len(self.timer_activity._trackers),
            len(self.platform.mcu._power_listeners),
        )

    # -- warm start -------------------------------------------------------

    def reset(self, seed: Optional[int] = None) -> None:
        """Return the whole node to its post-construction state so the
        next boot replays a fresh run — the warm-start protocol.

        A sweep worker constructs one node per experiment configuration
        and calls ``reset(seed)`` per grid point instead of rebuilding
        the world.  The reset re-keys every rng stream in place, replays
        the seed-dependent construction steps (per-device draw variation),
        zeroes all dynamic state down to the hardware models, and drops
        anything a previous run registered (application activities,
        harness observers).  ``tests/test_warm_start.py`` proves reset ≡
        rebuild digest-for-digest; that equivalence is the contract every
        layer's ``reset()`` implements.

        Only supported for a standalone node: a node attached to a radio
        channel shares state with the rest of its network and must be
        rebuilt with it.
        """
        if self.channel is not None:
            raise RuntimeError(
                "cannot warm-reset a networked node; rebuild the network")
        self.sim.reset()
        self.rng.reseed(seed if seed is not None else self.rng.master_seed)
        self.platform.reset()
        self.registry.restore_state(self._pristine_registry)
        listeners, device_trackers, multi_trackers, power_listeners = \
            self._pristine_hook_counts
        del self.tracker._listeners[listeners:]
        for device, count in zip(self._single_devices(), device_trackers):
            del device._trackers[count:]
        del self.timer_activity._trackers[multi_trackers:]
        del self.platform.mcu._power_listeners[power_listeners:]
        for var in self.tracker.all_vars():
            var.reset()
        for device in self._single_devices():
            device.reset(self.idle)
        self.timer_activity.reset()
        self.logger.reset()
        self.interrupts.reset()
        self.scheduler.reset()
        self.vtimers.reset()
        self.bus_arbiter.reset()
        self.flash.reset()
        self.sensor.reset()
        if self.counters is not None:
            self.counters.reset()
        self._booted = False
        self._log_end_mark_ns = -1
        self._columnar_cache = None

    # -- boot ------------------------------------------------------------

    def boot(self, app_start: Optional[Callable[["QuantoNode"], None]] = None,
             ) -> None:
        """Queue the boot task: record the initial state snapshot, then
        run the application's start hook."""
        if self._booted:
            raise RuntimeError(f"node {self.node_id} already booted")
        self._booted = True

        def boot_body() -> None:
            self.logger.record_boot_snapshot(
                self.tracker, self._single_devices())
            if app_start is not None:
                app_start(self)

        self.scheduler.post_function(boot_body, cycles=40, label="boot",
                                     activity=self.idle)

    def _dco_calibrate(self) -> None:
        """The TimerA1 DCO-calibration ISR body (the energy leak)."""
        from repro.hw.clock import DCO_CALIBRATION_CYCLES
        self.platform.mcu.consume(DCO_CALIBRATION_CYCLES)

    def _single_devices(self) -> list[SingleActivityDevice]:
        return [
            self.cpu_activity, *self.led_activities, self.radio_activity,
            self.flash_activity, self.sensor_activity,
        ]

    # -- activity helpers ----------------------------------------------------

    def activity(self, name: str) -> ActivityLabel:
        """A label for a named application activity, originating here."""
        return self.registry.label(self.node_id, name)

    def set_cpu_activity(self, name: str) -> ActivityLabel:
        """The Figure 7 idiom: paint the CPU before starting an activity."""
        label = self.activity(name)
        self.cpu_activity.set(label)
        return label

    # -- offline analysis -----------------------------------------------------

    def entries(self):
        """The decoded log."""
        return self.logger.decode()

    def mark_log_end(self) -> None:
        """Close the log for analysis: wake the CPU once so the final
        power-state records and meter reading land in the log (energy past
        the last record is unobservable — a real dump does exactly this
        read when it stops logging)."""
        from repro.units import ms as _ms

        if (self._log_end_mark_ns >= 0
                and self.sim.now <= self._log_end_mark_ns + _ms(1)):
            return  # already marked; the clock only moved by the settle
        if self.platform.mcu._in_job:
            return  # called from inside the simulation; nothing to close
        self._log_end_mark_ns = self.sim.now
        self.scheduler.post_function(
            lambda: self.platform.mcu.consume(4),
            cycles=4, label="log-end-mark", activity=self.idle)
        self.sim.run(until=self.sim.now + _ms(1))

    def timeline(self, end_time_ns: Optional[int] = None,
                 finalize: bool = True) -> TimelineBuilder:
        if finalize and self._booted:
            self.mark_log_end()
        return TimelineBuilder(
            self.entries(),
            end_time_ns=end_time_ns if end_time_ns is not None else self.sim.now,
            single_res_ids=[d.res_id for d in self._single_devices()],
            multi_res_ids=[RES_TIMERB],
        )

    @staticmethod
    def _columnar_from_builder(timeline: TimelineBuilder) -> ColumnarTimeline:
        """Columnar view of an explicitly captured batch timeline: built
        from the builder's own entry list (not the live log), so a
        timeline captured before the log grew analyzes exactly what the
        streaming path would analyze for the same call."""
        from repro.core.logger import LogColumns

        return ColumnarTimeline(
            LogColumns.from_entries(timeline.entries),
            end_time_ns=timeline.end_time_ns,
            single_res_ids=timeline.single_device_ids(),
            multi_res_ids=timeline.multi_device_ids(),
        )

    def columnar_timeline(
        self, end_time_ns: Optional[int] = None,
        finalize: bool = True,
    ) -> ColumnarTimeline:
        """The columnar reconstruction of this node's log: one
        ``np.frombuffer`` decode off the logger's raw bytes, intervals
        and segments as column arrays, no per-entry objects.  Memoized
        per (record count, end time) so the regression and the energy
        map share one decode."""
        if finalize and self._booted:
            self.mark_log_end()
        end = end_time_ns if end_time_ns is not None else self.sim.now
        count = self.logger.records_written
        cached = self._columnar_cache
        if cached is not None and cached[0] == count and cached[1] == end:
            return cached[2]
        timeline = ColumnarTimeline(
            self.logger.columns(),
            end_time_ns=end,
            single_res_ids=[d.res_id for d in self._single_devices()],
            multi_res_ids=[RES_TIMERB],
        )
        self._columnar_cache = (count, end, timeline)
        return timeline

    def layout(self):
        return layout_from_tracker(self.tracker)

    def regression(
        self,
        timeline: Optional[TimelineBuilder] = None,
        weighting: str = "sqrt_et",
        strict: bool = False,
        backend: Optional[str] = None,
    ) -> RegressionResult:
        """Run the Section 2.5 breakdown on this node's log.

        With the columnar backend the grouped ``(E_j, t_j)`` inputs come
        straight off the interval columns (no ``PowerInterval`` objects).
        A passed ``timeline`` is honored as the snapshot to analyze —
        its captured entries, not the live log — exactly like the
        streaming path.
        """
        if resolve_analysis_backend(backend) == "columnar":
            columnar = (self._columnar_from_builder(timeline)
                        if timeline is not None
                        else self.columnar_timeline())
            return solve_grouped(
                *columnar.grouped_inputs(
                    self.platform.icount.nominal_energy_per_pulse_j),
                self.layout(),
                self.platform.rail.voltage,
                weighting=weighting,
                strict=strict,
            )
        tl = timeline if timeline is not None else self.timeline()
        return solve_breakdown(
            tl.power_intervals(),
            self.layout(),
            self.platform.icount.nominal_energy_per_pulse_j,
            self.platform.rail.voltage,
            weighting=weighting,
            strict=strict,
        )

    def breakdown(
        self,
        fold_proxies: bool = False,
        weighting: str = "sqrt_et",
        backend: Optional[str] = None,
    ) -> tuple[RegressionResult, EnergyMap]:
        """Regression + energy map off one shared reconstruction — the
        per-point analysis path experiments should use.

        On the columnar backend (the default) both consumers read the
        memoized :meth:`columnar_timeline` — one ``np.frombuffer`` decode
        for the whole analysis, no per-entry objects.  On the streaming
        backend one :class:`TimelineBuilder` is built and passed to both,
        so neither path ever decodes the log twice.  Output is
        bit-identical either way (the backend contract).
        """
        if resolve_analysis_backend(backend) == "columnar":
            regression = self.regression(weighting=weighting,
                                         backend="columnar")
            return regression, self.energy_map(
                regression=regression, fold_proxies=fold_proxies,
                backend="columnar")
        timeline = self.timeline()
        regression = self.regression(timeline, weighting=weighting,
                                     backend="streaming")
        return regression, self.energy_map(
            timeline, regression, fold_proxies=fold_proxies,
            backend="streaming")

    def energy_map(
        self,
        timeline: Optional[TimelineBuilder] = None,
        regression: Optional[RegressionResult] = None,
        fold_proxies: bool = False,
        backend: Optional[str] = None,
    ) -> EnergyMap:
        """The full 'where have the joules gone' answer for this node.

        ``backend`` (default: ``$REPRO_ANALYSIS_BACKEND``, else
        streaming) picks the analysis implementation; both produce
        bit-identical maps.
        """
        backend = resolve_analysis_backend(backend)
        if backend == "columnar":
            if timeline is not None:
                # Analyze the captured snapshot, like the batch wrapper.
                columnar = self._columnar_from_builder(timeline)
                reg = regression if regression is not None \
                    else self.regression(timeline, backend=backend)
            else:
                columnar = self.columnar_timeline()
                reg = regression if regression is not None \
                    else self.regression(backend=backend)
            return columnar_energy_map(
                columnar, reg, self.registry, COMPONENT_NAMES,
                self.platform.icount.nominal_energy_per_pulse_j,
                fold_proxies=fold_proxies,
                idle_name=self.registry.name_of(self.idle),
            )
        tl = timeline if timeline is not None else self.timeline()
        reg = regression if regression is not None else self.regression(tl)
        return build_energy_map(
            tl, reg, self.registry, COMPONENT_NAMES,
            self.platform.icount.nominal_energy_per_pulse_j,
            fold_proxies=fold_proxies,
            idle_name=self.registry.name_of(self.idle),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QuantoNode {self.node_id} mac={self.config.mac}>"
