"""MAC layers: always-on CSMA and low-power listening (LPL).

**CsmaMac** is a thin pass-through: radio always listening, CSMA backoff
handled by the radio driver (the Bounce configuration).

**LplMac** implements the duty-cycling regime of the paper's first case
study (Polastre-style low-power listening): the receiver sleeps, waking
every ``check_interval`` to sample the channel; if it detects energy it
stays in RX for up to ``detect_timeout`` waiting for a packet, otherwise
it powers back down.  External wide-band interference therefore causes
*false positives* that keep the radio on — the effect Figure 13
quantifies.  Senders transmit the packet repeatedly for a full check
interval so a duty-cycled receiver is guaranteed to catch one copy.

Quanto specifics: the periodic channel check runs under the VTimer
activity (it is timer-subsystem work); when energy is detected the radio
and the timeout are painted with the ``pxy_RX`` proxy activity — which,
on a false positive, never gets bound to a real activity, exactly how the
paper's Figure 14 displays the wasted energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.hw.radio import Frame
from repro.tos.drivers.radio import RadioDriver
from repro.tos.vtimer import VirtualTimerSystem
from repro.units import ms


class CsmaMac:
    """Always-on MAC: start leaves the radio listening; sends go straight
    to the driver (which performs CSMA backoff + CCA)."""

    def __init__(self, driver: RadioDriver):
        self.driver = driver

    def start(self, on_started: Optional[Callable[[], None]] = None) -> None:
        def started() -> None:
            self.driver.rx_enable()
            if on_started is not None:
                on_started()

        self.driver.start(started)

    def send(self, frame: Frame,
             on_done: Optional[Callable[[Frame], None]]) -> None:
        self.driver.send(frame, on_done)

    def set_receive(self, fn: Callable[[Frame], None]) -> None:
        self.driver.set_receive(fn)


@dataclass
class LplConfig:
    """Low-power listening parameters (paper defaults: 500 ms checks)."""

    check_interval_ns: int = ms(500)
    #: CCA samples per wake-up and their spacing.  Each sample also pays
    #: the virtual-timer dispatch cost (~1 ms of CPU at 1 MHz), so four
    #: samples at a 1 ms gap yield the paper's ~11 ms of radio-on time
    #: per check (2.22 % duty at 500 ms checks).
    cca_samples: int = 4
    cca_sample_gap_ns: int = ms(1.0)
    #: How long a detection keeps the radio on waiting for a packet.
    detect_timeout_ns: int = ms(100)


class LplMac:
    """Duty-cycled MAC with energy-detect wake-up."""

    def __init__(
        self,
        driver: RadioDriver,
        vtimers: VirtualTimerSystem,
        cpu_activity: SingleActivityDevice,
        vtimer_activity: ActivityLabel,
        rx_proxy: ActivityLabel,
        idle_label: ActivityLabel,
        config: Optional[LplConfig] = None,
    ) -> None:
        self.driver = driver
        self.vtimers = vtimers
        self.cpu_activity = cpu_activity
        self.vtimer_activity = vtimer_activity
        self.rx_proxy = rx_proxy
        self.idle_label = idle_label
        self.config = config or LplConfig()
        self._started = False
        self._checking = False
        self._detected_hold = False
        self._sending = False
        self._samples_left = 0
        # Statistics for the Figure 13 analysis.
        self.wakeups = 0
        self.detections = 0
        self.packets_during_hold = 0
        self._receive_fn: Optional[Callable[[Frame], None]] = None
        driver.set_receive(self._on_frame)

    # -- control ---------------------------------------------------------

    def start(self, on_started: Optional[Callable[[], None]] = None) -> None:
        """Boot the radio once to confirm it works, power it down, and
        begin the periodic channel checks."""

        def started() -> None:
            self.driver.stop()
            self._started = True
            self.vtimers.start_periodic(
                self._check, self.config.check_interval_ns,
                name="lpl-check", activity=self.vtimer_activity,
            )
            if on_started is not None:
                on_started()

        self.driver.start(started)

    def set_receive(self, fn: Callable[[Frame], None]) -> None:
        self._receive_fn = fn

    # -- the periodic check -------------------------------------------------

    def _check(self) -> None:
        """Wake the radio and sample the channel (runs under VTimer)."""
        if self._checking or self._detected_hold or self._sending:
            return
        self._checking = True
        self.wakeups += 1
        self.driver.start(self._radio_ready)

    def _radio_ready(self) -> None:
        self.driver.rx_enable()
        self._samples_left = self.config.cca_samples
        self.vtimers.start_oneshot(
            self._sample, self.config.cca_sample_gap_ns,
            name="lpl-cca", activity=self.vtimer_activity,
        )

    def _sample(self) -> None:
        """One CCA sample; energy -> hold RX; all clear -> back to sleep."""
        if self._sending or not self.driver.is_listening:
            self._checking = False
            return
        if not self.driver.cca_clear():
            self._begin_hold()
            return
        self._samples_left -= 1
        if self._samples_left > 0:
            self.vtimers.start_oneshot(
                self._sample, self.config.cca_sample_gap_ns,
                name="lpl-cca", activity=self.vtimer_activity,
            )
            return
        # Clean window: power the radio back down.
        self.driver.stop()
        self._checking = False

    def _begin_hold(self) -> None:
        """Energy detected: keep listening under the receive proxy.  If no
        packet arrives before the timeout this was a false positive and
        the proxy is never bound — the energy stays charged to pxy_RX."""
        self.detections += 1
        self._detected_hold = True
        self._checking = False
        self.cpu_activity.set(self.rx_proxy)
        self.driver.radio_activity.set(self.rx_proxy)
        self.vtimers.start_oneshot(
            self._hold_timeout, self.config.detect_timeout_ns,
            name="lpl-hold", activity=self.rx_proxy,
        )

    def _hold_timeout(self) -> None:
        if not self._detected_hold:
            return
        self._detected_hold = False
        self.driver.radio_activity.set(self.idle_label)
        self.driver.stop()

    # -- receive/send ----------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if self._detected_hold:
            self.packets_during_hold += 1
            self._detected_hold = False
            self.driver.radio_activity.set(self.idle_label)
            self.driver.stop()
        if self._receive_fn is not None:
            self._receive_fn(frame)

    def send(self, frame: Frame,
             on_done: Optional[Callable[[Frame], None]]) -> None:
        """LPL send: wake the radio and retransmit the frame for one full
        check interval, so the duty-cycled peer is guaranteed to sample
        the channel while we are on the air."""
        self._sending = True
        self._checking = False
        deadline = (
            self.driver.mcu.sim.now + self.config.check_interval_ns
        )

        def started() -> None:
            self.driver.rx_enable()
            transmit_once()

        def transmit_once() -> None:
            self.driver.send(frame, transmitted, use_cca=False)

        def transmitted(sent: Frame) -> None:
            if self.driver.mcu.sim.now < deadline:
                transmit_once()
                return
            self._sending = False
            self.driver.stop()
            if on_done is not None:
                on_done(frame)

        if self.driver.radio.state == "OFF":
            self.driver.start(started)
        elif self.driver.is_listening:
            transmit_once()
        else:
            self.driver.rx_enable()
            transmit_once()
