"""The TinyOS task scheduler, instrumented for activity propagation.

TinyOS has a single stack and an event-driven execution model: the
schedulable unit is the *task* — posted from any context, run to
completion in FIFO order, never preempting another task (but preemptible
by interrupts).  Quanto's instrumentation (paper §3.3, Table 5 "Tasks"):
**save the current CPU activity when a task is posted, and restore it just
before the task runs**, so logical threads of computation keep their
labels across arbitrary multiplexing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.activity import SingleActivityDevice
from repro.core.labels import ActivityLabel
from repro.hw.mcu import Mcu
from repro.tos.context import CpuContext

#: Cost of posting a task (queue insert).
POST_CYCLES = 6
#: Scheduler dispatch overhead per task.
DISPATCH_CYCLES = 10


class Task:
    """A reusable task: TinyOS tasks are singletons that may be re-posted,
    but a task already in the queue is not queued twice."""

    __slots__ = ("fn", "cycles", "name", "_queued")

    def __init__(self, fn: Callable[[], None], cycles: int = 0,
                 name: str = "task"):
        self.fn = fn
        self.cycles = cycles
        self.name = name
        self._queued = False


class Scheduler:
    """Posts instrumented task jobs onto the MCU."""

    def __init__(
        self,
        mcu: Mcu,
        context: CpuContext,
        cpu_activity: SingleActivityDevice,
    ) -> None:
        self.mcu = mcu
        self.context = context
        self.cpu_activity = cpu_activity
        self.tasks_posted = 0
        self.tasks_run = 0

    def reset(self) -> None:
        """Warm-start reset: zero the tallies.  Queued jobs live in the
        MCU queues (reset separately); :class:`Task` singletons belong to
        applications, which are rebuilt per run."""
        self.tasks_posted = 0
        self.tasks_run = 0

    def post(self, task: Task) -> bool:
        """Post a task; returns False if it was already queued (TinyOS
        semantics).  The poster's activity is captured here."""
        if task._queued:
            return False
        task._queued = True
        self._post_with_activity(task.fn, task.cycles, task.name,
                                 self.cpu_activity.get(),
                                 lambda: setattr(task, "_queued", False))
        return True

    def post_function(
        self,
        fn: Callable[[], None],
        cycles: int = 0,
        label: str = "task",
        activity: Optional[ActivityLabel] = None,
    ) -> None:
        """Post a one-shot function as a task.  ``activity`` overrides the
        captured label (the virtual timer system uses this to restore a
        timer's saved activity)."""
        captured = activity if activity is not None else self.cpu_activity.get()
        self._post_with_activity(fn, cycles, label, captured, None)

    def _post_with_activity(
        self,
        fn: Callable[[], None],
        cycles: int,
        label: str,
        saved: ActivityLabel,
        on_start: Optional[Callable[[], None]],
    ) -> None:
        self.tasks_posted += 1
        if self.mcu._in_job:  # posting from CPU code costs cycles
            self.mcu.consume(POST_CYCLES)
        # No per-post closures: the wrapper, the task body, and its
        # captured state all travel as job args.
        self.mcu.post_task(
            self.context.run_wrapped, label=label,
            args=(self._task_body, fn, cycles, saved, on_start),
        )

    def _task_body(
        self,
        fn: Callable[[], None],
        cycles: int,
        saved: ActivityLabel,
        on_start: Optional[Callable[[], None]],
    ) -> None:
        self.tasks_run += 1
        if on_start is not None:
            on_start()
        # Restore the activity saved at post time (the instrumentation
        # the paper added to the TinyOS scheduler).
        self.cpu_activity.set(saved)
        self.mcu.consume(DISPATCH_CYCLES + cycles)
        fn()
