"""Regenerate tests/golden_digests.json from the current tree.

Only legitimate when the reproduction's *behaviour* intentionally changed
(new experiment output, changed cost model) or when porting the suite to
a platform whose libm disagrees with the reference in the last ulp.  A
perf-only change must never need this script — that is the whole point
of the golden file.

Usage: PYTHONPATH=src python tools/regen_golden_digests.py
"""

import hashlib
import json
from pathlib import Path

from repro.experiments.common import EXPERIMENT_IDS, run_experiment

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / \
    "golden_digests.json"


def main() -> None:
    digests = {}
    for exp_id in EXPERIMENT_IDS:
        rendered = run_experiment(exp_id, seed=0).render()
        digests[exp_id] = hashlib.sha256(
            rendered.encode("utf-8")).hexdigest()
        print(f"{exp_id:28s} {digests[exp_id][:16]}")
    GOLDEN_PATH.write_text(json.dumps(digests, indent=1) + "\n", "utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
