"""CI chaos smoke: SIGKILL a campaign runner + worker, resume, verify.

The scripted version of the orchestrator's acceptance criterion:

1. compute the golden digest with an uninterrupted serial ``run_sweep``;
2. plan a small sharded campaign manifest;
3. run ``repro campaign run`` as a subprocess with the fault plan
   ``crash-runner@mid-shard`` armed behind a fire-once fuse — the first
   worker to store a point SIGKILLs the runner *and* itself;
4. wait for orphaned workers to quiesce, check the store holds partial
   progress;
5. ``repro campaign resume`` with a clean environment — it must fold the
   stored points from cache (no re-simulation) and finish the rest;
6. assert the resumed digest is byte-identical to the golden serial one,
   then re-verify via ``repro campaign status`` and a strict
   manifest-driven ``merge-sweeps``.

Run from the repo root: ``PYTHONPATH=src python tools/campaign_chaos.py``.
"""

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.campaign import campaign_status, plan_campaign  # noqa: E402
from repro.sim.sweep import run_sweep  # noqa: E402

EXP = "table3"
SEEDS = list(range(4))
OVERRIDES = {"duration_ns": ["8000000000"], "device_variation": ["0.02"]}


def run_cli(args, env, timeout=420):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def clean_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    for var in ("REPRO_FAULT", "REPRO_FAULT_FUSE", "REPRO_FAULT_SELECT"):
        env.pop(var, None)
    return env


def main() -> int:
    print("== campaign chaos smoke ==")
    golden = run_sweep(EXP, SEEDS, OVERRIDES, jobs=1).digest()
    print(f"golden serial digest: {golden}")

    workdir = Path(tempfile.mkdtemp(prefix="chaos-campaign-"))
    manifest = plan_campaign(
        EXP, SEEDS, OVERRIDES, out_path=workdir / "campaign.json",
        shards=2, workers=2)
    print(f"manifest: {manifest.path} ({len(manifest.grid())} points, "
          f"{manifest.shards} shards)")

    # Armed run: the first worker to store a point takes down the
    # runner and itself (exactly once — the fuse guarantees the resume
    # runs clean).
    env = clean_env()
    env["REPRO_FAULT"] = "crash-runner@mid-shard"
    env["REPRO_FAULT_FUSE"] = str(workdir / "fuse")
    proc = run_cli(["campaign", "run", str(manifest.path)], env)
    print(f"armed run exit code: {proc.returncode} (expected -9)")
    if proc.returncode != -9:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print("FAIL: runner was not SIGKILLed", file=sys.stderr)
        return 1

    # Orphaned workers may still be appending; wait for the store to
    # quiesce before reading the partial coverage.
    stored = -1
    for _ in range(240):
        status = campaign_status(manifest.path)
        if status.stored == stored:
            break
        stored = status.stored
        time.sleep(0.5)
    print(f"after SIGKILL: {stored}/{status.total} points stored")
    if not 0 < stored < status.total:
        print("FAIL: expected partial progress (the crash either fired "
              "before any store or after all of them)", file=sys.stderr)
        return 1

    # Resume with the faults disarmed: stored points must fold from the
    # store, only the remainder simulates.
    proc = run_cli(["campaign", "resume", str(manifest.path)], clean_env())
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print("FAIL: resume did not complete", file=sys.stderr)
        return 1
    digest = re.search(r"sweep digest: (\w+)", proc.stdout)
    cache = re.search(r"cache: (\d+) reused, (\d+) simulated", proc.stdout)
    if digest is None or cache is None:
        print(proc.stdout)
        print("FAIL: resume output missing digest/cache lines",
              file=sys.stderr)
        return 1
    reused, simulated = int(cache.group(1)), int(cache.group(2))
    print(f"resume: {reused} reused, {simulated} simulated, "
          f"digest {digest.group(1)}")
    if digest.group(1) != golden:
        print(f"FAIL: resumed digest != golden ({golden})", file=sys.stderr)
        return 1
    if reused < stored or reused < 1:
        print("FAIL: resume re-simulated already-stored points",
              file=sys.stderr)
        return 1
    if reused + simulated != status.total:
        print("FAIL: coverage arithmetic is off", file=sys.stderr)
        return 1

    # Belt and braces: status agrees, and a strict manifest merge
    # re-verifies every pinned digest plus the combined one.
    proc = run_cli(["campaign", "status", str(manifest.path)], clean_env())
    print(proc.stdout.strip())
    if proc.returncode != 0 or "complete" not in proc.stdout:
        print("FAIL: status does not report completion", file=sys.stderr)
        return 1
    proc = run_cli(["merge-sweeps", "--manifest", str(manifest.path),
                    "--strict"], clean_env())
    merged = re.search(r"sweep digest: (\w+)", proc.stdout)
    if proc.returncode != 0 or merged is None or merged.group(1) != golden:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print("FAIL: strict manifest merge did not reproduce the golden "
              "digest", file=sys.stderr)
        return 1
    print("chaos smoke OK: killed runner+worker, resumed byte-identical "
          "with no re-simulation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
