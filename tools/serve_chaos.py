"""CI chaos: SIGKILL `repro serve` mid-stream, restart it, and prove
the resumed final map byte-identical to the uninterrupted offline one.

The scenario, at the runner level (real processes, real sockets):

1. a `repro serve --state-dir` subprocess listens on a unix socket;
2. this process streams one simulated node's log with the resume
   handshake enabled, deliberately paced so the kill lands mid-stream;
3. once the node's write-ahead journal holds a healthy prefix (past at
   least one checkpoint), the server is SIGKILLed — no warning, no
   drain, exactly what a crashed collector looks like;
4. a second server process starts on the same state dir, restores the
   session from checkpoint + journal tail, and the client's
   reconnect-with-resume rides through the bounce — replaying only the
   bytes past the server's acked offset;
5. the final folded map must equal the offline ``build_energy_map``
   **byte for byte** (float bits and dict insertion order), the client
   must have actually resumed (offset > 0, >= 1 reconnect), and the
   restarted server must exit 0 under ``--expect-nodes 1``.

Also measured: the restart-to-listening recovery time of the second
server (its in-process cousin is ``serve_recovery_ms`` in
``benchmarks/bench_engine.py``).

Run: ``PYTHONPATH=src python tools/serve_chaos.py``
Exit status is nonzero on any divergence.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.accounting import build_energy_map  # noqa: E402
from repro.experiments.common import run_blink  # noqa: E402
from repro.serve import final_map, stream_node  # noqa: E402
from repro.tos.node import COMPONENT_NAMES  # noqa: E402
from repro.units import seconds  # noqa: E402

#: Kill once the journal holds at least this much (past several
#: --checkpoint-bytes boundaries, well before the stream ends).
KILL_AFTER_BYTES = 4096

CHECKPOINT_BYTES = 1024
CHUNK_SIZE = 97  # prime and tiny: the kill lands inside a chunk run
PACE_S = 0.008


def offline_map(node):
    timeline = node.timeline()
    regression = node.regression(timeline)
    return build_energy_map(
        timeline, regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        backend="streaming",
    )


def check_identical(served, offline):
    problems = []
    if list(served.energy_j) != list(offline.energy_j):
        problems.append("energy key order")
    if served.energy_j != offline.energy_j:
        problems.append("energy float bits")
    if list(served.time_ns) != list(offline.time_ns):
        problems.append("time key order")
    if served.time_ns != offline.time_ns:
        problems.append("time values")
    if served.metered_energy_j != offline.metered_energy_j:
        problems.append("metered total")
    if served.reconstructed_energy_j != offline.reconstructed_energy_j:
        problems.append("reconstructed total")
    if served.span_ns != offline.span_ns:
        problems.append("span")
    return problems


def launch_server(sock: str, state_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", f"unix:{sock}",
         "--state-dir", state_dir,
         "--checkpoint-bytes", str(CHECKPOINT_BYTES),
         "--expect-nodes", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


async def wait_for_line(proc: subprocess.Popen, needle: str,
                        timeout_s: float = 60.0) -> list[str]:
    """Read server stdout until ``needle`` appears; returns the lines."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    lines = []
    while True:
        line = await asyncio.wait_for(
            loop.run_in_executor(None, proc.stdout.readline),
            timeout=max(0.1, deadline - loop.time()))
        if not line:
            raise RuntimeError(
                f"server exited (rc={proc.poll()}) before {needle!r}; "
                f"output so far: {''.join(lines)!r}")
        lines.append(line)
        print(f"  server: {line.rstrip()}", flush=True)
        if needle in line:
            return lines


async def main() -> int:
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(128))
    offline = offline_map(node)
    total = len(bytes(node.logger.raw_bytes()))
    print(f"log: {total} bytes; kill after ~{KILL_AFTER_BYTES} journaled",
          flush=True)

    tmp = tempfile.mkdtemp(prefix="serve-chaos-")
    sock = os.path.join(tmp, "ingest.sock")
    state_dir = os.path.join(tmp, "state")
    journal = Path(state_dir) / "node-1.waj"

    server = launch_server(sock, state_dir)
    await wait_for_line(server, "listening on")

    async def paced(_sent, _total):
        await asyncio.sleep(PACE_S)

    client = asyncio.ensure_future(stream_node(
        sock, node, stride_ns=int(seconds(4)), chunk_size=CHUNK_SIZE,
        on_chunk=paced, retries=120, backoff_base_s=0.05,
        backoff_cap_s=0.25))

    # Watch the WAL grow, then strike.
    deadline = asyncio.get_running_loop().time() + 60.0
    while True:
        size = journal.stat().st_size if journal.exists() else 0
        if size >= KILL_AFTER_BYTES:
            break
        if asyncio.get_running_loop().time() > deadline:
            raise RuntimeError(
                f"journal never reached {KILL_AFTER_BYTES} bytes "
                f"(at {size}); client done={client.done()}")
        await asyncio.sleep(0.01)
    server.send_signal(signal.SIGKILL)
    server.wait()
    print(f"SIGKILLed server (rc={server.returncode}) with journal at "
          f"{journal.stat().st_size} bytes", flush=True)
    assert server.returncode == -signal.SIGKILL

    # Restart on the same state dir; the client's backoff rides through.
    t_restart = time.perf_counter()
    server2 = launch_server(sock, state_dir)
    lines = await wait_for_line(server2, "listening on")
    recovery_ms = (time.perf_counter() - t_restart) * 1e3
    if not any("restored 1 node sessions" in line for line in lines):
        print("FAIL: restarted server did not report a restored session",
              flush=True)
        return 1
    print(f"restart-to-listening: {recovery_ms:.1f} ms "
          "(includes interpreter start)", flush=True)

    reply = await asyncio.wait_for(client, timeout=120.0)
    stats = reply["client"]
    print(f"client: reconnects={stats['reconnects']} "
          f"resumed_from={stats['resumed_from']} "
          f"entries={reply['entries']} windows={reply['windows']}",
          flush=True)

    failures = []
    if not reply.get("ok"):
        failures.append(f"final reply not ok: {reply}")
    if stats["reconnects"] < 1:
        failures.append("client never reconnected — the kill missed")
    if not 0 < stats["resumed_from"] < total:
        failures.append(
            f"resume offset {stats['resumed_from']} not mid-stream "
            f"(log is {total} bytes) — recovery was not exercised")
    problems = check_identical(final_map(reply), offline)
    if problems:
        failures.append("resumed map diverges from offline: "
                        + ", ".join(problems))

    # --expect-nodes 1: the restarted server exits 0 on its own.
    rc = await asyncio.get_running_loop().run_in_executor(
        None, server2.wait)
    out = server2.stdout.read()
    if out:
        print(f"  server: {out.rstrip()}", flush=True)
    if rc != 0:
        failures.append(f"restarted server exited {rc}, want 0")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", flush=True)
        return 1
    print("serve chaos smoke: SIGKILL + restart + resume "
          "byte-identical — ok", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
