"""CI smoke: boot the ingest server, stream two simulated nodes over a
socket, and assert the final folded windowed totals are byte-identical
to each node's offline ``build_energy_map``.

This is the end-to-end proof for the live accounting path: simulator →
packed log bytes → chunked socket stream → ``WireDecoder`` →
``WindowedAccumulator`` → JSON reply → folded ``EnergyMap``, equal to
the batch pipeline bit for bit (float bits AND dict insertion order).
The two nodes stream concurrently with different strides and
adversarial (prime) chunk sizes, and the query surface is exercised
while one stream is still in flight.

Run: ``PYTHONPATH=src python tools/serve_smoke.py``
Exit status is nonzero on any divergence.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.accounting import build_energy_map  # noqa: E402
from repro.experiments.common import run_blink  # noqa: E402
from repro.serve import IngestServer, final_map, query, stream_node  # noqa: E402
from repro.tos.node import COMPONENT_NAMES  # noqa: E402
from repro.units import seconds  # noqa: E402


def offline_map(node):
    timeline = node.timeline()
    regression = node.regression(timeline)
    return build_energy_map(
        timeline, regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=False,
        idle_name=node.registry.name_of(node.idle),
        backend="streaming",
    )


def check_identical(label, served, offline):
    problems = []
    if list(served.energy_j) != list(offline.energy_j):
        problems.append("energy key order")
    if served.energy_j != offline.energy_j:
        problems.append("energy float bits")
    if list(served.time_ns) != list(offline.time_ns):
        problems.append("time key order")
    if served.time_ns != offline.time_ns:
        problems.append("time values")
    if served.metered_energy_j != offline.metered_energy_j:
        problems.append("metered total")
    if served.reconstructed_energy_j != offline.reconstructed_energy_j:
        problems.append("reconstructed total")
    if served.span_ns != offline.span_ns:
        problems.append("span")
    if problems:
        raise SystemExit(f"FAIL [{label}]: served map diverged from "
                         f"offline ({', '.join(problems)})")
    print(f"ok [{label}]: {len(served.energy_j)} (component, activity) "
          f"rows byte-identical to offline "
          f"({served.reconstructed_energy_j * 1e3:.3f} mJ)")


async def main() -> None:
    # Distinct node_ids -> distinct warm-start worlds, so both nodes'
    # logs stay live side by side (same-config runs would reset one).
    node_a, _app, _sim = run_blink(seed=3, duration_ns=seconds(16))
    offline_a = offline_map(node_a)
    node_b, _app, _sim = run_blink(seed=7, duration_ns=seconds(16),
                                   node_id=2)
    offline_b = offline_map(node_b)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as root:
        sock = str(Path(root) / "ingest.sock")
        server = IngestServer()
        await server.start_unix(sock)
        try:
            reply_a, reply_b = await asyncio.gather(
                stream_node(sock, node_a, stride_ns=int(seconds(1)),
                            chunk_size=97),
                stream_node(sock, node_b, stride_ns=int(seconds(2)),
                            chunk_size=1021),
            )
            listing = await query(sock, {"cmd": "nodes"})
            stats = await query(sock, {"cmd": "stats"})
        finally:
            await server.close()

    for reply in (reply_a, reply_b):
        if not reply.get("ok"):
            raise SystemExit(f"FAIL: ingest reply not ok: {reply}")
        if reply["windows"] < 2:
            raise SystemExit(f"FAIL: node {reply['node_id']} emitted "
                             f"{reply['windows']} windows — windowing "
                             "never engaged")
    if stats["completed"] != 2 or len(listing["nodes"]) != 2:
        raise SystemExit(f"FAIL: server saw {stats['completed']} "
                         f"completed / {len(listing['nodes'])} nodes, "
                         "expected 2/2")
    check_identical("node 1, stride 1s, chunk 97",
                    final_map(reply_a), offline_a)
    check_identical("node 2, stride 2s, chunk 1021",
                    final_map(reply_b), offline_b)
    print(f"ok: {reply_a['windows']} + {reply_b['windows']} windows, "
          f"{reply_a['entries'] + reply_b['entries']} entries streamed")


if __name__ == "__main__":
    asyncio.run(main())
