"""Golden digests: every experiment's rendered output, pinned by hash.

The perf work in this repo (calendar-queue scheduler, deferred log
packing, power-state lookup tables, streaming micro-optimizations) is
only admissible if it is *byte-identical* to the reference behaviour:
same event orderings, same log bytes, same float arithmetic, same
rendered tables.  This test pins the sha256 of ``render()`` for all 20
experiments at seed 0, captured on the pre-optimization tree (the plain
binary-heap scheduler and eager per-record packing) — so an old-heap vs
calendar-queue divergence anywhere in the stack shows up as a digest
mismatch naming the experiment.

The digests depend on IEEE-754 double arithmetic and CPython's ``random``
module, both of which are deterministic, plus libm (``log``/``sqrt`` in
``random.gauss``), which is deterministic per platform but may differ in
the last ulp across C libraries.  If this test fails on every experiment
on an exotic platform while ``tests/test_determinism.py`` passes, the
platform's libm disagrees with the reference values; regenerate with
``PYTHONPATH=src python tools/regen_golden_digests.py``.

One experiment is self-referential: ``table5`` counts source lines of
the instrumentation modules themselves, so its digest tracks the source
tree, not runtime behaviour.  A PR that edits a counted module must
regenerate table5's entry (and only that entry) — every *other* digest
changing is a real behavioural divergence.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.accounting import ANALYSIS_BACKENDS, BACKEND_ENV_VAR
from repro.experiments.common import EXPERIMENT_IDS, run_experiment

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text("utf-8"))


def test_golden_file_covers_every_experiment():
    assert sorted(GOLDEN) == sorted(EXPERIMENT_IDS)


@pytest.mark.parametrize("backend", ANALYSIS_BACKENDS)
@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_experiment_digest_matches_golden(exp_id, backend, monkeypatch):
    """Every experiment, on every analysis backend, must reproduce the
    pre-optimization digest — one golden value per experiment, shared by
    all backends, is the whole determinism contract: columnar ≡
    streaming, float bits and dict order, on every experiment."""
    monkeypatch.setenv(BACKEND_ENV_VAR, backend)
    rendered = run_experiment(exp_id, seed=0).render()
    digest = hashlib.sha256(rendered.encode("utf-8")).hexdigest()
    assert digest == GOLDEN[exp_id], (
        f"{exp_id} [{backend}]: rendered output diverged from the "
        f"pre-optimization reference "
        f"(got {digest[:16]}, want {GOLDEN[exp_id][:16]})"
    )
