"""Remaining hardware fidelity: battery monitor, LPM sweep, lane
rendering robustness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.report import LaneSegment, render_lanes
from repro.hw.catalog import default_actual_profile
from repro.hw.power import PowerRail
from repro.hw.radio import Radio
from repro.errors import HardwareError
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.hw.platform import PlatformConfig
from repro.units import ms, seconds, ua


def test_battery_monitor_draw():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    radio = Radio(sim, rail, default_actual_profile(), node_id=1)
    with pytest.raises(HardwareError):
        radio.battery_monitor_enable()  # regulator off
    done = []
    radio.vreg_on(lambda: done.append(True))
    sim.run()
    base = rail.current()
    radio.battery_monitor_enable()
    assert rail.current() - base == pytest.approx(ua(30))
    radio.battery_monitor_disable()
    assert rail.current() == pytest.approx(base)


def test_battery_monitor_cleared_by_vreg_off():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    radio = Radio(sim, rail, default_actual_profile(), node_id=1)
    radio.vreg_on(lambda: None)
    sim.run()
    radio.battery_monitor_enable()
    radio.vreg_off()
    assert not radio.battery_monitor_enabled
    assert rail.current() == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("lpm,expected_ua", [
    ("LPM0", 75.0), ("LPM2", 17.0), ("LPM4", 0.0),
])
def test_lpm_sleep_state_sweep(lpm, expected_ua):
    """The configured sleep mode sets the CPU's idle floor (Table 1's
    LPM ladder; LPM3/LPM4 are zeroed into the baseline by the default
    actual profile, the shallower modes are not)."""
    sim = Simulator()
    node = QuantoNode(
        sim, NodeConfig(node_id=1,
                        platform=PlatformConfig(sleep_state=lpm)),
        rng_factory=RngFactory(0))
    node.boot(lambda n: None)
    sim.run(until=seconds(1))
    floor = node.platform.rail.current()
    baseline = node.platform.profile.baseline_amps
    # floor = baseline + SHT11 idle + CPU sleep draw
    cpu_sleep = floor - baseline - ua(0.3)
    assert cpu_sleep == pytest.approx(ua(expected_ua), abs=ua(0.5))


def test_lpm_affects_measured_energy():
    def energy(lpm):
        sim = Simulator()
        node = QuantoNode(
            sim, NodeConfig(node_id=1,
                            platform=PlatformConfig(sleep_state=lpm)),
            rng_factory=RngFactory(0))
        node.boot(lambda n: None)
        sim.run(until=seconds(10))
        return node.platform.rail.energy()

    assert energy("LPM0") > energy("LPM4")


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=-10_000_000, max_value=200_000_000),
        st.integers(min_value=1, max_value=100_000_000),
        st.sampled_from(["A", "B", "C", "D"]),
    ),
    max_size=20,
))
def test_render_lanes_never_crashes(segments):
    """Property: arbitrary (possibly out-of-window, overlapping) segments
    render without exceptions and respect the lane width."""
    lanes = {
        "X": [LaneSegment(t0, t0 + dt, label) for t0, dt, label in segments]
    }
    text = render_lanes(lanes, 0, ms(100), width=40)
    row = next(l for l in text.splitlines() if l.lstrip().startswith("X |"))
    assert len(row.split("|")[1]) == 40
