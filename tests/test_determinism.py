"""Golden determinism: the reproducibility contract of the whole stack.

Same seed => byte-identical packed Blink log and identical rendered
experiment output; and the sweep runner produces the *same bytes* per
seed whether points run serially in one process or fan out to a worker
pool.  Every scaling feature (pooling, sharding, caching) must keep
these green.
"""

import hashlib

from repro.experiments import run_experiment
from repro.experiments.common import run_blink
from repro.sim.sweep import run_point, run_sweep, expand_grid
from repro.units import seconds

SHORT = str(seconds(8))  # short-run override keeps the suite fast

NOISY = {
    "duration_ns": [SHORT],
    "device_variation": ["0.03"],
    "icount_jitter_pulses": ["2.0"],
}


def _blink_log_bytes(seed):
    node, app, sim = run_blink(seed, duration_ns=seconds(8))
    return node.logger.raw_bytes()


def test_same_seed_gives_byte_identical_blink_log():
    assert _blink_log_bytes(7) == _blink_log_bytes(7)


def test_noisy_runs_are_still_self_deterministic():
    def noisy(seed):
        result = run_experiment("table3", seed=seed, overrides={
            "duration_ns": SHORT,
            "device_variation": "0.03",
            "icount_jitter_pulses": "2.0",
        })
        return result.render()

    assert noisy(3) == noisy(3)


def test_different_seeds_diverge_once_noise_is_on():
    runs = {
        seed: run_experiment("table3", seed=seed, overrides={
            "duration_ns": SHORT,
            "device_variation": "0.03",
        }).render()
        for seed in (0, 1)
    }
    assert runs[0] != runs[1]


def test_same_seed_gives_identical_rendered_table3():
    first = run_experiment("table3", seed=5,
                           overrides={"duration_ns": SHORT}).render()
    second = run_experiment("table3", seed=5,
                            overrides={"duration_ns": SHORT}).render()
    assert first == second


def test_point_digest_matches_direct_render():
    point = expand_grid("table3", [4], {"duration_ns": [SHORT]})[0]
    direct = run_experiment("table3", seed=4,
                            overrides={"duration_ns": SHORT}).render()
    expected = hashlib.sha256(direct.encode("utf-8")).hexdigest()
    assert run_point(point).digest == expected


def test_sweep_serial_and_parallel_are_byte_identical_per_seed():
    seeds = range(4)
    serial = run_sweep("table3", seeds, NOISY, jobs=1)
    parallel = run_sweep("table3", seeds, NOISY, jobs=2)
    assert [p.seed for p in serial.points] == [p.seed for p in parallel.points]
    assert [p.digest for p in serial.points] == \
        [p.digest for p in parallel.points]
    assert serial.digest() == parallel.digest()
    # The aggregates are reductions of identical payloads.
    assert serial.metrics == parallel.metrics
    assert serial.comparisons == parallel.comparisons


def test_sweep_rerun_digest_is_stable():
    first = run_sweep("table3", range(2), NOISY, jobs=1)
    second = run_sweep("table3", range(2), NOISY, jobs=1)
    assert first.digest() == second.digest()
