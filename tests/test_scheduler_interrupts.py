"""Task scheduler and interrupt-layer instrumentation."""

import pytest

from repro.core.labels import PROXY_IDS, ActivityLabel
from repro.tos.scheduler import Task
from repro.units import ms, seconds


def test_tasks_run_fifo(node, sim):
    order = []
    node.boot(lambda n: None)

    def app():
        node.scheduler.post_function(lambda: order.append(1))
        node.scheduler.post_function(lambda: order.append(2))
        node.scheduler.post_function(lambda: order.append(3))

    node.scheduler.post_function(app)
    sim.run(until=ms(10))
    assert order == [1, 2, 3]


def test_task_repost_while_queued_rejected(node, sim):
    task = Task(lambda: None, name="t")
    results = []

    def app():
        results.append(node.scheduler.post(task))
        results.append(node.scheduler.post(task))  # already queued

    node.boot(lambda n: None)
    node.scheduler.post_function(app)
    sim.run(until=ms(10))
    assert results == [True, False]
    # After it ran, it can be posted again.
    reposted = []
    node.scheduler.post_function(
        lambda: reposted.append(node.scheduler.post(task)))
    sim.run(until=ms(20))
    assert reposted == [True]


def test_scheduler_saves_and_restores_activity(node, sim):
    """The paper's Tasks instrumentation: a task runs under the activity
    its poster carried, regardless of what ran in between."""
    red = node.activity("Red")
    blue = node.activity("Blue")
    seen = []

    def app():
        node.cpu_activity.set(red)
        node.scheduler.post_function(
            lambda: seen.append(node.cpu_activity.get()))
        node.cpu_activity.set(blue)
        node.scheduler.post_function(
            lambda: seen.append(node.cpu_activity.get()))

    node.boot(lambda n: None)
    node.scheduler.post_function(app)
    sim.run(until=ms(10))
    assert seen == [red, blue]


def test_cpu_goes_idle_after_last_task(node, sim):
    node.boot(lambda n: None)
    node.scheduler.post_function(
        lambda: node.cpu_activity.set(node.activity("Red")))
    sim.run(until=ms(10))
    assert node.cpu_activity.get() == node.idle
    assert not node.platform.mcu.active


def test_interrupt_sets_proxy_and_restores(node, sim):
    seen = []

    def handler():
        seen.append(node.cpu_activity.get())

    trigger = node.interrupts.wire("int_TIMERA1", handler)
    node.boot(lambda n: None)
    sim.at(ms(5), trigger)
    sim.run(until=ms(10))
    assert seen == [node.proxies.label("int_TIMERA1")]
    assert node.cpu_activity.get() == node.idle
    assert node.interrupts.count("int_TIMERA1") == 1


def test_interrupt_handler_bind_does_not_break_restore(node, sim):
    red = node.activity("Red")

    def handler():
        node.cpu_activity.bind(red)

    trigger = node.interrupts.wire("int_TIMERA1", handler)
    node.boot(lambda n: None)
    sim.at(ms(5), trigger)
    sim.run(until=ms(10))
    # After the handler the CPU returned to the interrupted context (idle).
    assert node.cpu_activity.get() == node.idle


def test_interrupt_records_wake_and_sleep_powerstates(node, sim):
    trigger = node.interrupts.wire("int_TIMERA1", lambda: None)
    node.boot(lambda n: None)
    sim.run(until=ms(2))
    before = [e for e in node.logger.decode()]
    sim.at(ms(5), trigger)
    sim.run(until=ms(10))
    entries = node.logger.decode()[len(before):]
    powerstate_values = [e.value for e in entries
                         if e.res_id == 0 and e.type_name == "powerstate"]
    assert powerstate_values[:2] == [1, 0]  # ACTIVE then sleep
