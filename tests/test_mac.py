"""MAC layers: always-on CSMA and low-power listening."""

import pytest

from repro.tos.mac import LplConfig, LplMac
from repro.tos.network import Network
from repro.tos.node import NodeConfig
from repro.units import ms, seconds


def _lpl_network(channel=17, with_interferer=True, seed=0):
    from repro.apps.lpl_app import LplListenApp

    network = Network(seed=seed)
    node = network.add_node(NodeConfig(
        node_id=1, mac="lpl", radio_channel_number=channel))
    if with_interferer:
        network.add_wifi_interferer()
    app = LplListenApp()
    network.boot_all({1: app.start})
    return network, node, app


def test_csma_leaves_radio_listening():
    network = Network(seed=0)
    node = network.add_node(NodeConfig(node_id=1, mac="csma"))
    started = []
    node.boot(lambda n: n.mac.start(lambda: started.append(True)))
    network.run(ms(50))
    assert started == [True]
    assert node.platform.radio.state == "RX"


def test_lpl_wakes_on_schedule():
    network, node, app = _lpl_network(channel=26, with_interferer=False)
    network.run(seconds(5))
    # ~10 checks in 5 s at 500 ms intervals.
    assert 8 <= app.wakeups <= 11
    assert app.detections == 0
    # Radio is off between checks.
    assert node.platform.radio.state == "OFF"


def test_lpl_clean_channel_duty_cycle():
    network, node, app = _lpl_network(channel=26, with_interferer=True)
    network.run(seconds(10))
    timeline = node.timeline()
    on_ns = sum(iv.dt_ns for iv in timeline.power_intervals()
                if iv.state_of(4) not in (0, None))
    duty = on_ns / network.sim.now
    assert 0.015 < duty < 0.035  # ~2.2 %
    assert app.detections == 0


def test_lpl_interference_causes_false_positives():
    network, node, app = _lpl_network(channel=17, with_interferer=True)
    network.run(seconds(20))
    assert app.detections > 0
    assert app.false_positive_rate() > 0.05


def test_lpl_hold_uses_rx_proxy_activity():
    network, node, app = _lpl_network(channel=17, with_interferer=True)
    network.run(seconds(30))
    timeline = node.timeline()
    proxy = node.proxies.label("pxy_RX")
    radio_segments = timeline.activity_segments(4)
    proxy_time = sum(s.dt_ns for s in radio_segments if s.label == proxy)
    # False-positive holds paint the radio with the (unbound) RX proxy.
    assert proxy_time > ms(50)
    assert all(s.bound_to is None for s in radio_segments
               if s.label == proxy)


def test_lpl_send_retransmits_for_a_full_interval():
    from repro.hw.radio import Frame

    network = Network(seed=1)
    sender = network.add_node(NodeConfig(
        node_id=1, mac="lpl", radio_channel_number=26))
    listener = network.add_node(NodeConfig(
        node_id=2, mac="lpl", radio_channel_number=26))
    got = []
    listener.mac.set_receive(got.append)

    def start_sender(n):
        n.mac.start(lambda: None)
        frame = Frame(src=1, dst=2, am_type=9, payload=b"ping")
        n.vtimers.start_oneshot(
            lambda: n.mac.send(frame, None), ms(700), name="kick")

    def start_listener(n):
        n.mac.start(lambda: None)

    sender.boot(start_sender)
    listener.boot(start_listener)
    network.run(seconds(3))
    # Many copies were transmitted over the 500 ms window; the duty-cycled
    # listener caught at least one (either by locking onto a preamble
    # during its CCA window or via the energy-detect hold).
    assert sender.platform.radio.frames_sent > 5
    assert len(got) >= 1
    assert got[0].payload == b"ping"


def test_lpl_config_defaults_match_paper():
    config = LplConfig()
    assert config.check_interval_ns == ms(500)
    assert config.detect_timeout_ns == ms(100)
