"""Platform assembly and the remaining MCU-internal blocks."""

import pytest

from repro.errors import HardwareError
from repro.hw.catalog import default_actual_profile
from repro.hw.misc import (
    AnalogComparator,
    InternalFlash,
    InternalTempSensor,
    SupplySupervisor,
)
from repro.hw.platform import HydrowatchPlatform, PlatformConfig
from repro.hw.power import PowerRail
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.units import ms, seconds, ua


def test_platform_registers_all_sinks():
    sim = Simulator()
    platform = HydrowatchPlatform(sim)
    names = set(platform.rail.sink_names())
    expected = {
        "Baseline", "CPU", "LED0", "LED1", "LED2", "RadioRegulator",
        "RadioControlPath", "RadioRxPath", "RadioTxPath", "ExternalFlash",
        "SHT11", "VoltageReference", "ADC", "DAC", "InternalFlash",
        "TemperatureSensor", "AnalogComparator", "SupplySupervisor",
    }
    assert expected <= names


def test_platform_baseline_floor():
    sim = Simulator()
    platform = HydrowatchPlatform(sim)
    # At rest: the baseline floor plus the SHT11's 0.3 uA idle leak (the
    # CPU sleep and radio-off draws are zeroed into the baseline).
    assert platform.rail.current() == pytest.approx(
        platform.profile.baseline_amps + ua(0.3), rel=1e-6)


def test_platform_custom_voltage_flows_to_rail():
    sim = Simulator()
    platform = HydrowatchPlatform(sim, PlatformConfig(voltage=3.35))
    assert platform.rail.voltage == 3.35


def test_platform_variation_changes_profile_deterministically():
    sim1 = Simulator()
    p1 = HydrowatchPlatform(
        sim1, PlatformConfig(node_id=9, device_variation=0.05),
        RngFactory(1))
    sim2 = Simulator()
    p2 = HydrowatchPlatform(
        sim2, PlatformConfig(node_id=9, device_variation=0.05),
        RngFactory(1))
    led1 = p1.profile.current("LED0", "ON")
    assert led1 == p2.profile.current("LED0", "ON")
    assert led1 != default_actual_profile().current("LED0", "ON")


def test_platform_icount_reads():
    sim = Simulator()
    platform = HydrowatchPlatform(sim)
    sim.at(seconds(10), lambda: None)
    sim.run()
    # Baseline 0.82 mA at 3 V for 10 s = 24.6 mJ ~ 2953 pulses.
    assert platform.icount.read() == pytest.approx(2953, abs=3)


# -- the misc MCU blocks -----------------------------------------------------


def _rail():
    sim = Simulator()
    rail = PowerRail(sim, voltage=3.0)
    return sim, rail


def test_internal_flash_program_words():
    sim, rail = _rail()
    flash = InternalFlash(sim, rail, default_actual_profile())
    states = []
    flash.set_listener(states.append)
    done = []
    flash.program_words(10, lambda: done.append(sim.now))
    assert rail.current() == pytest.approx(3e-3)
    sim.run()
    assert done == [10 * 75_000]  # 75 us per word
    assert states == ["PROGRAM", "IDLE"]
    assert rail.current() == 0.0


def test_internal_flash_erase_segment():
    sim, rail = _rail()
    flash = InternalFlash(sim, rail, default_actual_profile())
    done = []
    flash.erase_segment(lambda: done.append(sim.now))
    sim.run()
    assert done == [ms(17)]


def test_internal_flash_busy_and_validation():
    sim, rail = _rail()
    flash = InternalFlash(sim, rail, default_actual_profile())
    flash.program_words(5, lambda: None)
    with pytest.raises(HardwareError):
        flash.erase_segment(lambda: None)
    sim.run()
    with pytest.raises(HardwareError):
        flash.program_words(0, lambda: None)


def test_internal_temp_sensor_draw():
    sim, rail = _rail()
    sensor = InternalTempSensor(rail, default_actual_profile())
    sensor.start_sample()
    assert rail.current() == pytest.approx(ua(60))
    sensor.stop_sample()
    assert rail.current() == 0.0


def test_comparator_draw():
    sim, rail = _rail()
    comparator = AnalogComparator(rail, default_actual_profile())
    comparator.enable()
    assert rail.current() == pytest.approx(ua(45))
    comparator.disable()
    assert rail.current() == 0.0


def test_supply_supervisor_default_on():
    sim, rail = _rail()
    svs = SupplySupervisor(rail, default_actual_profile(), enabled=True)
    assert rail.current() == pytest.approx(ua(15))
    svs.disable()
    assert rail.current() == 0.0
    svs.enable()
    assert svs.enabled
