"""Batched multi-seed execution: bit-identity and engine-level gates.

The contract of :class:`repro.sim.batch.BatchSimulator` and the fused
columnar decode (:func:`repro.core.logger.decode_batch_records`) is that
batching is *invisible* in the results: every world's log, analysis, and
rendered output is byte-identical to the same seed run serially.  These
tests gate that contract at three levels:

* every experiment's rendered digests under :func:`run_batch` at several
  K against per-seed :func:`run_experiment` (the end-to-end gate);
* the fused decode against per-world solo decode on adversarial inputs
  (ragged world lengths, u32 wraparound straddling world boundaries);
* the BatchSimulator itself: interleaving equivalence, attach/detach
  guards, and leftover hand-back.

One numpy identity the fused analysis leans on is pinned here too:
``np.bincount(idx, weights=w)`` accumulates each bin sequentially in
array order, bit-for-bit like a ``dict.get(key, 0.0) + x`` fold.
"""

import hashlib
import random

import numpy as np
import pytest

from repro.core.logger import (
    ENTRY_DTYPE,
    _unwrap_records,
    decode_batch_records,
)
from repro.errors import SimulationError
from repro.experiments.common import EXPERIMENT_IDS, run_batch, run_experiment
from repro.sim.batch import WORLD_SEQ_STRIDE, BatchSimulator
from repro.sim.engine import Simulator

SEEDS = (0, 1, 2)


def _digest(result) -> str:
    return hashlib.sha256(result.render().encode("utf-8")).hexdigest()


# -- end-to-end: every experiment, several K ------------------------------


@pytest.fixture(scope="module")
def serial_digests():
    """Per-seed serial digests, computed once per experiment."""
    cache: dict[str, list[str]] = {}

    def get(exp_id: str) -> list[str]:
        if exp_id not in cache:
            cache[exp_id] = [
                _digest(run_experiment(exp_id, seed=seed)) for seed in SEEDS]
        return cache[exp_id]

    return get


@pytest.mark.parametrize("k", [1, 2, 7])
@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_run_batch_matches_serial(exp_id, k, serial_digests):
    """run_batch(K) reproduces every per-seed serial digest exactly —
    for every experiment, including the ones that never enter the
    batched blink path (they must pass through unchanged)."""
    results = run_batch(exp_id, SEEDS, k=k)
    assert [_digest(r) for r in results] == serial_digests(exp_id)


def test_full_width_batch_matches_serial():
    """A full K=7 chunk of 7 worlds on the blink path (table3), so the
    shared queue actually interleaves seven worlds at once."""
    seeds = range(7)
    serial = [_digest(run_experiment("table3", seed=s)) for s in seeds]
    batched = [_digest(r) for r in run_batch("table3", seeds, k=7)]
    assert batched == serial


# -- fused decode vs solo decode ------------------------------------------


def _random_log(rng: random.Random, n: int) -> np.ndarray:
    """A synthetic raw log: u32 time/ic fields that wrap mid-log."""
    records = np.zeros(n, dtype=ENTRY_DTYPE)
    # Walk unwrapped 64-bit counters upward in big erratic steps so the
    # stored u32 fields wrap at unpredictable rows (possibly row 0).
    t = rng.randrange(0, 1 << 33)
    ic = rng.randrange(0, 1 << 33)
    for i in range(n):
        records["type"][i] = rng.randrange(0, 8)
        records["res_id"][i] = rng.randrange(0, 16)
        records["time"][i] = t & 0xFFFFFFFF
        records["ic"][i] = ic & 0xFFFFFFFF
        records["value"][i] = rng.randrange(0, 1 << 16)
        t += rng.randrange(0, 1 << 31)
        ic += rng.randrange(0, 1 << 31)
    return records


@pytest.mark.parametrize("trial", range(20))
def test_fused_decode_matches_solo(trial):
    """decode_batch_records over ragged concatenated worlds ==
    per-world _unwrap_records, bit for bit — including worlds whose
    boundary rows look like a wrap (next world starts below the
    previous world's last u32 value) and empty worlds anywhere."""
    rng = random.Random(0xBA7C4 + trial)
    counts = [rng.choice([0, 1, 2, rng.randrange(3, 40)])
              for _ in range(rng.randrange(1, 6))]
    worlds = [_random_log(rng, n) for n in counts]
    fused = decode_batch_records(np.concatenate(worlds), counts)
    assert len(fused) == len(worlds)
    for got, raw in zip(fused, worlds):
        want = _unwrap_records(raw)
        np.testing.assert_array_equal(got.type, want.type)
        np.testing.assert_array_equal(got.res_id, want.res_id)
        np.testing.assert_array_equal(got.time_ns, want.time_ns)
        np.testing.assert_array_equal(got.icount, want.icount)
        np.testing.assert_array_equal(got.value, want.value)


def test_fused_decode_rejects_bad_counts():
    records = _random_log(random.Random(7), 5)
    with pytest.raises(Exception):
        decode_batch_records(records, [2, 2])


# -- BatchSimulator: interleaving equivalence and guards ------------------


def _schedule_probe(sim: Simulator, trace: list, label: str) -> None:
    """A little self-rescheduling workload with same-time FIFO ties."""

    def tick(step: int) -> None:
        trace.append((sim.now, label, step))
        if step < 5:
            sim.after(0 if step % 2 else 700, tick, step + 1)

    sim.at(100, tick, 0)
    sim.at(100, tick, 100)  # same-timestamp FIFO tie


def test_batch_run_matches_solo_runs():
    """Each attached world's (time, order) trace equals its solo run."""
    solo_traces = []
    for label in ("a", "b", "c"):
        sim = Simulator()
        trace: list = []
        _schedule_probe(sim, trace, label)
        sim.run(until=10_000)
        solo_traces.append(trace)
        assert sim.now == 10_000

    sims = [Simulator() for _ in range(3)]
    traces: list[list] = [[] for _ in sims]
    batch = BatchSimulator(sims)
    batch.attach()
    for sim, trace, label in zip(sims, traces, "abc"):
        _schedule_probe(sim, trace, label)
    batch.run(until=10_000)
    batch.detach()
    assert traces == solo_traces
    for sim in sims:
        assert sim.now == 10_000
        assert sim._batch is None


def test_attach_assigns_disjoint_seq_ranges():
    sims = [Simulator() for _ in range(2)]
    batch = BatchSimulator(sims)
    batch.attach()
    assert sims[0]._seq == 0
    assert sims[1]._seq == WORLD_SEQ_STRIDE
    batch.detach()


def test_attach_guards():
    with pytest.raises(SimulationError):
        BatchSimulator([])
    sim = Simulator()
    with pytest.raises(SimulationError):
        BatchSimulator([sim, sim])  # duplicate world
    sim.at(10, lambda: None)
    with pytest.raises(SimulationError):
        BatchSimulator([sim]).attach()  # queued events
    fresh = Simulator()
    batch = BatchSimulator([fresh])
    batch.attach()
    with pytest.raises(SimulationError):
        batch.attach()  # double attach
    with pytest.raises(SimulationError):
        BatchSimulator([fresh]).attach()  # already in a batch
    batch.detach()
    with pytest.raises(SimulationError):
        batch.detach()  # double detach


def test_attached_world_refuses_solo_drive():
    sim = Simulator()
    batch = BatchSimulator([sim])
    batch.attach()
    with pytest.raises(SimulationError):
        sim.run(until=100)
    with pytest.raises(SimulationError):
        sim.step()
    with pytest.raises(SimulationError):
        sim.reset()
    batch.detach()
    sim.run(until=100)  # detached world is a plain simulator again


def test_detach_hands_back_leftovers():
    """Events still queued at detach time fire on the world's own next
    run, in the same order a serial run would have fired them."""
    solo = Simulator()
    solo_trace: list = []
    _schedule_probe(solo, solo_trace, "w")
    solo.run(until=10_000)

    sim = Simulator()
    trace: list = []
    batch = BatchSimulator([sim])
    batch.attach()
    _schedule_probe(sim, trace, "w")
    batch.run(until=150)  # stop mid-workload; leftovers still queued
    batch.detach()
    assert sim.pending() > 0
    sim.run(until=10_000)
    assert trace == solo_trace


# -- the numpy identity the fused fold relies on --------------------------


def test_bincount_weights_accumulate_sequentially():
    """np.bincount(idx, weights=w) must equal the sequential
    ``dict.get(bin, 0.0) + w`` fold bit-for-bit (same addition order per
    bin, same +0.0 start) — the fused energy fold depends on it."""
    rng = random.Random(99)
    idx = [rng.randrange(0, 7) for _ in range(500)]
    w = [rng.uniform(-1e-9, 1e-9) * (10 ** rng.randrange(0, 10))
         for _ in range(500)]
    # Signed-zero start: a bin fed only -0.0 must still total +0.0.
    idx += [3, 3]
    w += [-0.0, -0.0]
    folded: dict[int, float] = {}
    for i, x in zip(idx, w):
        folded[i] = folded.get(i, 0.0) + x
    binned = np.bincount(
        np.asarray(idx, dtype=np.intp),
        weights=np.asarray(w, dtype=np.float64), minlength=7)
    for i, total in folded.items():
        got = float(binned[i])
        assert (got == total
                and np.signbit(got) == np.signbit(total)), (i, got, total)
