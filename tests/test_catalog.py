"""The platform catalog and actual-draw profiles."""

import pytest

from repro.errors import PowerModelError
from repro.hw.catalog import (
    NOMINAL_CATALOG,
    ActualDrawProfile,
    catalog_power_state_count,
    catalog_sink,
    default_actual_profile,
    render_table1,
)
from repro.sim.rng import RngFactory
from repro.units import ma, ua


def test_catalog_covers_the_paper_counts():
    mcu = [s for s in NOMINAL_CATALOG if s.group == "Microcontroller"]
    radio = [s for s in NOMINAL_CATALOG if s.group == "Radio"]
    assert len(mcu) == 8
    assert sum(len(s.states) for s in mcu) == 16
    assert len(radio) == 5
    assert sum(len(s.states) for s in radio) == 14


def test_nominal_values_match_table1():
    assert catalog_sink("CPU").state("ACTIVE").nominal_amps == ua(500)
    assert catalog_sink("CPU").state("LPM3").nominal_amps == ua(2.6)
    assert catalog_sink("RadioRxPath").state("RX_LISTEN").nominal_amps == \
        ma(19.7)
    assert catalog_sink("RadioTxPath").state("TX_-25dBm").nominal_amps == \
        ma(8.5)
    assert catalog_sink("LED0").state("ON").nominal_amps == ma(4.3)
    assert catalog_sink("ExternalFlash").state("WRITE").nominal_amps == \
        ma(12)


def test_unknown_lookups_raise():
    with pytest.raises(PowerModelError):
        catalog_sink("Nonexistent")
    with pytest.raises(PowerModelError):
        catalog_sink("CPU").state("WARP")


def test_profile_falls_back_to_nominal():
    profile = ActualDrawProfile()
    assert profile.current("LED0", "ON") == ma(4.3)


def test_default_profile_differs_from_nominal():
    """The point of the paper: deployed hardware is not the datasheet."""
    profile = default_actual_profile()
    assert profile.current("LED0", "ON") == pytest.approx(ma(2.50))
    assert profile.current("LED0", "ON") != catalog_sink("LED0").state(
        "ON").nominal_amps
    assert profile.current("RadioRxPath", "RX_LISTEN") == \
        pytest.approx(ma(18.46))
    assert profile.baseline_amps == pytest.approx(ma(0.82))


def test_variation_perturbs_deterministically():
    base = default_actual_profile()
    base.variation = 0.05
    rng1 = RngFactory(1).stream("var")
    rng2 = RngFactory(1).stream("var")
    p1 = base.with_variation(rng1)
    p2 = base.with_variation(rng2)
    led1 = p1.current("LED0", "ON")
    assert led1 == p2.current("LED0", "ON")
    assert led1 != base.current("LED0", "ON")
    assert abs(led1 / base.current("LED0", "ON") - 1.0) <= 0.05 + 1e-9


def test_zero_variation_is_identity():
    base = default_actual_profile()
    assert base.with_variation(RngFactory(0).stream("x")) is base


def test_render_table1_contains_all_sinks():
    text = render_table1()
    for sink in NOMINAL_CATALOG:
        assert sink.name in text
    assert "19.7 mA" in text
    assert "[Radio]" in text


def test_state_count_total():
    assert catalog_power_state_count() == sum(
        len(s.states) for s in NOMINAL_CATALOG)
