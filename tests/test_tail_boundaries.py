"""Boundary-exact analysis windows through the tail re-cover.

``EnergyAccumulator`` flips into tail mode when intervals outrun the
analysis window (``end_time_ns``): covers defer and replay at finish
from the retained segment deques.  The delicate inputs are windows
whose end lands *exactly* on a segment or interval boundary, exactly on
the final entry, or past everything the log contains.  For each such
end the streaming and columnar backends must agree bit-for-bit — the
same contract the golden digests pin for the default window, enforced
here for the adversarial ones, in both proxy-fold modes.
"""

import pytest

from repro.core.accounting import stream_energy_map
from repro.core.logger import iter_entries
from repro.experiments.common import run_blink
from repro.tos.node import COMPONENT_NAMES, RES_TIMERB
from repro.units import seconds


@pytest.fixture(scope="module")
def blink():
    node, _app, _sim = run_blink(seed=3, duration_ns=seconds(8))
    timeline = node.timeline()
    return node, timeline, node.regression(timeline), \
        bytes(node.logger.raw_bytes())


def map_at(node, regression, raw, end_time_ns, fold, backend):
    return stream_energy_map(
        iter_entries(raw), regression, node.registry, COMPONENT_NAMES,
        node.platform.icount.nominal_energy_per_pulse_j,
        fold_proxies=fold,
        idle_name=node.registry.name_of(node.idle),
        end_time_ns=end_time_ns,
        single_res_ids=[d.res_id for d in node._single_devices()],
        multi_res_ids=[RES_TIMERB],
        backend=backend,
    )


def boundary_ends(timeline):
    """Every boundary a window end could land on exactly: segment
    edges, interval edges, the last entry, and points past the log."""
    ends = set()
    for res_id in timeline.single_device_ids():
        for segment in timeline.activity_segments(res_id):
            ends.add(segment.t0_ns)
            ends.add(segment.t1_ns)
    for res_id in timeline.multi_device_ids():
        for segment in timeline.multi_activity_segments(res_id):
            ends.add(segment.t0_ns)
            ends.add(segment.t1_ns)
    for interval in timeline.power_intervals():
        ends.add(interval.t1_ns)
    last_entry_ns = timeline.entries[-1].time_ns
    ends |= {last_entry_ns, last_entry_ns + 1,
             last_entry_ns + int(seconds(1))}
    return sorted(end for end in ends if end > 0)


@pytest.mark.parametrize("fold", [False, True])
def test_backends_agree_at_every_boundary_end(blink, fold):
    node, timeline, regression, raw = blink
    ends = boundary_ends(timeline)
    assert len(ends) > 50  # the probe is only meaningful with coverage
    for end in ends:
        streaming = map_at(node, regression, raw, end, fold, "streaming")
        columnar = map_at(node, regression, raw, end, fold, "columnar")
        context = f"end={end} fold={fold}"
        assert list(streaming.energy_j) == list(columnar.energy_j), context
        assert streaming.energy_j == columnar.energy_j, context
        assert streaming.time_ns == columnar.time_ns, context
        assert streaming.metered_energy_j == \
            columnar.metered_energy_j, context
        assert streaming.reconstructed_energy_j == \
            columnar.reconstructed_energy_j, context
        assert streaming.span_ns == columnar.span_ns, context


def test_window_past_the_log_matches_last_entry_extension(blink):
    """A window end past every record: the open spans extend to it, the
    deferred tail replay covers it, and both backends still agree (the
    map keeps growing only in time, not in metered pulses)."""
    node, timeline, regression, raw = blink
    last_entry_ns = timeline.entries[-1].time_ns
    far = last_entry_ns + int(seconds(30))
    streaming = map_at(node, regression, raw, far, False, "streaming")
    columnar = map_at(node, regression, raw, far, False, "columnar")
    assert streaming.energy_j == columnar.energy_j
    assert streaming.span_ns == columnar.span_ns
    at_end = map_at(node, regression, raw, last_entry_ns, False,
                    "streaming")
    assert streaming.metered_energy_j == at_end.metered_energy_j
    assert streaming.span_ns >= at_end.span_ns
