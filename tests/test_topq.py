"""Quanto-top: live per-activity power from the online counters."""

import pytest

from repro.core.topq import QuantoTop
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.tos.node import NodeConfig, QuantoNode
from repro.units import seconds


@pytest.fixture()
def top_run():
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True),
                      rng_factory=RngFactory(0))
    app = BlinkApp()
    top = QuantoTop(node, refresh_ns=seconds(2))

    def start(n):
        app.start(n)
        top.start()

    node.boot(start)
    sim.run(until=seconds(20))
    return sim, node, top


def test_top_requires_counters():
    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=False))
    with pytest.raises(ValueError):
        QuantoTop(node)


def test_top_collects_samples(top_run):
    sim, node, top = top_run
    assert 8 <= len(top.samples) <= 10
    latest = top.latest()
    assert latest is not None
    assert latest.dt_s == pytest.approx(2.0, rel=0.05)


def test_top_sees_the_idle_floor(top_run):
    """In Blink the CPU is asleep with LEDs burning: the online view
    charges that power to Idle — and top must show it."""
    sim, node, top = top_run
    latest = top.latest()
    idle_power = latest.power_of(node.idle)
    # Node draws a few mW on average; Idle carries almost all of it.
    assert idle_power > 3e-3


def test_top_accounts_for_itself(top_run):
    """Like Unix top: the profiler's refresh work shows under Quanto's
    own activity."""
    sim, node, top = top_run
    totals = top._last_totals
    quanto_time = totals.get(node.quanto_label, (0, 0.0))[0]
    assert quanto_time > 0


def test_top_render(top_run):
    sim, node, top = top_run
    text = top.render()
    assert "quanto-top" in text
    assert "1:Idle" in text
    assert "P now (mW)" in text


def test_top_stop_halts_sampling(top_run):
    sim, node, top = top_run
    count = len(top.samples)
    # stop() touches the multi-activity timer device, so it must run in
    # CPU context like any instrumented operation.
    node.scheduler.post_function(top.stop)
    sim.run(until=seconds(30))
    assert len(top.samples) <= count + 1


def test_top_history_bounded():
    from repro.apps.blink import BlinkApp

    sim = Simulator()
    node = QuantoNode(sim, NodeConfig(node_id=1, enable_counters=True),
                      rng_factory=RngFactory(0))
    app = BlinkApp()
    top = QuantoTop(node, refresh_ns=seconds(1), history=5)

    def start(n):
        app.start(n)
        top.start()

    node.boot(start)
    sim.run(until=seconds(20))
    assert len(top.samples) == 5  # deque bounded
