"""The offline log toolkit: dump, CSV export, validation."""

import pytest

from repro.core.logger import ENTRY_STRUCT, decode_log
from repro.toolkit.logdump import (
    dump_log,
    export_intervals_csv,
    export_log_csv,
)
from repro.toolkit.validate import validate_log
from repro.tos.node import COMPONENT_NAMES


def test_dump_log_renders_names(blink_run):
    sim, node, app = blink_run
    text = dump_log(node.entries(), node.registry, COMPONENT_NAMES,
                    limit=50)
    assert "powerstate" in text
    assert "1:Red" in text
    assert "LED0" in text
    assert "more entries" in text


def test_dump_log_without_registry():
    raw = ENTRY_STRUCT.pack(2, 0, 100, 5, 0x0101)
    text = dump_log(decode_log(raw))
    assert "1:1" in text  # raw label rendering


def test_export_log_csv(blink_run):
    sim, node, app = blink_run
    csv = export_log_csv(node.entries(), node.registry, COMPONENT_NAMES)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("seq,time_us,icount,type,resource")
    assert len(lines) == len(node.entries()) + 1
    assert any("1:Red" in line for line in lines)


def test_export_intervals_csv(blink_run):
    sim, node, app = blink_run
    timeline = node.timeline()
    intervals = timeline.power_intervals()
    csv = export_intervals_csv(
        intervals, node.platform.icount.nominal_energy_per_pulse_j,
        COMPONENT_NAMES)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("t0_us,t1_us,dt_us,pulses,energy_uj")
    assert "LED0" in lines[0]
    assert len(lines) == len(intervals) + 1


def test_validate_clean_blink_log(blink_run):
    sim, node, app = blink_run
    issues = validate_log(node.entries())
    errors = [i for i in issues if i.severity == "error"]
    assert errors == []
    # Blink's timer proxy is always implicitly unbound (set, not bind),
    # so an info-level unbound-proxy finding is expected and correct.
    assert any(i.code == "unbound-proxy" for i in issues)


def test_validate_empty_log():
    issues = validate_log([])
    assert issues[0].code == "empty-log"
    assert "empty-log" in str(issues[0])


def test_validate_flags_missing_boot():
    raw = ENTRY_STRUCT.pack(1, 3, 100, 5, 1)  # powerstate with no boot
    issues = validate_log(decode_log(raw))
    assert any(i.code == "no-boot-snapshot" for i in issues)


def test_validate_flags_redundant_powerstate():
    raw = b"".join([
        ENTRY_STRUCT.pack(6, 3, 0, 0, 0),    # boot
        ENTRY_STRUCT.pack(1, 3, 100, 5, 1),
        ENTRY_STRUCT.pack(1, 3, 200, 9, 1),  # same value again
    ])
    issues = validate_log(decode_log(raw))
    assert any(i.code == "redundant-powerstate" for i in issues)


def test_validate_bound_proxy_not_flagged():
    proxy = 0x01C8  # node 1, first proxy id
    real = 0x0101
    raw = b"".join([
        ENTRY_STRUCT.pack(2, 0, 0, 0, proxy),   # act_change to proxy
        ENTRY_STRUCT.pack(3, 0, 100, 2, real),  # act_bind to real
    ])
    issues = validate_log(decode_log(raw))
    assert not any(i.code == "unbound-proxy" for i in issues)


def test_validate_lpl_false_positives_visible():
    """On the interference run, the unbound pxy_RX shows up as the
    expected info finding — the false-positive energy signature."""
    from repro.experiments.fig13 import run_channel

    result = run_channel(17, seed=0)
    node = result["node"]
    issues = validate_log(node.entries())
    unbound = [i for i in issues if i.code == "unbound-proxy"]
    assert any("pxy" in i.message or "200" in i.message for i in unbound) \
        or unbound  # the proxy label renders as origin:id
