"""Single/MultiActivityDevice semantics."""

from repro.core.activity import MultiActivityDevice, SingleActivityDevice
from repro.core.labels import ActivityLabel, idle_label


RED = ActivityLabel(1, 1)
BLUE = ActivityLabel(1, 2)
REMOTE = ActivityLabel(4, 1)


def test_single_set_and_get():
    device = SingleActivityDevice("CPU", 0)
    assert device.get() == idle_label()
    device.set(RED)
    assert device.get() == RED


def test_single_idempotent_set_no_notify():
    device = SingleActivityDevice("CPU", 0)
    events = []
    device.add_tracker(lambda d, label, bound: events.append((label, bound)))
    device.set(RED)
    device.set(RED)
    assert events == [(RED, False)]
    assert device.change_count == 1


def test_single_bind_always_notifies():
    device = SingleActivityDevice("CPU", 0)
    events = []
    device.add_tracker(lambda d, label, bound: events.append((label, bound)))
    device.set(RED)
    device.bind(REMOTE)
    assert events == [(RED, False), (REMOTE, True)]
    assert device.get() == REMOTE
    assert device.bind_count == 1


def test_single_multiple_trackers_all_fire():
    device = SingleActivityDevice("CPU", 0)
    a, b = [], []
    device.add_tracker(lambda d, label, bound: a.append(label))
    device.add_tracker(lambda d, label, bound: b.append(label))
    device.set(BLUE)
    assert a == [BLUE] and b == [BLUE]


def test_multi_add_remove():
    device = MultiActivityDevice("TimerB", 9)
    assert device.add(RED) is True
    assert device.add(RED) is False  # already present
    assert device.activities() == {RED}
    assert device.add(BLUE) is True
    assert device.activities() == {RED, BLUE}
    assert device.remove(RED) is True
    assert device.remove(RED) is False
    assert device.activities() == {BLUE}


def test_multi_tracker_events():
    device = MultiActivityDevice("TimerB", 9)
    events = []
    device.add_tracker(lambda d, label, added: events.append((label, added)))
    device.add(RED)
    device.add(RED)  # no event
    device.remove(RED)
    assert events == [(RED, True), (RED, False)]


def test_multi_clear():
    device = MultiActivityDevice("TimerB", 9)
    device.add(RED)
    device.add(BLUE)
    device.clear()
    assert device.activities() == frozenset()
