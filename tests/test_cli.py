"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENT_IDS, main


def test_list_names_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENT_IDS:
        assert exp_id in out


def test_experiment_command(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "Energy Sink" in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_blink_command(capsys):
    assert main(["blink", "--seconds", "8"]) == 0
    out = capsys.readouterr().out
    assert "1:Red" in out
    assert "accounting" in out


def test_blink_dump(capsys):
    assert main(["blink", "--seconds", "8", "--dump"]) == 0
    out = capsys.readouterr().out
    assert "powerstate" in out
    assert "boot" in out


def test_validate_command(capsys):
    assert main(["validate"]) == 0
    out = capsys.readouterr().out
    # Blink's log is structurally clean; unbound-proxy info lines are
    # expected (the timer proxy never binds).
    assert "error" not in out.split("unbound-proxy")[0]


def test_experiment_ids_all_importable():
    import importlib

    for exp_id in EXPERIMENT_IDS:
        module = importlib.import_module(f"repro.experiments.{exp_id}")
        assert hasattr(module, "run")
