"""Edge cases across the stack: crashing tasks, degenerate regressions,
single-interval logs."""

import pytest

from repro.core.regression import SinkColumn, solve_breakdown
from repro.core.timeline import PowerInterval
from repro.errors import RegressionError
from repro.units import ms, seconds


def test_crashing_task_still_records_sleep(node, sim):
    """run_wrapped is exception-safe: a task that raises still records
    the CPU sleep transition before the error propagates (on real
    hardware this is the path to a clean panic/reboot)."""

    def bad_task():
        raise RuntimeError("application bug")

    node.boot(lambda n: None)
    sim.run(until=ms(5))
    before = len(node.entries())
    node.scheduler.post_function(bad_task)
    with pytest.raises(RuntimeError):
        sim.run(until=ms(10))
    entries = node.entries()[before:]
    powerstates = [e.value for e in entries
                   if e.res_id == 0 and e.type_name == "powerstate"]
    assert powerstates == [1, 0]  # woke, crashed, still recorded sleep


def test_crashing_interrupt_restores_activity(node, sim):
    def bad_handler():
        raise RuntimeError("driver bug")

    trigger = node.interrupts.wire("int_TIMERA1", bad_handler)
    node.boot(lambda n: None)
    sim.run(until=ms(5))
    sim.at(ms(6), trigger)
    with pytest.raises(RuntimeError):
        sim.run(until=ms(10))
    # The wrapper's finally restored the pre-interrupt activity.
    assert node.cpu_activity.get() == node.idle


def test_regression_single_state_only():
    """A log where nothing ever changes state: only the constant is
    identifiable; the sink column never appears active and is dropped."""
    interval = PowerInterval(0, seconds(10),
                             int(0.003 * 10 / 8.33e-6), ((1, 0),))
    layout = [SinkColumn(1, 1, "LED0")]
    result = solve_breakdown([interval], layout, 8.33e-6, 3.0)
    assert "LED0" not in result.power_w
    assert result.const_power_w == pytest.approx(0.003, rel=0.01)


def test_regression_zero_energy_intervals():
    """All-zero pulse counts (node slept through the whole log at a draw
    below one pulse): regression returns zeros, not NaNs."""
    intervals = [
        PowerInterval(0, seconds(1), 0, ((1, 0),)),
        PowerInterval(seconds(1), seconds(2), 0, ((1, 1),)),
    ]
    layout = [SinkColumn(1, 1, "LED0")]
    result = solve_breakdown(intervals, layout, 8.33e-6, 3.0)
    assert result.power_w["LED0"] == pytest.approx(0.0, abs=1e-12)
    assert result.const_power_w == pytest.approx(0.0, abs=1e-12)


def test_regression_min_interval_filters_everything():
    intervals = [PowerInterval(0, 1000, 1, ((1, 1),))]
    layout = [SinkColumn(1, 1, "LED0")]
    with pytest.raises(RegressionError):
        solve_breakdown(intervals, layout, 8.33e-6, 3.0,
                        min_interval_ns=ms(1))


def test_node_analysis_before_boot(node):
    """Analyzing an unbooted node: empty log, graceful failure modes."""
    assert node.entries() == []
    timeline = node.timeline(finalize=False)
    assert timeline.power_intervals() == []
    with pytest.raises(RegressionError):
        node.regression(timeline)


def test_zero_duration_run_analysis(node, sim):
    """Boot but run only the boot instant: the boot snapshot plus the
    wake/sleep pair still form a (tiny) analyzable log."""
    node.boot(lambda n: None)
    sim.run(until=ms(2))
    entries = node.entries()
    assert len(entries) > 0
    times = [e.time_us for e in entries]
    assert times == sorted(times)
