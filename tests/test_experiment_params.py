"""The parameter-override hooks in ``experiments/common.py``.

Experiments become sweepable through their ``run()`` signatures alone;
these tests pin the contract: introspection finds the right parameters,
unknown keys fail with a clear error, string values coerce by type, and
the applied overrides are visible in the rendered result header.
"""

import pytest

from repro.errors import ExperimentParameterError
from repro.experiments import (
    EXPERIMENT_IDS,
    experiment_params,
    load_experiment,
    run_experiment,
)
from repro.units import seconds


def test_table3_exposes_duration_and_noise_knobs():
    params = experiment_params("table3")
    assert params["duration_ns"].kind is int
    assert params["duration_ns"].default == seconds(48)
    assert params["device_variation"].kind is float
    assert "seed" not in params  # seed is the grid axis, not a parameter


def test_every_experiment_introspects_cleanly():
    for exp_id in EXPERIMENT_IDS:
        for name, param in experiment_params(exp_id).items():
            assert param.kind in (int, float, str, bool), (exp_id, name)


def test_unknown_key_rejected_with_clear_error():
    with pytest.raises(ExperimentParameterError) as excinfo:
        run_experiment("table3", overrides={"warp_factor": "9"})
    message = str(excinfo.value)
    assert "warp_factor" in message
    assert "duration_ns" in message  # the error names the valid keys


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentParameterError) as excinfo:
        load_experiment("table99")
    assert "table99" in str(excinfo.value)


def test_bad_value_rejected_with_type_in_error():
    with pytest.raises(ExperimentParameterError) as excinfo:
        run_experiment("table3", overrides={"duration_ns": "soon"})
    message = str(excinfo.value)
    assert "duration_ns" in message
    assert "int" in message


def test_override_visible_in_rendered_header():
    result = run_experiment(
        "table3", seed=3, overrides={"duration_ns": str(seconds(8))})
    header = result.render().splitlines()[:2]
    assert header[0].startswith("== table3:")
    assert "params:" in header[1]
    assert "seed=3" in header[1]
    assert f"duration_ns={seconds(8)}" in header[1]


def test_string_values_coerced_to_parameter_types():
    result = run_experiment("table3", overrides={
        "duration_ns": str(seconds(4)),
        "device_variation": "0.01",
    })
    assert result.params["duration_ns"] == seconds(4)
    assert isinstance(result.params["duration_ns"], int)
    assert result.params["device_variation"] == pytest.approx(0.01)


def test_typed_values_pass_through_unparsed():
    result = run_experiment("table3", overrides={"duration_ns": seconds(4)})
    assert result.params["duration_ns"] == seconds(4)


def test_int_parameters_accept_hex_strings():
    params = experiment_params("table3")
    assert params["duration_ns"].parse("0x10") == 16


def test_direct_run_keeps_clean_header():
    # Experiments invoked without the hook carry no params stamp, so the
    # seed-state renders (benchmarks, archived goldens) are unchanged.
    module = load_experiment("table1")
    result = module.run()
    assert "params:" not in result.render().splitlines()[1]


def test_override_memo_preserves_each_callers_key_order():
    """Parsed overrides are memoized per (experiment, values) with a
    sorted key — but result.params must follow each call's own override
    order, warm memo or cold parse alike (the rendered header, and any
    digest of it, would otherwise depend on process history)."""
    duration = str(seconds(4))
    first = run_experiment("table3", overrides={
        "device_variation": "0.02", "duration_ns": duration})
    second = run_experiment("table3", overrides={
        "duration_ns": duration, "device_variation": "0.02"})
    assert list(first.params) == ["seed", "device_variation", "duration_ns"]
    assert list(second.params) == ["seed", "duration_ns", "device_variation"]
